"""Tests for the distance oracle and multi-level partitioning."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.algorithms import (
    edge_cut,
    evaluate_oracle,
    hash_partition,
    multilevel_partition,
    select_landmarks,
)
from repro.algorithms.landmarks import brandes_betweenness
from repro.errors import ComputeError, QueryError
from repro.generators.social import community_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud


@pytest.fixture(scope="module")
def ring_topology():
    edges = community_edges(1200, communities=12, avg_degree=8,
                            layout="ring", seed=5)
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
    builder.add_edges(edges.tolist())
    return CsrTopology(builder.finalize())


class TestBrandes:
    def test_matches_networkx_exact(self):
        """Full-sample Brandes equals networkx betweenness ranking."""
        networkx = pytest.importorskip("networkx")
        from repro.generators import powerlaw_edges
        edges = powerlaw_edges(60, avg_degree=4, seed=3)
        cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=3))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edges(edges.tolist())
        topo = CsrTopology(builder.finalize())
        ours = brandes_betweenness(
            topo.out_indptr, topo.out_indices, samples=topo.n, seed=0,
        )
        reference_graph = networkx.Graph()
        reference_graph.add_nodes_from(range(topo.n))
        for i in range(topo.n):
            for j in topo.out_neighbors(i):
                reference_graph.add_edge(i, int(j))
        reference = networkx.betweenness_centrality(
            reference_graph, normalized=False,
        )
        theirs = np.array([reference[i] for i in range(topo.n)])
        # Exact Brandes counts each unordered pair twice in an
        # undirected graph; networkx halves.  Compare scaled.
        assert np.allclose(ours, theirs * 2, atol=1e-6)

    def test_sampled_scores_nonnegative(self, ring_topology):
        scores = brandes_betweenness(
            ring_topology.out_indptr, ring_topology.out_indices,
            samples=20, seed=1,
        )
        assert (scores >= 0).all()
        assert scores.max() > 0

    def test_empty_pool(self):
        scores = brandes_betweenness(
            np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
            nodes=np.empty(0, dtype=np.int64),
        )
        assert len(scores) == 0


class TestLandmarkSelection:
    def test_strategies_return_requested_count(self, ring_topology):
        for strategy in ("degree", "local-betweenness",
                         "global-betweenness"):
            landmarks = select_landmarks(ring_topology, 12, strategy,
                                         samples=32, seed=0)
            assert len(landmarks) == 12
            assert len(set(landmarks)) == 12

    def test_degree_strategy_picks_high_degree(self, ring_topology):
        landmarks = select_landmarks(ring_topology, 5, "degree")
        degrees = ring_topology.out_degrees()
        median = np.median(degrees)
        assert all(degrees[lm] > median for lm in landmarks)

    def test_spacing_constraint(self, ring_topology):
        landmarks = select_landmarks(ring_topology, 10, "degree")
        chosen = set(landmarks)
        for landmark in landmarks:
            neighbors = set(
                int(u) for u in ring_topology.out_neighbors(landmark)
            )
            # No two *chosen in the spaced phase* are adjacent; allow the
            # relaxed-fallback tail by checking at most one violation pair.
            assert len(neighbors & chosen) <= 1

    def test_unknown_strategy(self, ring_topology):
        with pytest.raises(QueryError, match="unknown strategy"):
            select_landmarks(ring_topology, 4, "random-walk")

    def test_bad_count(self, ring_topology):
        with pytest.raises(QueryError):
            select_landmarks(ring_topology, 0, "degree")


class TestOracle:
    def test_estimates_are_upper_bounds(self, ring_topology):
        landmarks = select_landmarks(ring_topology, 16,
                                     "global-betweenness", samples=48)
        evaluation = evaluate_oracle(ring_topology, landmarks, pairs=60,
                                     seed=2)
        for _, _, true, estimate in evaluation.per_pair:
            assert estimate >= true

    def test_accuracy_in_unit_range(self, ring_topology):
        landmarks = select_landmarks(ring_topology, 16, "degree")
        evaluation = evaluate_oracle(ring_topology, landmarks, pairs=60,
                                     seed=2)
        assert 0.0 < evaluation.accuracy <= 1.0
        assert 0.0 <= evaluation.exact_fraction <= 1.0
        assert evaluation.pairs_evaluated > 0

    def test_more_landmarks_no_worse(self, ring_topology):
        few = select_landmarks(ring_topology, 4, "global-betweenness",
                               samples=48, seed=1)
        many = select_landmarks(ring_topology, 32, "global-betweenness",
                                samples=48, seed=1)
        acc_few = evaluate_oracle(ring_topology, few, pairs=80, seed=3)
        acc_many = evaluate_oracle(ring_topology, many, pairs=80, seed=3)
        assert acc_many.accuracy >= acc_few.accuracy - 0.02

    def test_paper_ordering_at_moderate_count(self, ring_topology):
        """Figure 8(b): global betweenness beats largest-degree."""
        degree = select_landmarks(ring_topology, 32, "degree")
        globl = select_landmarks(ring_topology, 32, "global-betweenness",
                                 samples=96, seed=1)
        acc_degree = evaluate_oracle(ring_topology, degree, pairs=120,
                                     seed=4).accuracy
        acc_global = evaluate_oracle(ring_topology, globl, pairs=120,
                                     seed=4).accuracy
        assert acc_global >= acc_degree - 0.01


class TestPartitioning:
    def make_csr(self, edges, n):
        sym = np.vstack([edges, edges[:, ::-1]])
        order = np.lexsort((sym[:, 1], sym[:, 0]))
        sym = sym[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, sym[:, 0] + 1, 1)
        return np.cumsum(indptr), sym[:, 1].astype(np.int64)

    @pytest.fixture(scope="class")
    def csr(self):
        edges = community_edges(1000, communities=8, avg_degree=8,
                                seed=11)
        return self.make_csr(edges, 1000)

    def test_assignment_covers_all_nodes(self, csr):
        indptr, indices = csr
        result = multilevel_partition(indptr, indices, parts=4, seed=0)
        assert len(result.assignment) == 1000
        assert set(np.unique(result.assignment)) <= set(range(4))

    def test_balance_within_tolerance(self, csr):
        indptr, indices = csr
        result = multilevel_partition(indptr, indices, parts=4, seed=0)
        assert result.balance <= 1.3

    def test_beats_hash_partition(self, csr):
        """The paper's quality claim: multi-level cut far below random."""
        indptr, indices = csr
        multilevel = multilevel_partition(indptr, indices, parts=4, seed=0)
        random_cut = edge_cut(indptr, indices,
                              hash_partition(1000, 4, seed=0))
        assert multilevel.cut < 0.7 * random_cut

    def test_cut_metric_consistency(self, csr):
        indptr, indices = csr
        result = multilevel_partition(indptr, indices, parts=4, seed=0)
        assert result.cut == edge_cut(indptr, indices, result.assignment)

    def test_history_monotone_levels(self, csr):
        indptr, indices = csr
        result = multilevel_partition(indptr, indices, parts=4, seed=0)
        assert result.levels >= 1
        sizes = [n for n, _ in result.history]
        assert sizes == sorted(sizes)  # coarsest first

    def test_validation(self, csr):
        indptr, indices = csr
        with pytest.raises(ComputeError):
            multilevel_partition(indptr, indices, parts=1)
        with pytest.raises(ComputeError):
            multilevel_partition(np.zeros(3, dtype=np.int64),
                                 np.empty(0, dtype=np.int64), parts=4)

    def test_deterministic_for_seed(self, csr):
        indptr, indices = csr
        first = multilevel_partition(indptr, indices, parts=4, seed=7)
        second = multilevel_partition(indptr, indices, parts=4, seed=7)
        assert np.array_equal(first.assignment, second.assignment)
