"""Unit tests for the deterministic fault schedule and its injector."""

import pytest

from repro.errors import ConfigError, MachineDownError
from repro.faults import CrashFault, FaultInjector, FaultPlan, Partition
from repro.net import SimNetwork
from repro.obs import MetricsRegistry


class TestFaultPlan:
    def test_crash_normalisation_and_lookup(self):
        plan = FaultPlan(crashes=((3, 1), CrashFault(3, 2), (5, 0)))
        assert plan.crashes_at(3) == [1, 2]
        assert plan.crashes_at(5) == [0]
        assert plan.crashes_at(4) == []

    def test_partition_normalisation(self):
        plan = FaultPlan(partitions=((2, 4, {0, 1}),))
        assert plan.partitions == (Partition(2, 4, frozenset({0, 1})),)
        # Active only inside [start, end), and only across the cut.
        assert plan.is_partitioned(0, 2, round_=2)
        assert plan.is_partitioned(2, 1, round_=3)
        assert not plan.is_partitioned(0, 1, round_=2)   # same side
        assert not plan.is_partitioned(0, 2, round_=4)   # healed
        assert not plan.is_partitioned(0, 2, round_=1)   # not yet

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ConfigError):
            FaultPlan(retry_timeout=0.0)
        with pytest.raises(ConfigError):
            FaultPlan(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            FaultPlan(partitions=((4, 4, {0}),))  # empty interval

    def test_draws_are_deterministic_across_instances(self):
        a = FaultPlan(seed=7, drop_rate=0.3, duplicate_rate=0.3,
                      delay_rate=0.3, corrupt_rate=0.3)
        b = FaultPlan(seed=7, drop_rate=0.3, duplicate_rate=0.3,
                      delay_rate=0.3, corrupt_rate=0.3)
        for src in range(3):
            for dst in range(3):
                for round_ in range(5):
                    args = (src, dst, round_)
                    assert (a.should_drop(*args, attempt=0)
                            == b.should_drop(*args, attempt=0))
                    assert (a.should_duplicate(*args)
                            == b.should_duplicate(*args))
                    assert a.delay_for(*args) == b.delay_for(*args)
        assert a.should_corrupt(11, 2) == b.should_corrupt(11, 2)

    def test_seed_changes_the_schedule(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        draws_a = [a.should_drop(0, 1, r, 0) for r in range(64)]
        draws_b = [b.should_drop(0, 1, r, 0) for r in range(64)]
        assert draws_a != draws_b

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=3, drop_rate=0.25)
        hits = sum(plan.should_drop(0, 1, r, 0) for r in range(2000))
        assert 0.18 < hits / 2000 < 0.32

    def test_zero_rates_never_fire(self):
        plan = FaultPlan(seed=9)
        assert not plan.should_drop(0, 1, 0, 0)
        assert not plan.should_duplicate(0, 1, 0)
        assert plan.delay_for(0, 1, 0) == 0.0
        assert not plan.should_corrupt(0, 0)

    def test_backoff_is_exponential(self):
        plan = FaultPlan(retry_timeout=1e-3, backoff_factor=2.0)
        assert plan.backoff(0) == pytest.approx(1e-3)
        assert plan.backoff(3) == pytest.approx(8e-3)


class TestFaultInjector:
    def _injector(self, **plan_kwargs):
        registry = MetricsRegistry()
        injector = FaultInjector(FaultPlan(**plan_kwargs),
                                 registry=registry)
        return injector, registry, SimNetwork(registry=registry)

    def test_crashes_fire_exactly_once(self):
        injector, registry, _ = self._injector(crashes=((2, 1), (2, 3)))
        assert injector.take_crashes(0) == []
        assert injector.take_crashes(2) == [1, 3]
        # A rollback replaying round 2 must not crash again.
        assert injector.take_crashes(2) == []
        assert registry.counter("faults.crash.total").value == 2

    def test_rpc_partition_exhausts_budget(self):
        injector, registry, net = self._injector(
            partitions=((0, 10, {1}),), max_attempts=3,
        )
        before = net.clock.now
        with pytest.raises(MachineDownError):
            injector.charge_rpc_faults(net, 0, 1, size=64)
        # Every lost attempt paid wire time plus its backoff timeout.
        assert net.clock.now > before
        assert registry.counter("rpc.timeout.total").value == 1
        assert registry.counter("rpc.retry.total").value == 3
        assert registry.counter(
            "faults.partition.blocked.total"
        ).value == 1

    def test_rpc_same_side_of_partition_unaffected(self):
        injector, registry, net = self._injector(partitions=((0, 10, {1, 2}),))
        injector.charge_rpc_faults(net, 1, 2, size=64)
        assert registry.counter("rpc.timeout.total").value == 0

    def test_transfer_partition_charges_but_never_raises(self):
        injector, registry, net = self._injector(
            partitions=((0, 10, {1}),), max_attempts=3,
        )
        extra = injector.charge_transfer_faults(net, 0, 1, size=256, count=4)
        assert extra > 0.0
        assert registry.counter("rpc.retry.total").value == 3

    def test_no_faults_costs_nothing(self):
        injector, _, net = self._injector()
        assert injector.charge_transfer_faults(net, 0, 1, 256, 4) == 0.0
        before = net.clock.now
        injector.charge_rpc_faults(net, 0, 1, 64)
        assert net.clock.now == before

    def test_duplicate_and_delay_are_metered(self):
        injector, registry, net = self._injector(
            duplicate_rate=1.0, delay_rate=1.0, extra_latency=1e-4,
        )
        extra = injector.charge_transfer_faults(net, 0, 1, 256, 4)
        assert extra >= 1e-4
        assert registry.counter("faults.duplicate.total").value == 1
        assert registry.counter("faults.delay.total").value == 1

    def test_tokens_give_independent_draws_per_send(self):
        # With drop_rate=0.5, repeated sends over the same link in the
        # same round must not all share one fate.
        injector, _, net = self._injector(drop_rate=0.5, max_attempts=2)
        injector.begin_round(0)
        fates = []
        for _ in range(32):
            try:
                injector.charge_rpc_faults(net, 0, 1, 64)
                fates.append("ok")
            except MachineDownError:
                fates.append("down")
        assert len(set(fates)) == 2

    def test_corrupt_replica_metered(self):
        injector, registry, _ = self._injector(corrupt_rate=1.0)
        assert injector.corrupt_replica(5, 0)
        assert registry.counter("faults.corrupt.total").value == 1
