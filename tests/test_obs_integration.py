"""Cross-layer observability tests: the instrumented subsystems.

Each test injects a private :class:`MetricsRegistry` and checks that the
hot-path counters agree with the subsystem's own accounting — including
the headline regression of this change: a steady churn workload must
wrap the allocator head around the trunk *without* a single
defragmentation pass (the paper's Figure 11 "endless circular
movement"), which was impossible while the committed tail never moved.
"""

import pytest

from repro.cluster import TrinityCluster
from repro.compute import BspEngine, VertexProgram
from repro.config import ClusterConfig, MemoryParams
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud
from repro.memcloud.trunk import MemoryTrunk
from repro.net.simnet import ParallelRound, SimNetwork
from repro.obs import MetricsRegistry


def make_trunk(registry, trunk_size=4096):
    params = MemoryParams(trunk_size=trunk_size, page_size=1024)
    return MemoryTrunk(0, params, registry=registry)


class TestCircularChurn:
    """The headline fix: wrapping must not require defragmentation."""

    def test_churn_wraps_without_defrag(self):
        reg = MetricsRegistry()
        trunk = make_trunk(reg)
        payload = b"c" * 200
        window = 8
        for uid in range(window):
            trunk.put(uid, payload)
        # FIFO churn: the garbage is always right behind the committed
        # tail, so circular reclamation absorbs it and the head cycles
        # the arena endlessly.
        for uid in range(window, 400):
            trunk.remove(uid - window)
            trunk.put(uid, payload)
        stats = trunk.stats()
        assert stats.wraps >= 1
        assert stats.defrag_passes == 0
        assert stats.defrag_passes < stats.wraps
        assert stats.tail_advances >= 1
        # The obs counters tell the same story as TrunkStats.
        assert reg.counter("trunk.wrap.total", trunk=0).value == stats.wraps
        assert reg.counter("trunk.defrag.passes", trunk=0).value == 0
        assert reg.counter("trunk.alloc.total", trunk=0).value == 400
        # Every surviving cell is intact after all that cycling.
        for uid in range(400 - window, 400):
            assert trunk.get(uid) == payload

    def test_wrap_counter_matches_multiple_cycles(self):
        reg = MetricsRegistry()
        trunk = make_trunk(reg)
        payload = b"c" * 200
        for uid in range(8):
            trunk.put(uid, payload)
        for uid in range(8, 2000):
            trunk.remove(uid - 8)
            trunk.put(uid, payload)
        stats = trunk.stats()
        # ~2000 * 216B of allocations through a 4 KiB arena: many laps.
        assert stats.wraps >= 10
        assert stats.defrag_passes == 0


class TestTrunkMetrics:
    def test_defrag_abort_recorded(self):
        reg = MetricsRegistry()
        trunk = make_trunk(reg, trunk_size=64 * 1024)
        trunk.put(1, b"pinned")
        trunk.put(2, b"doomed")
        trunk.remove(2)
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            assert trunk.defragment() is False
            assert trunk.defragment() is False
        finally:
            lock.release()
        assert trunk.defragment() is True
        stats = trunk.stats()
        assert stats.defrag_aborts == 2
        assert stats.defrag_passes == 1
        assert reg.counter("trunk.defrag.aborted", trunk=0).value == 2
        assert reg.counter("trunk.defrag.passes", trunk=0).value == 1

    def test_resize_within_reservation_copies_nothing(self):
        reg = MetricsRegistry()
        trunk = make_trunk(reg, trunk_size=64 * 1024)
        trunk.put(1, b"x" * 64)
        trunk.resize(1, 16)          # shrink: live size only
        trunk.resize(1, 64, fill=7)  # regrow into the same slot
        stats = trunk.stats()
        assert stats.inplace_resizes == 2
        assert stats.relocations == 0
        assert reg.counter("trunk.resize.inplace.total", trunk=0).value == 2
        assert reg.counter("trunk.relocations.total", trunk=0).value == 0
        assert trunk.get(1) == b"x" * 16 + bytes([7]) * 48

    def test_resize_beyond_reservation_relocates(self):
        reg = MetricsRegistry()
        trunk = make_trunk(reg, trunk_size=64 * 1024)
        trunk.put(1, b"x" * 16)
        trunk.resize(1, 512, fill=0)
        stats = trunk.stats()
        assert stats.relocations == 1
        assert reg.counter("trunk.relocations.total", trunk=0).value == 1
        assert trunk.get(1) == b"x" * 16 + b"\x00" * 496

    def test_garbage_gauge_tracks_stats(self):
        reg = MetricsRegistry()
        trunk = make_trunk(reg, trunk_size=64 * 1024)
        for uid in range(4):
            trunk.put(uid, b"g" * 32)
        trunk.remove(2)
        gauge = reg.gauge("trunk.garbage.bytes", trunk=0)
        assert gauge.value == trunk.stats().garbage_bytes > 0


class TestNetworkMetrics:
    def test_empty_traffic_entry_is_not_a_transfer(self):
        # add_message(..., count=0) materialises a (0, 0) entry in the
        # round's outgoing map; finishing the round must not charge it as
        # a physical transfer.
        net = SimNetwork(registry=MetricsRegistry())
        round_ = ParallelRound(net)
        round_.add_message(0, 1, 0, count=0)
        round_.finish()
        assert net.counters.transfers == 0
        assert net.counters.messages == 0

    def test_real_traffic_still_counted(self):
        net = SimNetwork(registry=MetricsRegistry())
        round_ = ParallelRound(net)
        round_.add_message(0, 1, 100, count=2)
        round_.add_message(0, 1, 0, count=0)  # harmless no-op entry
        round_.finish()
        assert net.counters.transfers == 1
        assert net.counters.messages == 2
        assert net.counters.payload_bytes == 100

    def test_round_breakdown_histograms(self):
        reg = MetricsRegistry()
        net = SimNetwork(registry=reg)
        round_ = ParallelRound(net)
        round_.add_compute(0, 1e-3)
        round_.add_message(0, 1, 4096)
        round_.finish()
        assert reg.counter("net.round.total").value == 1
        elapsed = reg.histogram("net.round.elapsed.seconds")
        assert elapsed.count == 1
        assert elapsed.total == pytest.approx(net.clock.now)
        compute = reg.histogram("net.round.compute.seconds")
        assert compute.total == pytest.approx(1e-3)

    def test_traffic_skew_observed(self):
        reg = MetricsRegistry()
        net = SimNetwork(registry=reg)
        round_ = ParallelRound(net)
        round_.add_message(0, 2, 9000)
        round_.add_message(1, 2, 1000)
        round_.finish()
        skew = reg.histogram("net.round.traffic_skew")
        assert skew.count == 1
        assert skew.max == pytest.approx(9000 / 5000)

    def test_per_machine_sent_bytes(self):
        reg = MetricsRegistry()
        net = SimNetwork(registry=reg)
        net.transfer(3, 1, 500)
        net.transfer(3, 2, 250)
        assert reg.counter("net.machine.sent.bytes", machine=3).value == 750


class _PingProgram(VertexProgram):
    restrictive = True
    uniform_messages = True

    def compute(self, ctx, vertex, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1)
        else:
            ctx.vote_to_halt()


def tiny_topology():
    cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=4))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges([(i, (i + 1) % 8) for i in range(8)])
    graph = builder.finalize()
    return CsrTopology(graph, include_inlinks=False)


class TestEngineMetrics:
    def test_bsp_superstep_spans_and_series(self):
        reg = MetricsRegistry()
        network = SimNetwork(registry=reg)
        engine = BspEngine(tiny_topology(), network=network)
        result = engine.run(_PingProgram(), initial_values=[0] * 8)
        steps = result.superstep_count
        assert steps >= 2
        spans = engine.tracer.spans("bsp.superstep")
        assert len(spans) == steps
        # Span durations are simulated seconds and cover the whole run.
        assert sum(s.duration for s in spans) == pytest.approx(
            network.clock.now
        )
        assert spans[0].attrs["superstep"] == 0
        assert spans[0].attrs["messages"] == 8
        assert reg.counter("bsp.superstep.total").value == steps
        assert reg.histogram("span.bsp.superstep.seconds").count == steps
        assert reg.histogram("bsp.superstep.messages").count == steps

    def test_async_engine_series(self):
        from repro.compute.async_engine import AsyncEngine

        reg = MetricsRegistry()
        network = SimNetwork(registry=reg)
        engine = AsyncEngine(tiny_topology(), network=network)

        def no_op(values, vertex, topo):
            values[vertex] += 1
            return ()

        result = engine.run(no_op, [0] * 8, frontier=range(8))
        assert result.terminated
        assert reg.counter("async.updates.total").value == result.updates
        assert reg.counter("async.slice.total").value >= 1
        assert reg.histogram("async.slice.queue_depth").max >= 8


class TestClusterMetrics:
    def test_request_latency_histogram(self):
        reg = MetricsRegistry()
        cluster = TrinityCluster(
            ClusterConfig(machines=4, trunk_bits=5,
                          memory=MemoryParams(trunk_size=256 * 1024)),
            registry=reg,
        )
        client = cluster.new_client()
        for cell in range(16):
            client.put_cell(cell, b"payload")
            assert client.get_cell(cell) == b"payload"
        snap = reg.snapshot()["cluster.request.seconds"]
        assert snap["kind"] == "histogram"
        protocols = {s["labels"]["protocol"] for s in snap["series"]}
        assert {"__get_cell__", "__put_cell__"} <= protocols
        assert sum(s["count"] for s in snap["series"]) >= 32

    def test_cluster_report_covers_every_layer(self):
        reg = MetricsRegistry()
        cluster = TrinityCluster(
            ClusterConfig(machines=4, trunk_bits=5,
                          memory=MemoryParams(trunk_size=256 * 1024)),
            registry=reg,
        )
        client = cluster.new_client()
        for cell in range(8):
            client.put_cell(cell, b"x" * 64)
        report = cluster.metrics_report().nonzero()
        text = report.render()
        assert "trunk.alloc.total" in text
        assert "cluster.request.seconds" in text
        assert report.filter("trunk.").series_count >= 1

    def test_cloud_report_is_trunk_scoped(self):
        reg = MetricsRegistry()
        cloud = MemoryCloud(
            ClusterConfig(machines=2, trunk_bits=4,
                          memory=MemoryParams(trunk_size=256 * 1024)),
            registry=reg,
        )
        cloud.put(1, b"hello")
        report = cloud.metrics_report()
        assert all(name.startswith("trunk.")
                   for name in report.snapshot)
        assert report.filter("trunk.alloc").series_count >= 1

    def test_machine_stats_aggregate_new_fields(self):
        reg = MetricsRegistry()
        cloud = MemoryCloud(
            ClusterConfig(machines=2, trunk_bits=4,
                          memory=MemoryParams(trunk_size=4096,
                                              page_size=1024)),
            registry=reg,
        )
        for cell in range(64):
            cloud.put(cell, b"m" * 120)
        for cell in range(48):
            cloud.remove(cell)
        for cell in range(100, 200):
            cloud.put(cell, b"m" * 120)
        total = sum(
            cloud.machine_stats(m).tail_advances
            for m in range(cloud.config.machines)
        )
        assert total == sum(
            t.stats().tail_advances for t in cloud.trunks.values()
        )
