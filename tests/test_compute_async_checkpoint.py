"""Tests for the async engine and checkpoint manager."""

import pytest

from repro.compute import AsyncEngine, CheckpointManager
from repro.errors import ComputeError, RecoveryError
from repro.tfs import TrinityFileSystem

INF = 10**9


def bfs_relax(values, vertex, topo):
    """Async BFS relaxation: wake neighbors whose level improved."""
    wake = []
    level = values[vertex]
    for neighbor in topo.out_neighbors(vertex):
        neighbor = int(neighbor)
        if values[neighbor] > level + 1:
            values[neighbor] = level + 1
            wake.append(neighbor)
    return wake


class TestAsyncEngine:
    def test_async_bfs_matches_reference(self, rmat_topology, rmat_networkx):
        networkx = pytest.importorskip("networkx")
        values = [INF] * rmat_topology.n
        values[0] = 0
        engine = AsyncEngine(rmat_topology)
        result = engine.run(bfs_relax, values, [0])
        reference = networkx.single_source_shortest_path_length(
            rmat_networkx, 0
        )
        for vertex in range(rmat_topology.n):
            expected = reference.get(vertex, INF)
            assert result.values[vertex] == expected

    def test_terminates(self, rmat_topology):
        values = [INF] * rmat_topology.n
        values[0] = 0
        result = AsyncEngine(rmat_topology).run(bfs_relax, values, [0])
        assert result.terminated
        assert result.updates > 0
        assert result.elapsed > 0

    def test_update_budget_respected(self, rmat_topology):
        values = [INF] * rmat_topology.n
        values[0] = 0
        result = AsyncEngine(rmat_topology).run(
            bfs_relax, values, [0], max_updates=10,
        )
        assert result.updates <= 10

    def test_messages_counted_for_cross_machine_wakes(self, rmat_topology):
        values = [INF] * rmat_topology.n
        values[0] = 0
        result = AsyncEngine(rmat_topology).run(bfs_relax, values, [0])
        assert result.messages > 0

    def test_snapshots_written_at_interruptions(self, rmat_topology):
        tfs = TrinityFileSystem(datanodes=3, replication=2)
        manager = CheckpointManager(tfs, job="async-bfs")
        values = [INF] * rmat_topology.n
        values[0] = 0
        engine = AsyncEngine(rmat_topology, checkpoints=manager,
                             interrupt_every=100)
        result = engine.run(bfs_relax, values, [0])
        assert result.snapshots
        assert manager.saved == len(result.snapshots)

    def test_empty_frontier_terminates_immediately(self, rmat_topology):
        values = [INF] * rmat_topology.n
        result = AsyncEngine(rmat_topology).run(bfs_relax, values, [])
        assert result.updates == 0
        assert result.terminated

    def test_bad_initial_values(self, rmat_topology):
        with pytest.raises(ComputeError):
            AsyncEngine(rmat_topology).run(bfs_relax, [1, 2], [0])


class TestCheckpointManager:
    @pytest.fixture
    def manager(self):
        return CheckpointManager(
            TrinityFileSystem(datanodes=3, replication=2),
            job="test", every=3,
        )

    def test_save_load_roundtrip(self, manager):
        manager.save(5, [1.0, 2.0, None], metadata={"superstep": 5})
        values, metadata = manager.load(5)
        assert values == [1.0, 2.0, None]
        assert metadata == {"superstep": 5}

    def test_load_latest(self, manager):
        manager.save(1, [1])
        manager.save(9, [9])
        manager.save(4, [4])
        tag, values, _ = manager.load_latest()
        assert tag == 9
        assert values == [9]

    def test_load_latest_empty_raises(self, manager):
        with pytest.raises(RecoveryError):
            manager.load_latest()

    def test_maybe_checkpoint_interval(self, manager):
        saved = [manager.maybe_checkpoint(step, [step])
                 for step in range(9)]
        # every=3: saves after supersteps 2, 5, 8.
        assert saved == [False, False, True] * 3
        assert manager.tags() == [2, 5, 8]

    def test_prune_keeps_newest(self, manager):
        for tag in range(6):
            manager.save(tag, [tag])
        removed = manager.prune(keep=2)
        assert removed == 4
        assert manager.tags() == [4, 5]

    def test_unserialisable_values_rejected(self, manager):
        with pytest.raises(RecoveryError, match="JSON"):
            manager.save(0, [object()])

    def test_bsp_integration(self, rmat_topology):
        from repro.compute import BspEngine, VertexProgram

        class Count(VertexProgram):
            def init(self, ctx, v):
                ctx.set_value(v, 0)

            def compute(self, ctx, v, messages):
                ctx.value = ctx.value + 1
                if ctx.superstep >= 6:
                    ctx.vote_to_halt()

        manager = CheckpointManager(
            TrinityFileSystem(datanodes=3, replication=2),
            job="bsp", every=2,
        )
        engine = BspEngine(rmat_topology)
        engine.run(Count(), max_supersteps=8,
                   on_superstep=manager.maybe_checkpoint)
        assert manager.tags()  # checkpoints were written
        # Restoring the latest checkpoint gives a consistent value vector.
        _, values, _ = manager.load_latest()
        assert len(values) == rmat_topology.n

    def test_interval_validated(self):
        with pytest.raises(RecoveryError):
            CheckpointManager(TrinityFileSystem(), every=0)
