"""Tests for asynchronous delta-PageRank (the GraphChi-style model)."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.algorithms import pagerank, pagerank_async
from repro.generators import rmat_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud


@pytest.fixture(scope="module")
def dangling_free_topology():
    """R-MAT plus a ring so no vertex is dangling (the async push method
    drops dangling residual; sync redistributes it — equal only when
    there is none)."""
    edges = rmat_edges(scale=9, avg_degree=8, seed=1)
    n = 512
    ring = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    edges = np.vstack([edges, ring])
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges.tolist())
    return CsrTopology(builder.finalize())


class TestAsyncPageRank:
    def test_converges_to_synchronous_fixed_point(self,
                                                  dangling_free_topology):
        topo = dangling_free_topology
        sync = pagerank(topo, iterations=200)
        ranks, result = pagerank_async(topo, tolerance=1e-13)
        assert result.terminated
        assert np.abs(ranks - sync.ranks).max() < 1e-9

    def test_ranks_are_distribution(self, dangling_free_topology):
        ranks, _ = pagerank_async(dangling_free_topology, tolerance=1e-12)
        assert ranks.sum() == pytest.approx(1.0)
        assert (ranks > 0).all()

    def test_looser_tolerance_fewer_updates(self, dangling_free_topology):
        _, tight = pagerank_async(dangling_free_topology, tolerance=1e-12)
        _, loose = pagerank_async(dangling_free_topology, tolerance=1e-6)
        assert loose.updates < tight.updates

    def test_no_barriers_in_async_run(self, dangling_free_topology):
        """The async engine's elapsed time carries no per-superstep
        barrier cost (there are no supersteps)."""
        _, result = pagerank_async(dangling_free_topology, tolerance=1e-8)
        assert result.elapsed > 0
        assert result.messages > 0

    def test_ranking_stable_under_tolerance(self, dangling_free_topology):
        exact, _ = pagerank_async(dangling_free_topology, tolerance=1e-13)
        rough, _ = pagerank_async(dangling_free_topology, tolerance=1e-7)
        top_exact = set(np.argsort(-exact)[:10].tolist())
        top_rough = set(np.argsort(-rough)[:10].tolist())
        assert len(top_exact & top_rough) >= 8
