"""Unit tests for the adaptive adjacency layouts (tsl/layout.py).

Covers the policy chooser, all three codecs' round trips and canonical
errors, forced-layout encoding, segment/scalar bit-identity, the
accessor's layout-preserving mutation path, and the ``MemoryParams``
layout knob.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig, ConfigError, MemoryParams
from repro.errors import SchemaMismatchError
from repro.graph import GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud
from repro.tsl import (
    LAYOUT_BITMAP,
    LAYOUT_DELTA_VARINT,
    LAYOUT_RAW,
    AdjacencyListType,
    LayoutPolicy,
    compile_tsl,
)
from repro.tsl.layout import (
    DEFAULT_LAYOUT_POLICY,
    RAW_ONLY_POLICY,
    encode_adjacency,
    encode_adjacency_segments,
    resolve_layout_policy,
)
from repro.utils.varint import decode_varint

LOW = LayoutPolicy(delta_min_degree=2, bitmap_min_degree=2)


def stored_tag(blob: bytes) -> int:
    header, _ = decode_varint(blob, 0)
    return header & 3


def make_cell_type(policy=None):
    schema = compile_tsl('''
        [CellType: NodeCell]
        cell struct Person {
            string Name;
            [EdgeType: SimpleEdge, ReferencedCell: Person]
            List<long> Friends;
        }
    ''')
    cell = schema.cell("Person")
    if policy is not None:
        cell.field_type("Friends").policy = policy
    return cell


class TestPolicyChooser:
    def test_short_lists_stay_raw(self):
        assert DEFAULT_LAYOUT_POLICY.choose([1, 2, 3]) == LAYOUT_RAW

    def test_long_arrival_order_list_goes_delta(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10 ** 6, 100)
        assert DEFAULT_LAYOUT_POLICY.choose(values) == LAYOUT_DELTA_VARINT

    def test_dense_ascending_hub_goes_bitmap(self):
        values = np.arange(5000, 5400)
        assert DEFAULT_LAYOUT_POLICY.choose(values) == LAYOUT_BITMAP

    def test_negative_ids_force_raw(self):
        values = [-5, 3, 8] * 20
        assert DEFAULT_LAYOUT_POLICY.choose(values) == LAYOUT_RAW

    def test_sparse_ascending_prefers_delta_over_bitmap(self):
        # Ascending but so sparse the bitmap window dwarfs the varints.
        values = np.arange(0, 10 ** 7, 10 ** 4)
        assert DEFAULT_LAYOUT_POLICY.choose(values) == LAYOUT_DELTA_VARINT

    def test_raw_only_policy_never_picks_codecs(self):
        assert RAW_ONLY_POLICY.choose(np.arange(10000)) == LAYOUT_RAW

    def test_choice_matches_encoded_tag(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            count = int(rng.integers(0, 200))
            values = rng.integers(0, int(rng.integers(1, 10 ** 6)),
                                  count)
            if rng.integers(0, 2):
                values = np.unique(values)
            blob = encode_adjacency(values, DEFAULT_LAYOUT_POLICY)
            assert stored_tag(blob) == DEFAULT_LAYOUT_POLICY.choose(values)

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            LayoutPolicy(delta_min_degree=0)
        with pytest.raises(ValueError):
            LayoutPolicy(bitmap_min_degree=-1)

    def test_resolve_presets(self):
        assert resolve_layout_policy(None) is None
        assert resolve_layout_policy("adaptive") is DEFAULT_LAYOUT_POLICY
        assert resolve_layout_policy("raw") is RAW_ONLY_POLICY
        assert resolve_layout_policy(LOW) is LOW
        with pytest.raises(ValueError):
            resolve_layout_policy("zstd")


class TestRoundTrips:
    CASES = [
        [],
        [0],
        [7, 7, 7],
        list(range(100)),
        list(range(0, 800, 3)),
        [2 ** 63 - 1, 0, 2 ** 63 - 1],
        [-(2 ** 63), 2 ** 63 - 1],
        list(np.random.default_rng(3).integers(
            -(2 ** 40), 2 ** 40, 50)),
    ]

    @pytest.mark.parametrize("values", CASES, ids=range(len(CASES)))
    @pytest.mark.parametrize("policy", [DEFAULT_LAYOUT_POLICY, LOW,
                                        RAW_ONLY_POLICY],
                             ids=["adaptive", "low", "raw"])
    def test_scalar_round_trip(self, values, policy):
        cell = make_cell_type(policy)
        values = [int(v) for v in values]
        blob = cell.encode({"Name": "x", "Friends": values})
        decoded, end = cell.decode(blob, 0)
        assert end == len(blob)
        assert decoded["Friends"] == values

    def test_empty_list_is_one_zero_byte(self):
        adj = AdjacencyListType()
        assert adj.encode([]) == b"\x00"
        assert adj.decode(b"\x00", 0) == ([], 1)

    def test_delta_beats_raw_on_clustered_ids(self):
        # Arrival order (not ascending), so bitmap is ineligible and the
        # chooser weighs delta-varint against raw directly.
        rng = np.random.default_rng(5)
        values = (10 ** 9
                  + rng.permutation(np.arange(0, 1000, 7))).tolist()
        adaptive = encode_adjacency(np.asarray(values), DEFAULT_LAYOUT_POLICY)
        raw = encode_adjacency(np.asarray(values), RAW_ONLY_POLICY)
        assert stored_tag(adaptive) == LAYOUT_DELTA_VARINT
        assert len(adaptive) < len(raw) // 2

    def test_bitmap_beats_delta_on_dense_ids(self):
        values = np.arange(10 ** 6, 10 ** 6 + 2048).tolist()
        blob = encode_adjacency(np.asarray(values), DEFAULT_LAYOUT_POLICY)
        assert stored_tag(blob) == LAYOUT_BITMAP
        assert len(blob) < 300  # 2048 bits + framing vs 16 KiB raw


class TestForcedLayouts:
    def test_force_each_layout_round_trips(self):
        adj = AdjacencyListType()
        values = list(range(50, 60))
        for tag in (LAYOUT_RAW, LAYOUT_DELTA_VARINT, LAYOUT_BITMAP):
            blob = adj.encode_with_layout(values, tag)
            assert blob is not None
            assert stored_tag(blob) == tag
            assert adj.decode(blob, 0)[0] == values

    def test_delta_rejects_negatives(self):
        adj = AdjacencyListType()
        assert adj.encode_with_layout([-1, 2], LAYOUT_DELTA_VARINT) is None

    def test_bitmap_rejects_unsorted_duplicates_empty(self):
        adj = AdjacencyListType()
        assert adj.encode_with_layout([3, 1], LAYOUT_BITMAP) is None
        assert adj.encode_with_layout([3, 3], LAYOUT_BITMAP) is None
        assert adj.encode_with_layout([], LAYOUT_BITMAP) is None
        assert adj.encode_with_layout([-2, 5], LAYOUT_BITMAP) is None

    def test_unknown_tag_raises(self):
        adj = AdjacencyListType()
        with pytest.raises(ValueError):
            adj.encode_with_layout([1], 3)


class TestCanonicalErrors:
    def test_reserved_tag_raises(self):
        adj = AdjacencyListType()
        blob = bytes([(1 << 2) | 3]) + b"\x00" * 8
        with pytest.raises(SchemaMismatchError, match="layout tag 3"):
            adj.decode(blob, 0)

    def test_truncated_delta_payload(self):
        adj = AdjacencyListType()
        blob = adj.encode_with_layout(list(range(20)), LAYOUT_DELTA_VARINT)
        with pytest.raises(SchemaMismatchError):
            adj.decode(blob[:-3], 0)

    def test_delta_payload_trailing_bytes(self):
        adj = AdjacencyListType()
        good = adj.encode_with_layout([4, 5], LAYOUT_DELTA_VARINT)
        # Header says 2 values; payload length claims one extra byte.
        header, pos = decode_varint(good, 0)
        nbytes, payload_start = decode_varint(good, pos)
        bad = (bytes([header]) + bytes([nbytes + 1])
               + good[payload_start:] + b"\x00")
        with pytest.raises(SchemaMismatchError, match="corrupt"):
            adj.decode(bad, 0)

    def test_bitmap_popcount_mismatch(self):
        adj = AdjacencyListType()
        blob = bytearray(adj.encode_with_layout(list(range(8, 16)),
                                                LAYOUT_BITMAP))
        blob[-1] &= 0x7F  # clear one set bit; count header now lies
        with pytest.raises(SchemaMismatchError, match="popcount"):
            adj.decode(bytes(blob), 0)

    def test_bitmap_truncated(self):
        adj = AdjacencyListType()
        blob = adj.encode_with_layout(list(range(64)), LAYOUT_BITMAP)
        with pytest.raises(SchemaMismatchError, match="too short"):
            adj.decode(blob[:-2], 0)


class TestSegmentEncoder:
    def test_matches_scalar_per_segment(self):
        rng = np.random.default_rng(11)
        flat = rng.integers(0, 10 ** 5, 500)
        cuts = np.sort(rng.choice(np.arange(1, 500), 19, replace=False))
        starts = np.concatenate(([0], cuts))
        ends = np.append(cuts, 500)
        blobs = encode_adjacency_segments(flat, starts, ends,
                                          DEFAULT_LAYOUT_POLICY)
        for blob, s, e in zip(blobs, starts, ends):
            assert blob == encode_adjacency(flat[s:e], DEFAULT_LAYOUT_POLICY)

    def test_non_contiguous_subset_segments(self):
        """The parallel loader's subset groups share one flat array with
        gaps between kept segments — stats must not leak across them."""
        flat = np.concatenate([
            np.arange(100, 200),          # dense ascending (bitmap)
            np.array([-1] * 50),          # raw filler, skipped
            np.arange(0, 10 ** 6, 9973),  # sparse ascending (delta)
        ])
        starts = np.array([0, 150], dtype=np.int64)
        ends = np.array([100, len(flat)], dtype=np.int64)
        blobs = encode_adjacency_segments(flat, starts, ends,
                                          DEFAULT_LAYOUT_POLICY)
        assert stored_tag(blobs[0]) == LAYOUT_BITMAP
        assert stored_tag(blobs[1]) == LAYOUT_DELTA_VARINT
        adj = AdjacencyListType()
        assert adj.decode(blobs[0], 0)[0] == flat[0:100].tolist()
        assert adj.decode(blobs[1], 0)[0] == flat[150:].tolist()

    def test_empty_segments(self):
        flat = np.arange(10)
        starts = np.array([0, 5, 5], dtype=np.int64)
        ends = np.array([5, 5, 10], dtype=np.int64)
        blobs = encode_adjacency_segments(flat, starts, ends, LOW)
        assert blobs[1] == b"\x00"
        adj = AdjacencyListType()
        assert adj.decode(blobs[0], 0)[0] == [0, 1, 2, 3, 4]
        assert adj.decode(blobs[2], 0)[0] == [5, 6, 7, 8, 9]


class TestAccessorLayoutPreservation:
    def _graph(self, policy="adaptive", edges=None):
        cloud = MemoryCloud(ClusterConfig(
            machines=2, memory=MemoryParams(layout_policy=policy)))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        for src, dst in edges:
            builder.add_edge(src, dst)
        return builder.finalize(cross_check=True)

    def _tag_of(self, graph, node):
        blob = graph.cloud.get(node)
        node_type = graph.graph_schema.node_type
        offset = node_type.field_offset(blob, "Outlinks")
        return node_type.field_type("Outlinks").stored_layout(blob, offset)

    def test_append_preserves_delta_layout(self):
        edges = [(1, int(v)) for v in
                 np.random.default_rng(0).integers(0, 10 ** 5, 64)]
        graph = self._graph(edges=edges)
        assert self._tag_of(graph, 1) == LAYOUT_DELTA_VARINT
        graph.add_edge(1, 99999999)
        assert self._tag_of(graph, 1) == LAYOUT_DELTA_VARINT
        assert graph.outlinks(1) == [dst for _, dst in edges] + [99999999]

    def test_append_breaking_bitmap_falls_back_to_raw(self):
        edges = [(1, v) for v in range(1000, 1100)]
        graph = self._graph(edges=edges)
        assert self._tag_of(graph, 1) == LAYOUT_BITMAP
        graph.add_edge(1, 500)  # smaller than every neighbor: not ascending
        assert self._tag_of(graph, 1) == LAYOUT_RAW
        assert graph.outlinks(1) == list(range(1000, 1100)) + [500]

    def test_setitem_on_codec_cell(self):
        edges = [(1, v) for v in range(1000, 1100)]
        graph = self._graph(edges=edges)
        with graph.use_node(1) as cell:
            cell.get("Outlinks")[0] = 999
        expected = [999] + list(range(1001, 1100))
        assert graph.outlinks(1) == expected
        # Still ascending, so the bitmap tag survived the rewrite.
        assert self._tag_of(graph, 1) == LAYOUT_BITMAP

    def test_raw_policy_cloud_stores_raw_everywhere(self):
        edges = [(1, int(v)) for v in
                 np.random.default_rng(1).integers(0, 10 ** 5, 64)]
        graph = self._graph(policy="raw", edges=edges)
        assert self._tag_of(graph, 1) == LAYOUT_RAW

    def test_iteration_and_indexing_on_codec_cell(self):
        edges = [(1, int(v)) for v in
                 np.random.default_rng(2).integers(0, 10 ** 5, 64)]
        graph = self._graph(edges=edges)
        expected = [dst for _, dst in edges]
        with graph.use_node(1) as cell:
            friends = cell.get("Outlinks")
            assert len(friends) == len(expected)
            assert list(friends) == expected
            assert friends[0] == expected[0]
            assert friends[-1] == expected[-1]
            with pytest.raises(IndexError, match="out of range"):
                friends[len(expected)]


class TestConfigKnob:
    def test_invalid_knob_rejected(self):
        with pytest.raises(ConfigError, match="layout_policy"):
            MemoryParams(layout_policy="zstd")

    def test_policy_object_accepted(self):
        params = MemoryParams(layout_policy=LOW)
        assert params.resolved_layout_policy() is LOW

    def test_compiler_scopes_adjacency_to_edge_fields(self):
        schema = compile_tsl('''
            struct Msg { List<long> Ids; }
            [CellType: NodeCell]
            cell struct Node {
                List<long> Plain;
                [EdgeType: SimpleEdge]
                List<long> Out;
            }
        ''')
        node = schema.cell("Node")
        assert isinstance(node.field_type("Out"), AdjacencyListType)
        assert not isinstance(node.field_type("Plain"), AdjacencyListType)
        assert not isinstance(schema.struct("Msg").field_type("Ids"),
                              AdjacencyListType)
