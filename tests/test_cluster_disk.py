"""Tests: whole-cluster durability with a disk-backed TFS."""


from repro.config import ClusterConfig, MemoryParams
from repro.cluster import TrinityCluster


def make_cluster(disk_root):
    return TrinityCluster(
        ClusterConfig(machines=3, trunk_bits=4,
                      memory=MemoryParams(trunk_size=256 * 1024)),
        disk_root=disk_root,
    )


class TestClusterRestart:
    def test_cold_restart_restores_everything(self, tmp_path):
        cluster = make_cluster(tmp_path)
        client = cluster.new_client()
        reference = {uid: f"value-{uid}".encode() for uid in range(250)}
        for uid, value in reference.items():
            client.put_cell(uid, value)
        cluster.backup_to_tfs()
        del cluster, client  # "process exit"

        reborn = make_cluster(tmp_path)
        restored = reborn.restore_from_tfs()
        assert restored == len(reference)
        fresh_client = reborn.new_client()
        for uid, value in reference.items():
            assert fresh_client.get_cell(uid) == value

    def test_restart_then_failure_recovery_still_works(self, tmp_path):
        cluster = make_cluster(tmp_path)
        client = cluster.new_client()
        for uid in range(100):
            client.put_cell(uid, b"x%d" % uid)
        cluster.backup_to_tfs()
        del cluster, client

        reborn = make_cluster(tmp_path)
        reborn.restore_from_tfs()
        reborn.backup_to_tfs()          # fresh images for the new epoch
        reborn.fail_machine(1)
        reborn.report_failure(1)
        fresh_client = reborn.new_client()
        for uid in range(100):
            assert fresh_client.get_cell(uid) == b"x%d" % uid

    def test_restore_without_backup_is_empty(self, tmp_path):
        cluster = make_cluster(tmp_path)
        assert cluster.restore_from_tfs() == 0
