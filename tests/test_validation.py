"""Tests for the Graph500-style result validators."""

import numpy as np
import pytest

from repro.algorithms import bfs, pagerank, wcc
from repro.algorithms.validation import (
    validate_bfs_levels,
    validate_components,
    validate_pagerank,
)
from repro.errors import ComputeError


class TestBfsValidation:
    def test_accepts_real_bfs(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        validate_bfs_levels(rmat_topology, 0, run.levels)

    def test_rejects_wrong_root_level(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        levels = run.levels.copy()
        levels[0] = 1
        with pytest.raises(ComputeError, match="root level"):
            validate_bfs_levels(rmat_topology, 0, levels)

    def test_rejects_level_jump(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        levels = run.levels.copy()
        victim = int(np.nonzero(levels == 2)[0][0])
        levels[victim] = 7  # creates an edge spanning several levels
        with pytest.raises(ComputeError):
            validate_bfs_levels(rmat_topology, 0, levels)

    def test_rejects_orphan(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        levels = run.levels.copy()
        depth = int(levels.max())
        victim = int(np.nonzero(levels == depth)[0][0])
        levels[victim] = depth + 3  # reached, but no parent at depth+2
        with pytest.raises(ComputeError):
            validate_bfs_levels(rmat_topology, 0, levels)

    def test_rejects_unreached_leak(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        levels = run.levels.copy()
        reached = np.nonzero(levels > 0)[0]
        levels[reached[0]] = -1  # pretend a reached vertex was missed
        with pytest.raises(ComputeError):
            validate_bfs_levels(rmat_topology, 0, levels)

    def test_length_checked(self, rmat_topology):
        with pytest.raises(ComputeError, match="length"):
            validate_bfs_levels(rmat_topology, 0, np.zeros(3))


class TestPageRankValidation:
    def test_accepts_real_ranks(self, rmat_topology):
        run = pagerank(rmat_topology, iterations=10)
        validate_pagerank(run.ranks)

    def test_rejects_bad_sum(self):
        with pytest.raises(ComputeError, match="sum"):
            validate_pagerank(np.array([0.5, 0.1]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ComputeError, match="non-positive"):
            validate_pagerank(np.array([1.0, 0.0]))

    def test_rejects_nan(self):
        with pytest.raises(ComputeError, match="non-finite"):
            validate_pagerank(np.array([np.nan, 1.0]))


class TestComponentValidation:
    def test_accepts_real_wcc(self, undirected_topology):
        run = wcc(undirected_topology)
        validate_components(undirected_topology, run.labels)

    def test_rejects_split_edge(self, undirected_topology):
        run = wcc(undirected_topology)
        labels = run.labels.copy()
        # Give one connected vertex a label of its own.
        degrees = undirected_topology.out_degrees()
        victim = int(np.nonzero(degrees > 0)[0][0])
        labels[victim] = victim if victim != labels[victim] else victim + 1
        with pytest.raises(ComputeError):
            validate_components(undirected_topology, labels)
