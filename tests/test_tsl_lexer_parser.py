"""Tests for the TSL lexer and parser."""

import pytest

from repro.errors import TslSyntaxError
from repro.tsl import parse_tsl, tokenize
from repro.tsl.ast import TypeExpr

MOVIE_TSL = """
[CellType: NodeCell]
cell struct Movie {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Actor]
    List<long> Actors;
}
"""


class TestLexer:
    def test_tokens_have_positions(self):
        tokens = tokenize("cell struct X {\n int A;\n}")
        assert tokens[0].kind == "KEYWORD"
        assert tokens[0].line == 1
        int_token = next(t for t in tokens if t.text == "int")
        assert int_token.line == 2

    def test_line_comments_stripped(self):
        tokens = tokenize("struct A { // a comment\n int B; }")
        assert all("comment" not in t.text for t in tokens)

    def test_block_comments_stripped(self):
        tokens = tokenize("struct /* hidden\n lines */ A { }")
        assert [t.text for t in tokens] == ["struct", "A", "{", "}"]

    def test_unterminated_block_comment(self):
        with pytest.raises(TslSyntaxError, match="unterminated"):
            tokenize("struct A { /* oops")

    def test_unexpected_character(self):
        with pytest.raises(TslSyntaxError, match="unexpected character"):
            tokenize("struct A { int @x; }")

    def test_numbers(self):
        tokens = tokenize("[Version: 42]")
        assert any(t.kind == "NUMBER" and t.text == "42" for t in tokens)


class TestParserStructs:
    def test_cell_struct(self):
        script = parse_tsl(MOVIE_TSL)
        movie = script.struct("Movie")
        assert movie.is_cell
        assert [f.name for f in movie.fields] == ["Name", "Actors"]

    def test_cell_attributes(self):
        script = parse_tsl(MOVIE_TSL)
        movie = script.struct("Movie")
        assert movie.attribute_map == {"CellType": "NodeCell"}

    def test_field_edge_attributes(self):
        script = parse_tsl(MOVIE_TSL)
        actors = script.struct("Movie").fields[1]
        assert actors.edge_type == "SimpleEdge"
        assert actors.referenced_cell == "Actor"
        assert actors.type_expr == TypeExpr("List", (TypeExpr("long"),))

    def test_plain_struct_not_cell(self):
        script = parse_tsl("struct Message { string Text; }")
        assert not script.struct("Message").is_cell

    def test_nested_generic(self):
        script = parse_tsl("struct S { List<List<int>> Matrix; }")
        field = script.struct("S").fields[0]
        assert str(field.type_expr) == "List<List<int>>"

    def test_duplicate_field_rejected(self):
        with pytest.raises(TslSyntaxError, match="duplicate field"):
            parse_tsl("struct S { int A; long A; }")

    def test_missing_semicolon(self):
        with pytest.raises(TslSyntaxError):
            parse_tsl("struct S { int A }")

    def test_unclosed_brace(self):
        with pytest.raises(TslSyntaxError, match="unexpected end"):
            parse_tsl("struct S { int A;")

    def test_error_carries_position(self):
        try:
            parse_tsl("struct S {\n  int A\n}")
        except TslSyntaxError as exc:
            assert exc.line >= 2
        else:
            pytest.fail("expected TslSyntaxError")


class TestParserProtocols:
    def test_echo_protocol(self):
        script = parse_tsl("""
        struct MyMessage { string Text; }
        protocol Echo {
            Type: Syn;
            Request: MyMessage;
            Response: MyMessage;
        }
        """)
        echo = script.protocols[0]
        assert echo.name == "Echo"
        assert echo.kind == "Syn"
        assert echo.request == "MyMessage"
        assert echo.response == "MyMessage"

    def test_async_protocol(self):
        script = parse_tsl("""
        struct M { int X; }
        protocol Fire { Type: Asyn; Request: M; }
        """)
        assert script.protocols[0].kind == "Asyn"
        assert script.protocols[0].response is None

    def test_void_messages(self):
        script = parse_tsl("protocol Ping { Type: Syn; Request: void; }")
        assert script.protocols[0].request is None

    def test_default_type_is_syn(self):
        script = parse_tsl("struct M { int X; } protocol P { Request: M; }")
        assert script.protocols[0].kind == "Syn"

    def test_bad_type_rejected(self):
        with pytest.raises(TslSyntaxError, match="Syn or Asyn"):
            parse_tsl("protocol P { Type: Sometimes; }")

    def test_unknown_setting_rejected(self):
        with pytest.raises(TslSyntaxError, match="unknown protocol setting"):
            parse_tsl("protocol P { Colour: Blue; }")

    def test_duplicate_setting_rejected(self):
        with pytest.raises(TslSyntaxError, match="duplicate"):
            parse_tsl("protocol P { Type: Syn; Type: Asyn; }")
