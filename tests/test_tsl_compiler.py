"""Tests for the TSL compiler: schema resolution and protocol specs."""

import pytest

from repro.errors import TslTypeError
from repro.tsl import compile_tsl

FULL_TSL = """
[CellType: NodeCell]
cell struct Movie {
    string Name;
    int Year;
    [EdgeType: SimpleEdge, ReferencedCell: Actor]
    List<long> Actors;
}
[CellType: NodeCell]
cell struct Actor {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Movie]
    List<long> Movies;
}
struct MyMessage { string Text; }
protocol Echo { Type: Syn; Request: MyMessage; Response: MyMessage; }
protocol Notify { Type: Asyn; Request: MyMessage; }
"""


class TestCompilation:
    def test_cells_vs_structs(self):
        schema = compile_tsl(FULL_TSL)
        assert set(schema.cells) == {"Movie", "Actor"}
        assert "MyMessage" in schema.structs
        assert "MyMessage" not in schema.cells

    def test_encode_decode_roundtrip(self):
        schema = compile_tsl(FULL_TSL)
        record = {"Name": "Heat", "Year": 1995, "Actors": [10, 11]}
        blob = schema.encode("Movie", record)
        assert schema.decode("Movie", blob) == record

    def test_trailing_bytes_detected(self):
        schema = compile_tsl(FULL_TSL)
        blob = schema.encode("Movie", {"Name": "X", "Year": 1, "Actors": []})
        with pytest.raises(TslTypeError, match="trailing"):
            schema.decode("Movie", blob + b"\x00")

    def test_edge_fields(self):
        schema = compile_tsl(FULL_TSL)
        edges = schema.edge_fields("Movie")
        assert len(edges) == 1
        assert edges[0].field_name == "Actors"
        assert edges[0].edge_type == "SimpleEdge"
        assert edges[0].referenced_cell == "Actor"

    def test_cell_attributes(self):
        schema = compile_tsl(FULL_TSL)
        assert schema.cell_attributes("Movie") == {"CellType": "NodeCell"}

    def test_unknown_struct_raises(self):
        schema = compile_tsl(FULL_TSL)
        with pytest.raises(TslTypeError):
            schema.struct("Ghost")
        with pytest.raises(TslTypeError):
            schema.cell("MyMessage")

    def test_nested_user_struct(self):
        schema = compile_tsl("""
        struct Inner { int A; }
        cell struct Outer { Inner Nested; List<Inner> Many; }
        """)
        blob = schema.encode("Outer", {
            "Nested": {"A": 1}, "Many": [{"A": 2}, {"A": 3}],
        })
        decoded = schema.decode("Outer", blob)
        assert decoded["Many"][1] == {"A": 3}

    def test_embedding_cycle_rejected(self):
        with pytest.raises(TslTypeError, match="cycle"):
            compile_tsl("""
            struct A { B Other; }
            struct B { A Other; }
            """)

    def test_self_embedding_rejected(self):
        with pytest.raises(TslTypeError, match="cycle"):
            compile_tsl("struct A { A Self; }")

    def test_unknown_type_rejected(self):
        with pytest.raises(TslTypeError, match="unknown type"):
            compile_tsl("struct A { Widget W; }")

    def test_unknown_generic_rejected(self):
        with pytest.raises(TslTypeError, match="unknown generic"):
            compile_tsl("struct A { Set<int> S; }")

    def test_list_arity_checked(self):
        with pytest.raises(TslTypeError, match="one type argument"):
            compile_tsl("struct A { List<int, long> S; }")

    def test_duplicate_structs_rejected(self):
        with pytest.raises(TslTypeError, match="duplicate"):
            compile_tsl("struct A { int X; } struct A { int Y; }")

    def test_csharp_aliases(self):
        schema = compile_tsl("struct A { int64 Big; uint8 Small; }")
        blob = schema.encode("A", {"Big": 2**40, "Small": 255})
        assert schema.decode("A", blob) == {"Big": 2**40, "Small": 255}

    def test_bitarray_field(self):
        schema = compile_tsl("struct A { BitArray Flags; }")
        blob = schema.encode("A", {"Flags": [True, False, True]})
        assert schema.decode("A", blob)["Flags"] == [True, False, True]


class TestProtocols:
    def test_sync_protocol_spec(self):
        schema = compile_tsl(FULL_TSL)
        echo = schema.protocol("Echo")
        assert echo.is_synchronous
        assert echo.request.name == "MyMessage"
        assert echo.response.name == "MyMessage"

    def test_async_protocol_spec(self):
        schema = compile_tsl(FULL_TSL)
        notify = schema.protocol("Notify")
        assert not notify.is_synchronous
        assert notify.response is None

    def test_unknown_protocol(self):
        schema = compile_tsl(FULL_TSL)
        with pytest.raises(TslTypeError):
            schema.protocol("Ghost")

    def test_unknown_message_type_rejected(self):
        with pytest.raises(TslTypeError, match="unknown message type"):
            compile_tsl("protocol P { Type: Syn; Request: Ghost; }")
