"""Audit of the client's addressing-table replica and retry path.

``recovery.py`` promises that "slaves that miss the broadcast re-sync
lazily on their next failed load".  Clients hold the same kind of
replica (Section 3: every machine caches the addressing table), so the
same promise must hold for ``Client.get_cell``/``put_cell``: a stale
route is repaired by a lazy re-sync from the primary, *without* pestering
the leader with spurious failure reports — and only a genuinely new
failure (the table was already current) triggers ``recover_machine``.
"""

import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.cluster import TrinityCluster
from repro.errors import CellNotFoundError, MachineDownError


@pytest.fixture
def cluster():
    return TrinityCluster(ClusterConfig(
        machines=4, trunk_bits=5,
        memory=MemoryParams(trunk_size=256 * 1024),
    ))


def cell_on_machine(cluster, machine):
    """A cell id the primary table routes to ``machine``."""
    for uid in range(10_000):
        if cluster.cloud.addressing.machine_for_cell(uid) == machine:
            return uid
    raise AssertionError(f"no cell maps to machine {machine}")


def test_client_has_its_own_replica(cluster):
    client = cluster.new_client()
    assert client.addressing_replica is not cluster.cloud.addressing
    assert not client.sync_addressing()     # fresh copy is current


def test_stale_replica_resyncs_lazily_without_new_recovery(cluster):
    client = cluster.new_client()
    uid = cell_on_machine(cluster, 1)
    client.put_cell(uid, b"payload")
    cluster.backup_to_tfs()

    # Recovery happens behind the client's back (heartbeat-driven).
    cluster.fail_machine(1)
    cluster.report_failure(1)
    assert cluster.recovery.recoveries == 1
    # The client's replica still routes the cell to the corpse.
    assert client.addressing_replica.machine_for_cell(uid) == 1
    assert cluster.cloud.addressing.machine_for_cell(uid) != 1

    assert client.get_cell(uid) == b"payload"
    # One lazy re-sync fixed the route; the leader was not re-engaged.
    assert cluster.recovery.recoveries == 1
    assert client.retries == 1
    assert client.addressing_replica.machine_for_cell(uid) != 1


def test_current_table_and_dead_machine_reports_failure(cluster):
    client = cluster.new_client()
    uid = cell_on_machine(cluster, 2)
    client.put_cell(uid, b"v")
    cluster.backup_to_tfs()

    # The machine dies and *nobody* has noticed: the primary table still
    # routes to it, so the client's re-sync is a no-op and the failure
    # is genuinely news — the client must drive recovery itself.
    cluster.fail_machine(2)
    assert client.get_cell(uid) == b"v"
    assert cluster.recovery.recoveries == 1


def test_two_stale_clients_trigger_recovery_once(cluster):
    first = cluster.new_client()
    second = cluster.new_client()
    uid = cell_on_machine(cluster, 1)
    first.put_cell(uid, b"shared")
    cluster.backup_to_tfs()

    cluster.fail_machine(1)
    assert first.get_cell(uid) == b"shared"   # drives the recovery
    assert second.get_cell(uid) == b"shared"  # lazily re-syncs only
    assert cluster.recovery.recoveries == 1


def test_put_cell_resyncs_lazily_too(cluster):
    client = cluster.new_client()
    uid = cell_on_machine(cluster, 1)
    client.put_cell(uid, b"before")
    cluster.backup_to_tfs()

    cluster.fail_machine(1)
    cluster.report_failure(1)
    client.put_cell(uid, b"after")
    assert cluster.recovery.recoveries == 1
    assert client.get_cell(uid) == b"after"


def test_retry_exhaustion_raises_machine_down(cluster, monkeypatch):
    """If recovery never makes progress the retry budget must bound the
    loop — and every attempt must have tried a re-sync first."""
    client = cluster.new_client()
    uid = cell_on_machine(cluster, 3)
    client.put_cell(uid, b"v")
    # Recovery is wedged: reports change nothing.
    monkeypatch.setattr(cluster, "report_failure", lambda machine: None)
    cluster.fail_machine(3)
    with pytest.raises(MachineDownError):
        client.get_cell(uid, max_retries=2)
    assert client.retries == 3      # max_retries + 1 attempts


def test_missing_cell_resyncs_before_giving_up(cluster):
    """An empty load on a live slave re-checks the table before raising:
    the cell may have moved since the replica was cut."""
    client = cluster.new_client()
    uid = cell_on_machine(cluster, 0)
    client.put_cell(uid, b"moves")
    cluster.backup_to_tfs()
    # Recovery relocates the cell while the client's replica is stale.
    cluster.fail_machine(0)
    cluster.report_failure(0)
    assert client.get_cell(uid) == b"moves"

    # A genuinely absent cell still raises, with a current table.
    missing = cell_on_machine(cluster, cluster.alive_machines()[0]) + 1
    while cluster.cloud.addressing.machine_for_cell(missing) not in \
            cluster.alive_machines():
        missing += 1
    with pytest.raises(CellNotFoundError):
        client.get_cell(missing)
