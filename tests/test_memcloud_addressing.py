"""Tests for the addressing table (slots, relocation, replication)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressingError
from repro.memcloud.addressing import AddressingTable
from repro.utils.hashing import trunk_of


class TestConstruction:
    def test_slot_count_is_2_to_p(self):
        table = AddressingTable(5, range(3))
        assert table.slot_count == 32

    def test_round_robin_balance(self):
        table = AddressingTable(6, range(4))
        loads = table.load_per_machine()
        assert set(loads) == {0, 1, 2, 3}
        assert max(loads.values()) - min(loads.values()) == 0

    def test_needs_machines(self):
        with pytest.raises(AddressingError):
            AddressingTable(4, [])


class TestLookup:
    def test_cell_resolution_consistent_with_trunk_hash(self):
        table = AddressingTable(5, range(3))
        for cell_id in range(1000):
            trunk = trunk_of(cell_id, 5)
            assert (table.machine_for_cell(cell_id)
                    == table.machine_for_trunk(trunk))

    def test_trunk_out_of_range(self):
        table = AddressingTable(3, range(2))
        with pytest.raises(AddressingError):
            table.machine_for_trunk(8)

    def test_trunks_of(self):
        table = AddressingTable(4, range(2))
        assert sorted(table.trunks_of(0) + table.trunks_of(1)) == list(range(16))


class TestMembership:
    def test_remove_machine_moves_all_its_trunks(self):
        table = AddressingTable(5, range(4))
        moves = table.remove_machine(2, [0, 1, 3])
        assert set(moves) and all(m != 2 for m in moves.values())
        assert table.trunks_of(2) == []
        loads = table.load_per_machine()
        assert max(loads.values()) - min(loads.values()) <= 1

    def test_remove_machine_needs_survivors(self):
        table = AddressingTable(3, [0])
        with pytest.raises(AddressingError):
            table.remove_machine(0, [0])

    def test_remove_bumps_version(self):
        table = AddressingTable(4, range(3))
        version = table.version
        table.remove_machine(1, [0, 2])
        assert table.version > version

    def test_add_machine_takes_fair_share(self):
        table = AddressingTable(6, range(4))
        moves = table.add_machine(9)
        assert len(moves) == 64 // 5
        assert len(table.trunks_of(9)) == len(moves)

    def test_add_existing_machine_rejected(self):
        table = AddressingTable(4, range(2))
        with pytest.raises(AddressingError):
            table.add_machine(1)

    def test_reassign_single_slot(self):
        table = AddressingTable(4, range(2))
        table.reassign(3, 7)
        assert table.machine_for_trunk(3) == 7

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(3, 7))
    def test_every_cell_stays_mapped_through_churn(self, machines, bits):
        table = AddressingTable(bits, range(machines))
        cells = list(range(0, 5000, 37))
        table.add_machine(machines)
        if machines > 1:
            table.remove_machine(0, list(range(1, machines + 1)))
        for cell in cells:
            owner = table.machine_for_cell(cell)
            assert owner in table.machines()


class TestReplication:
    def test_copy_is_independent(self):
        primary = AddressingTable(4, range(2))
        replica = primary.copy()
        primary.reassign(0, 5)
        assert replica.machine_for_trunk(0) != 5
        assert replica == replica.copy()

    def test_sync_pulls_newer_state(self):
        primary = AddressingTable(4, range(2))
        replica = primary.copy()
        primary.reassign(0, 5)
        assert replica.sync_from(primary)
        assert replica.machine_for_trunk(0) == 5
        assert replica.version == primary.version

    def test_sync_skips_older_state(self):
        primary = AddressingTable(4, range(2))
        replica = primary.copy()
        replica.version += 5
        assert not replica.sync_from(primary)

    def test_serialization_roundtrip(self):
        table = AddressingTable(5, range(3))
        table.remove_machine(1, [0, 2])
        restored = AddressingTable.from_bytes(table.to_bytes())
        assert restored == table
        assert restored.version == table.version

    def test_corrupt_image_rejected(self):
        table = AddressingTable(3, range(2))
        payload = table.to_bytes().replace(b'"trunk_bits": 3', b'"trunk_bits": 5')
        with pytest.raises(AddressingError):
            AddressingTable.from_bytes(payload)
