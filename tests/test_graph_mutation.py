"""Tests for online graph mutation (live add_node/add_edge)."""


import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.errors import QueryError
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema, social_graph_schema
from repro.memcloud import MemoryCloud


@pytest.fixture
def live_graph(cloud):
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges([(0, 1), (1, 2)])
    return builder.finalize()


class TestOnlineMutation:
    def test_add_node(self, live_graph):
        live_graph.add_node(9)
        assert 9 in live_graph
        assert live_graph.outlinks(9) == []
        assert 9 in live_graph.node_ids

    def test_add_duplicate_node_rejected(self, live_graph):
        with pytest.raises(QueryError, match="already exists"):
            live_graph.add_node(0)

    def test_add_edge_directed(self, live_graph):
        live_graph.add_edge(2, 0)
        assert 0 in live_graph.outlinks(2)
        assert 2 in live_graph.inlinks(0)

    def test_add_edge_autocreates_endpoints(self, live_graph):
        live_graph.add_edge(50, 51)
        assert live_graph.outlinks(50) == [51]
        assert live_graph.inlinks(51) == [50]

    def test_add_edge_undirected_mirrors(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edge(0, 1)
        graph = builder.finalize()
        graph.add_edge(1, 2)
        assert 2 in graph.outlinks(1)
        assert 1 in graph.outlinks(2)

    def test_attributes_on_live_insert(self, cloud):
        builder = GraphBuilder(cloud, social_graph_schema())
        builder.add_node(0, Name="Ada")
        graph = builder.finalize()
        graph.add_node(1, Name="Bob")
        graph.add_edge(0, 1)
        assert graph.attribute(1, "Name") == "Bob"
        with pytest.raises(QueryError, match="unknown attributes"):
            graph.add_node(2, Age=4)

    def test_many_inserts_exercise_reservation_path(self):
        """Growing one hub's adjacency edge by edge goes through the
        short-lived reservation machinery without corruption."""
        cloud = MemoryCloud(ClusterConfig(
            machines=2, trunk_bits=4,
            memory=MemoryParams(trunk_size=512 * 1024),
        ))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_node(0)
        graph = builder.finalize()
        for neighbor in range(1, 301):
            graph.add_edge(0, neighbor)
        assert graph.outlinks(0) == list(range(1, 301))
        relocations = sum(
            t.stats().relocations for t in cloud.trunks.values()
        )
        assert relocations > 0  # the cell genuinely outgrew slots

    def test_snapshot_after_mutation(self, live_graph):
        live_graph.add_edge(2, 0)
        topo = CsrTopology(live_graph)
        two = topo.index_of[2]
        assert topo.node_ids[topo.out_neighbors(two)].tolist() == [0]
