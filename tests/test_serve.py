"""Concurrent query serving: fusion, caching, admission, cross-checks.

The serving layer's contract is that its three optimizations — cross-
query frontier fusion, hub/result caching, admission control — change
*when work happens*, never *what the answers are*.  Every test that
serves queries does so with ``cross_check=True``, which shadow-replays
each completion (fused, cached, or inline) through the existing
one-at-a-time library path and raises
:class:`~repro.memcloud.cloud.BulkPathDivergence` on any difference;
the suite runs across two machine counts and under interleaved
mutations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.subgraph import generate_query_dfs
from repro.config import ClusterConfig
from repro.errors import QueryError
from repro.generators.names import sample_names
from repro.generators.rmat import rmat_edges
from repro.graph import GraphBuilder
from repro.graph.model import social_graph_schema
from repro.memcloud import MemoryCloud
from repro.obs import MetricsRegistry
from repro.serve import (
    BatchOp,
    EpochLruCache,
    LandmarkBfsQuery,
    PeopleSearchQuery,
    QueryServer,
    QueryTicket,
    ServeConfig,
    SubgraphServeQuery,
    TqlServeQuery,
    WeightedFairQueue,
)

MACHINE_COUNTS = [2, 5]

FUSIBLE_TQL = ("MATCH (a = 0) -[Friends*1..3]-> (b {Name: 'David'}) "
               "RETURN b")
#: WHERE over the target variable now fuses; a condition on the *anchor*
#: variable still runs through the inline engine.
INLINE_TQL = ("MATCH (a = 0) -[Friends*1..2]-> (b) "
              "WHERE a.Name != 'David' RETURN b")
WHERE_TQL = ("MATCH (a = 0) -[Friends*1..2]-> (b) "
             "WHERE b.Name != 'David' RETURN b")
REVERSE_TQL = "MATCH (a = 0) <-[Friends*1..2]- (b) RETURN b"


def build_graph(machines, scale=8, seed=11, memory=None, directed=False):
    config = (ClusterConfig(machines=machines, trunk_bits=5)
              if memory is None else
              ClusterConfig(machines=machines, trunk_bits=5, memory=memory))
    cloud = MemoryCloud(config, MetricsRegistry())
    n = 1 << scale
    edges = rmat_edges(scale, avg_degree=6.0, seed=seed, dedup=True)
    edges = edges[edges[:, 0] != edges[:, 1]]
    builder = GraphBuilder(cloud, social_graph_schema(directed=directed))
    for node_id, name in enumerate(sample_names(n, seed=seed + 1)):
        builder.add_node(node_id, Name=name)
    builder.add_edges(edges.tolist())
    return cloud, builder.finalize()


@pytest.fixture(scope="module", params=MACHINE_COUNTS)
def deployment(request):
    return build_graph(request.param)


def mixed_queries(server, count=12):
    """A deterministic mixed-class pool with repeats (cacheable)."""
    _topology, labels, _index = server.snapshot()
    del labels
    queries = []
    for i in range(count):
        which = i % 4
        if which == 0:
            queries.append(PeopleSearchQuery(i % 3, "David", hops=3))
        elif which == 1:
            queries.append(TqlServeQuery(FUSIBLE_TQL))
        elif which == 2:
            queries.append(LandmarkBfsQuery(5 + (i % 2), max_hops=4))
        else:
            topology, labels, _ = server.snapshot()
            queries.append(SubgraphServeQuery(
                generate_query_dfs(topology, labels, size=4, seed=i % 2)))
    return queries


class TestCrossCheckSuite:
    """Fused + cached results are identical to the sequential path."""

    def test_mixed_classes_cross_checked(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, ServeConfig(cross_check=True))
        tickets = [server.submit(q) for q in mixed_queries(server)]
        server.run()
        assert all(t.status == "done" for t in tickets)
        # Repeat submissions after completion must come from the result
        # cache — and still pass the same shadow replay.
        repeats = [server.submit(q) for q in mixed_queries(server)]
        server.run()
        assert all(t.status == "done" for t in repeats)
        assert any(t.cached for t in repeats)
        for first, again in zip(tickets, repeats):
            assert first.result == again.result

    def test_fused_equals_unfused(self, deployment):
        _, graph = deployment
        fused = QueryServer(graph, ServeConfig(cross_check=True),
                            registry=MetricsRegistry())
        plain = QueryServer(
            graph,
            ServeConfig(fuse=False, result_cache=False, hub_cache=False,
                        cross_check=True),
            registry=MetricsRegistry())
        queries = [(PeopleSearchQuery(s, "David", hops=3),
                    PeopleSearchQuery(s, "David", hops=3))
                   for s in (0, 1, 2, 3, 17)]
        a = [fused.submit(qa) for qa, _ in queries]
        b = [plain.submit(qb) for _, qb in queries]
        fused.run()
        plain.run()
        for ta, tb in zip(a, b):
            assert ta.result == tb.result

    def test_sequential_baseline_same_answers(self, deployment):
        _, graph = deployment
        seq = QueryServer(
            graph,
            ServeConfig(sequential=True, fuse=False, result_cache=False,
                        hub_cache=False),
            registry=MetricsRegistry())
        opt = QueryServer(graph, ServeConfig(cross_check=True),
                          registry=MetricsRegistry())
        pool = [PeopleSearchQuery(0, "David"), TqlServeQuery(FUSIBLE_TQL),
                TqlServeQuery(INLINE_TQL), LandmarkBfsQuery(3)]
        seq_tickets = [seq.submit(q) for q in pool]
        opt_tickets = [opt.submit(q) for q in pool]
        seq.run()
        opt.run()
        for ts, to in zip(seq_tickets, opt_tickets):
            assert ts.result == to.result

    def test_interleaved_mutations_cross_checked(self, deployment):
        # Private graph copy: mutations must not leak into the shared
        # module fixture.
        _, shared = deployment
        _cloud, graph = build_graph(shared.cloud.config.machines, scale=7)
        server = QueryServer(graph, ServeConfig(cross_check=True))
        rng = np.random.default_rng(5)
        results_before = {}
        for round_no in range(4):
            tickets = [server.submit(PeopleSearchQuery(s, "David", hops=3))
                       for s in (0, 1, 2, 0)]
            tickets.append(server.submit(TqlServeQuery(FUSIBLE_TQL)))
            tickets.append(server.submit(LandmarkBfsQuery(2, max_hops=3)))
            server.run()
            assert all(t.status == "done" for t in tickets)
            if round_no:
                # The mutation changed reachable sets; cached pre-
                # mutation results must NOT have been replayed (the
                # cross-check above would have caught it; also verify
                # epoch invalidation fired).
                assert server.result_cache.invalidated > 0 or \
                    all(not t.cached for t in tickets)
            results_before[round_no] = [t.result for t in tickets]
            server.mutate(lambda g: g.add_edge(
                int(rng.choice(g.node_ids[:64])), max(g.node_ids) + 1))


class TestFusion:
    def test_fusion_reduces_batch_rounds(self, deployment):
        _, graph = deployment
        fused_reg = MetricsRegistry()
        plain_reg = MetricsRegistry()
        fused = QueryServer(
            graph, ServeConfig(result_cache=False, hub_cache=False),
            registry=fused_reg)
        plain = QueryServer(
            graph,
            ServeConfig(fuse=False, result_cache=False, hub_cache=False),
            registry=plain_reg)
        for server in (fused, plain):
            for s in range(8):
                server.submit(PeopleSearchQuery(s, "David", hops=3))
            server.run()
        fused_rounds = fused_reg.counter("serve.fusion.batch_rounds").value
        plain_rounds = plain_reg.counter("serve.fusion.batch_rounds").value
        assert fused_rounds < plain_rounds
        # 8 concurrent 3-hop searches share two bulk reads per hop when
        # fused (one outlinks round, one name-check round).
        assert fused_rounds <= 2 * 3 + 2

    def test_window_determinism(self, deployment):
        _, graph = deployment
        outputs = []
        for _attempt in range(2):
            server = QueryServer(
                graph, ServeConfig(result_cache=False, hub_cache=False),
                registry=MetricsRegistry())
            tickets = [server.submit(q) for q in mixed_queries(server)]
            server.run()
            outputs.append([t.result for t in tickets])
        assert outputs[0] == outputs[1]

    def test_batch_op_validation(self):
        with pytest.raises(QueryError):
            BatchOp("no_such_kind", np.asarray([1], dtype=np.int64))


class TestCaches:
    def test_result_cache_hits_and_epoch_invalidation(self, deployment):
        _, graph = deployment
        reg = MetricsRegistry()
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=reg)
        q = PeopleSearchQuery(0, "David", hops=3)
        t1 = server.submit(q)
        server.run()
        t2 = server.submit(PeopleSearchQuery(0, "David", hops=3))
        server.run()
        assert not t1.cached and t2.cached
        assert t1.result == t2.result
        assert server.result_cache.hits == 1
        # A mutation through the barrier invalidates the cached entry.
        server.mutate(lambda g: g.add_edge(0, max(g.node_ids) + 1))
        t3 = server.submit(PeopleSearchQuery(0, "David", hops=3))
        server.run()
        assert not t3.cached
        assert server.result_cache.invalidated >= 1

    def test_hub_cache_serves_high_degree_vertices(self, deployment):
        _, graph = deployment
        reg = MetricsRegistry()
        server = QueryServer(
            graph,
            ServeConfig(result_cache=False, hub_degree_threshold=8,
                        cross_check=True),
            registry=reg)
        for _round in range(2):
            for s in (0, 1, 2):
                server.submit(PeopleSearchQuery(s, "David", hops=3))
            server.run()
        hub = server.executor.hub_cache
        assert hub.hits > 0
        assert len(hub) > 0
        # Every cached adjacency must match the live cells right now,
        # and each entry must be stamped with exactly the one trunk
        # that owns its vertex.
        epochs = graph.cloud.epoch_vector()
        for (kind, uid), (_stamp, row) in list(hub._entries.items()):
            assert kind == "outlinks"
            owner = int(graph.cloud.trunks_of_array([uid])[0])
            assert hub.footprint_of((kind, uid)) == {owner}
            assert hub.get((kind, uid), epochs) is not None
            assert row.tolist() == graph.outlinks(int(uid))

    def test_lru_capacity_and_eviction(self):
        reg = MetricsRegistry()
        cache = EpochLruCache("t", capacity=2, registry=reg)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        cache.get("a", 1)          # refresh a
        cache.put("c", 1, "C")     # evicts b
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == "A"
        assert cache.get("c", 1) == "C"
        assert reg.counter("serve.cache.evicted", cache="t").value == 1

    def test_lru_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EpochLruCache("t", capacity=0, registry=MetricsRegistry())


class TestAdmission:
    def test_queue_full_rejection(self, deployment):
        _, graph = deployment
        server = QueryServer(
            graph, ServeConfig(queue_limit=3, result_cache=False),
            registry=MetricsRegistry())
        tickets = [server.submit(PeopleSearchQuery(s, "David"))
                   for s in range(5)]
        rejected = [t for t in tickets if t.status == "rejected"]
        assert len(rejected) == 2
        assert all(t.reject_reason == "queue_full" for t in rejected)
        server.run()
        assert sum(t.status == "done" for t in tickets) == 3

    def test_deadline_rejection(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, ServeConfig(result_cache=False),
                             registry=MetricsRegistry())
        doomed = server.submit(PeopleSearchQuery(0, "David"),
                               deadline=-1.0)  # expired on arrival
        alive = server.submit(PeopleSearchQuery(1, "David"),
                              deadline=3600.0)
        server.run()
        assert doomed.status == "rejected"
        assert doomed.reject_reason == "deadline"
        assert alive.status == "done"

    def test_submit_type_checked(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, registry=MetricsRegistry())
        with pytest.raises(QueryError):
            server.submit("MATCH (a) RETURN a")

    def test_report_shape(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, registry=MetricsRegistry())
        for q in mixed_queries(server, count=8):
            server.submit(q)
        server.run()
        report = server.report()
        as_dict = report.to_dict()
        assert set(as_dict) == {"classes", "admission", "caches", "fusion",
                                "queues"}
        for summary in as_dict["classes"].values():
            assert set(summary) == {"count", "mean", "p50", "p99", "max"}
        assert as_dict["admission"]["submitted"] == 8
        for stats in as_dict["queues"].values():
            assert set(stats) == {"depth", "weight", "wait"}
            assert stats["depth"] == 0        # drained
        assert sum(q["wait"]["count"]
                   for q in as_dict["queues"].values()) == 8
        for stats in as_dict["caches"].values():
            assert "cleared" in stats
        text = report.render()
        assert "p99" in text and "admission:" in text and "queue" in text


class TestTqlFusibility:
    def test_fusible_shapes(self, deployment):
        _, graph = deployment
        for text in (
            FUSIBLE_TQL,
            WHERE_TQL,                      # WHERE residual on target
            REVERSE_TQL,                    # reverse (symmetric here)
            "MATCH (a = 0) -[Friends*1..2]-> (b) "
            "WHERE b.Name != b.Name RETURN b",      # var-vs-var residual
        ):
            assert TqlServeQuery(text).fusible(graph), text
        for text in (
            INLINE_TQL,                     # WHERE on the anchor var
            "MATCH (a = 0) -[Friends]-> (b) RETURN b LIMIT 5",  # LIMIT
            "MATCH (a) -[Friends]-> (b {Name: 'David'}) RETURN b",  # scan
            "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) "
            "RETURN c",                                       # chain of 3
            "MATCH (a = 0) -[Friends]-> (b) RETURN b.Name",   # projection
            "MATCH (a = 0) -[Friends*1..2]-> (a) RETURN a",   # rebound var
        ):
            assert not TqlServeQuery(text).fusible(graph), text

    def test_query_key_whitespace_normalized(self):
        compact = TqlServeQuery(FUSIBLE_TQL)
        spaced = TqlServeQuery(
            "  MATCH   (a = 0)\n\t-[Friends*1..3]->\n"
            "  (b {Name: 'David'})   RETURN  b ")
        assert compact.key() == spaced.key()
        assert compact.key() != TqlServeQuery(REVERSE_TQL).key()

    def test_normalized_key_shares_cache_entry(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=MetricsRegistry())
        first = server.submit(TqlServeQuery(FUSIBLE_TQL))
        server.run()
        again = server.submit(TqlServeQuery(
            "MATCH  (a = 0)  -[Friends*1..3]->  (b {Name: 'David'})  "
            "RETURN  b"))
        server.run()
        assert not first.cached and again.cached
        assert first.result == again.result

    def test_inline_tql_still_served_and_checked(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=MetricsRegistry())
        ticket = server.submit(TqlServeQuery(INLINE_TQL))
        server.run()
        assert ticket.status == "done"

    def test_missing_anchor_returns_empty(self, deployment):
        _, graph = deployment
        server = QueryServer(graph, registry=MetricsRegistry())
        ticket = server.submit(TqlServeQuery(
            "MATCH (a = 99999999) -[Friends*1..2]-> (b {Name: 'David'}) "
            "RETURN b"))
        server.run()
        assert ticket.status == "done"
        assert ticket.result == []


class TestStorageTiers:
    """Serve windows on a paged cloud, identical to resident serving.

    The paged deployment's page budget is smaller than the graph, so
    fused windows constantly fault and evict; ``cross_check=True``
    shadow-replays every completion through the sequential library
    path, proving the storage tier never changes an answer.
    """

    @pytest.fixture(scope="class", params=["resident", "paged"])
    def tier_deployment(self, request):
        from repro.config import MemoryParams
        memory = MemoryParams(trunk_size=256 * 1024,
                              storage=request.param,
                              storage_page_size=512, page_budget=2)
        cloud, graph = build_graph(machines=2, memory=memory)
        yield request.param, cloud, graph
        cloud.release_arenas()

    def test_mixed_window_cross_checked(self, tier_deployment):
        _, _, graph = tier_deployment
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=MetricsRegistry())
        tickets = [server.submit(q) for q in mixed_queries(server)]
        server.run()
        assert all(t.status == "done" for t in tickets)

    def test_paged_and_resident_results_identical(self, tier_deployment):
        storage, _, graph = tier_deployment
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=MetricsRegistry())
        tickets = [server.submit(PeopleSearchQuery(s, "David", hops=3))
                   for s in (0, 1, 2)]
        server.run()
        results = [t.result for t in tickets]
        # Same graph, same queries: the answers must not depend on the
        # storage tier at all, so pin them against the library path.
        from repro.algorithms.people_search import people_search
        from repro.net.simnet import SimNetwork
        for seed, result in zip((0, 1, 2), results):
            expected = people_search(graph, seed, "David", hops=3,
                                     network=SimNetwork(), batch=True)
            assert result == {"matches": sorted(expected.matches),
                              "visited": expected.visited}

    def test_mutation_barrier_on_paged_cloud(self, tier_deployment):
        storage, cloud, graph = tier_deployment
        if storage != "paged":
            pytest.skip("exercises the paged tier")
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=MetricsRegistry())
        before = server.submit(PeopleSearchQuery(0, "David", hops=2))
        server.run()
        epoch_before = cloud.mutation_epoch()
        server.mutate(lambda g: g.add_edge(int(g.node_ids[0]),
                                           int(g.node_ids[-1])))
        assert cloud.mutation_epoch() > epoch_before
        after = server.submit(PeopleSearchQuery(0, "David", hops=1))
        server.run()
        assert before.status == after.status == "done"


class TestWeightedFairQueue:
    """Deterministic WFQ order, per-class bounds, deadline shedding."""

    @staticmethod
    def _ticket(cls, deadline=None, submitted_at=0.0):
        return QueryTicket(query=PeopleSearchQuery(0, "x"), priority=cls,
                           deadline=deadline, submitted_at=submitted_at)

    def test_weighted_dequeue_order(self):
        wfq = WeightedFairQueue({"gold": 2.0, "bronze": 1.0},
                                registry=MetricsRegistry())
        for _ in range(4):
            wfq.push(self._ticket("gold"))
        for _ in range(4):
            wfq.push(self._ticket("bronze"))
        drained = [wfq.pop().priority for _ in range(8)]
        # Finish tags: gold 0.5,1.0,1.5,2.0; bronze 1,2,3,4 — under
        # contention gold drains twice as fast, ties break by seq.
        assert drained == ["gold", "gold", "bronze", "gold", "gold",
                           "bronze", "bronze", "bronze"]
        assert wfq.pop() is None

    def test_equal_weights_round_robin(self):
        wfq = WeightedFairQueue(registry=MetricsRegistry())
        for cls in ["a", "b", "a", "c", "b"]:
            wfq.push(self._ticket(cls))
        # Equal weights: same finish-tag spacing per class, so classes
        # interleave round-robin (ties broken by arrival seq), and no
        # class starves behind a burst of another.
        assert [wfq.pop().priority for _ in range(5)] == \
            ["a", "b", "c", "a", "b"]

    def test_single_class_is_fifo(self):
        wfq = WeightedFairQueue(registry=MetricsRegistry())
        tickets = [self._ticket("a") for _ in range(5)]
        for t in tickets:
            wfq.push(t)
        assert [wfq.pop() for _ in range(5)] == tickets

    def test_idle_class_banks_no_credit(self):
        wfq = WeightedFairQueue({"slow": 1.0, "fast": 4.0},
                                registry=MetricsRegistry())
        for _ in range(3):
            wfq.push(self._ticket("slow"))
        for _ in range(3):
            assert wfq.pop().priority == "slow"
        # fast was idle the whole time; its first tag starts at the
        # current virtual time, not at zero.
        wfq.push(self._ticket("slow"))
        wfq.push(self._ticket("fast"))
        assert wfq.pop().priority == "fast"

    def test_shed_expired(self):
        wfq = WeightedFairQueue(registry=MetricsRegistry())
        dead = self._ticket("a", deadline=1.0, submitted_at=0.0)
        alive = self._ticket("a", deadline=100.0, submitted_at=0.0)
        wfq.push(dead)
        wfq.push(alive)
        shed = wfq.shed_expired(now=5.0)
        assert shed == [dead]
        assert len(wfq) == 1 and wfq.pop() is alive

    def test_rejects_bad_weight(self):
        with pytest.raises(QueryError):
            WeightedFairQueue({"a": 0.0}, registry=MetricsRegistry())

    def test_per_class_queue_limit(self, deployment):
        _, graph = deployment
        server = QueryServer(
            graph,
            ServeConfig(class_queue_limit=2, result_cache=False),
            registry=MetricsRegistry())
        bulk = [server.submit(PeopleSearchQuery(s, "David"), priority="bulk")
                for s in range(4)]
        vip = server.submit(PeopleSearchQuery(9, "David"), priority="vip")
        assert [t.status for t in bulk] == ["queued", "queued",
                                            "rejected", "rejected"]
        assert all(t.reject_reason == "queue_full"
                   for t in bulk if t.status == "rejected")
        assert vip.status == "queued"      # its own class, its own bound
        server.run()
        assert vip.status == "done"

    def test_full_queue_sheds_expired_before_rejecting(self, deployment):
        _, graph = deployment
        server = QueryServer(
            graph, ServeConfig(queue_limit=2, result_cache=False),
            registry=MetricsRegistry())
        doomed = [server.submit(PeopleSearchQuery(s, "David"),
                                deadline=-1.0) for s in range(2)]
        fresh = server.submit(PeopleSearchQuery(5, "David"),
                              deadline=3600.0)
        # The expired entries were shed to make room, not the new one.
        assert all(t.status == "rejected" and t.reject_reason == "deadline"
                   for t in doomed)
        assert fresh.status == "queued"
        server.run()
        assert fresh.status == "done"

    def test_wfq_priorities_change_completion_order_not_results(
            self, deployment):
        _, graph = deployment
        weighted = QueryServer(
            graph,
            ServeConfig(cross_check=True, max_in_flight=1,
                        class_weights={"vip": 8.0, "bulk": 1.0}),
            registry=MetricsRegistry())
        bulk = [weighted.submit(PeopleSearchQuery(s, "David", hops=2),
                                priority="bulk") for s in range(4)]
        vip = [weighted.submit(PeopleSearchQuery(s, "David", hops=2),
                               priority="vip") for s in range(4, 6)]
        weighted.run()
        assert all(t.status == "done" for t in bulk + vip)
        # With max_in_flight=1 completion order follows dequeue order:
        # every vip finishes before the last bulk.
        last_vip = max(t.finished_at for t in vip)
        assert sum(t.finished_at > last_vip for t in bulk) >= 2


class TestNewFusedShapes:
    """Reverse-edge chains and WHERE residuals ride the fusion window
    (not the inline fallback) on both storage tiers."""

    @pytest.fixture(scope="class", params=["resident", "paged"])
    def directed_tier(self, request):
        from repro.config import MemoryParams
        memory = (None if request.param == "resident" else
                  MemoryParams(trunk_size=256 * 1024, storage="paged",
                               storage_page_size=512, page_budget=2))
        cloud, graph = build_graph(machines=2, scale=7, memory=memory,
                                   directed=True)
        yield request.param, cloud, graph
        cloud.release_arenas()

    def _served_fused(self, graph, text):
        reg = MetricsRegistry()
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=reg)
        assert TqlServeQuery(text).fusible(graph), text
        ticket = server.submit(TqlServeQuery(text))
        server.run()
        assert ticket.status == "done"
        # Inline fallbacks complete on their first step, before any
        # fusion window has run an op for them.
        assert ticket.windows >= 1
        assert reg.counter("serve.fusion.ops").value >= 1
        return ticket

    def test_reverse_chain_fused(self, directed_tier):
        _, _, graph = directed_tier
        ticket = self._served_fused(
            graph, "MATCH (a = 1) <-[Friends*1..2]- (b) RETURN b")
        # Reverse = the in-lists: cross-checked above, and non-trivial
        # on this RMAT graph for a hub-ish anchor.
        assert isinstance(ticket.result, list)

    def test_forward_in_field_chain_fused(self, directed_tier):
        _, _, graph = directed_tier
        self._served_fused(
            graph, "MATCH (a = 1) -[FriendOf*1..2]-> (b) RETURN b")

    def test_reverse_of_in_field_fused(self, directed_tier):
        _, _, graph = directed_tier
        self._served_fused(
            graph, "MATCH (a = 1) <-[FriendOf*1..2]- (b) RETURN b")

    def test_where_residual_fused(self, directed_tier):
        _, _, graph = directed_tier
        ticket = self._served_fused(
            graph,
            "MATCH (a = 1) -[Friends*1..2]-> (b) "
            "WHERE b.Name != 'David' RETURN b")
        assert isinstance(ticket.result, list)

    def test_where_residual_with_filter_fused(self, directed_tier):
        _, _, graph = directed_tier
        self._served_fused(
            graph,
            "MATCH (a = 1) -[Friends*1..3]-> (b {Name: 'David'}) "
            "WHERE b.Name >= 'D' RETURN b")

    def test_undirected_reverse_fused(self, deployment):
        _, graph = deployment
        reg = MetricsRegistry()
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=reg)
        ticket = server.submit(TqlServeQuery(REVERSE_TQL))
        server.run()
        assert ticket.status == "done" and ticket.windows >= 1


class TestEpochVectorInvalidation:
    """Per-trunk footprints: writes only kill entries that read the
    written trunk."""

    def _fresh(self, scale=7):
        _cloud, graph = build_graph(machines=2, scale=scale)
        server = QueryServer(graph, ServeConfig(cross_check=True),
                            registry=MetricsRegistry())
        return graph, server

    @staticmethod
    def _trunk_of(graph, node):
        return int(graph.cloud.trunks_of_array([int(node)])[0])

    def test_result_survives_unrelated_trunk_write(self):
        graph, server = self._fresh()
        anchor = 0
        ticket = server.submit(LandmarkBfsQuery(anchor, max_hops=1))
        server.run()
        footprint = server.result_cache.footprint_of(ticket.query.key())
        assert footprint  # a fused plan records where it read
        # Mutate two nodes whose trunks are outside the footprint.
        outside = [n for n in map(int, graph.node_ids[:256])
                   if self._trunk_of(graph, n) not in footprint]
        assert len(outside) >= 2, "need >=2 trunks in play"
        server.mutate(lambda g: g.add_edge(outside[0], outside[1]))
        again = server.submit(LandmarkBfsQuery(anchor, max_hops=1))
        server.run()
        assert again.cached
        assert again.result == ticket.result

    def test_result_dies_on_footprint_trunk_write(self):
        graph, server = self._fresh()
        anchor = 0
        ticket = server.submit(LandmarkBfsQuery(anchor, max_hops=1))
        server.run()
        assert not ticket.cached
        # Write to the anchor's own trunk — inside every 1-hop footprint.
        server.mutate(lambda g: g.add_edge(anchor, max(g.node_ids) + 1))
        again = server.submit(LandmarkBfsQuery(anchor, max_hops=1))
        server.run()
        assert not again.cached
        assert server.result_cache.invalidated >= 1

    def test_global_granularity_invalidates_everything(self):
        _cloud, graph = build_graph(machines=2, scale=7)
        server = QueryServer(
            graph,
            ServeConfig(cross_check=True, epoch_granularity="global"),
            registry=MetricsRegistry())
        ticket = server.submit(LandmarkBfsQuery(0, max_hops=1))
        server.run()
        assert server.result_cache.footprint_of(ticket.query.key()) is None
        # ANY write kills the entry under the coarse scheme.
        outside = [n for n in map(int, graph.node_ids[:256])
                   if self._trunk_of(graph, n) != self._trunk_of(graph, 0)]
        server.mutate(lambda g: g.add_edge(outside[0], outside[1]))
        again = server.submit(LandmarkBfsQuery(0, max_hops=1))
        server.run()
        assert not again.cached

    def test_granularity_validated(self):
        with pytest.raises(QueryError):
            ServeConfig(epoch_granularity="nope")


class TestEpochVectorProperty:
    """Random interleaved mutations + cached reads across >= 2 trunks:
    no stale entry is ever served (the cross-check oracle proves it) and
    entries whose footprint excludes the mutated trunks survive."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("read"), st.integers(0, 63)),
            st.tuples(st.just("write"), st.integers(0, 63)),
        ),
        min_size=4, max_size=16))
    def test_interleaved_mutations_never_serve_stale(self, script):
        _cloud, graph = build_graph(machines=2, scale=6, seed=23)
        server = QueryServer(graph, ServeConfig(cross_check=True),
                             registry=MetricsRegistry())
        # Model: key -> (footprint, epoch vector when the entry landed).
        model: dict = {}
        next_node = max(map(int, graph.node_ids)) + 1

        def trunks_in_play():
            return set(
                graph.cloud.trunks_of_array(graph.node_ids).tolist())

        assert len(trunks_in_play()) >= 2
        for action, node in script:
            node = int(graph.node_ids[node % len(graph.node_ids)])
            if action == "write":
                server.mutate(lambda g, n=node, m=next_node:
                              g.add_edge(n, m))
                next_node += 1
                continue
            query = LandmarkBfsQuery(node, max_hops=1)
            expected_cached = False
            remembered = model.get(query.key())
            if remembered is not None:
                footprint, then = remembered
                now_vector = graph.cloud.epoch_vector()
                expected_cached = all(now_vector[t] == then[t]
                                      for t in footprint)
            ticket = server.submit(query)
            server.run()            # cross_check replays every answer
            assert ticket.status == "done"
            assert ticket.cached == expected_cached
            if not ticket.cached:
                assert ticket.trunks, "fused read must record trunks"
                model[query.key()] = (frozenset(ticket.trunks),
                                      graph.cloud.epoch_vector())
