"""Tests for repro.utils.hashing."""

from hypothesis import given, strategies as st

from repro.utils.hashing import hash64, mix64, trunk_of, uid_from

UINT64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_zero_maps_to_zero(self):
        # splitmix64 finalizer fixes 0; trunk_of still spreads real UIDs.
        assert mix64(0) == 0

    def test_range_is_64_bit(self):
        for value in (1, 2**63, 2**64 - 1, 42):
            assert 0 <= mix64(value) < 2**64

    def test_negative_input_wraps(self):
        assert mix64(-1) == mix64(2**64 - 1)

    @given(UINT64)
    def test_avalanche_changes_low_bits(self, x):
        # Flipping one input bit must change the low byte most of the time;
        # spot-check a single flip is at least *different* somewhere.
        assert mix64(x) != mix64(x ^ (1 << 63)) or x == x ^ (1 << 63)

    def test_sequential_inputs_disperse(self):
        low_bits = {mix64(i) & 0xFF for i in range(1, 257)}
        # 256 sequential keys should hit a large share of the 256 buckets.
        assert len(low_bits) > 150


class TestHash64:
    def test_deterministic_across_calls(self):
        assert hash64(b"trinity") == hash64(b"trinity")

    def test_seed_changes_hash(self):
        assert hash64(b"trinity", seed=1) != hash64(b"trinity", seed=2)

    def test_empty_input(self):
        assert 0 <= hash64(b"") < 2**64

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            # Not a guarantee, but a collision in random testing would
            # indicate a broken mix.
            assert hash64(a) != hash64(b) or True

    def test_known_difference(self):
        assert hash64(b"a") != hash64(b"b")


class TestTrunkOf:
    @given(UINT64, st.integers(min_value=1, max_value=16))
    def test_in_range(self, uid, bits):
        assert 0 <= trunk_of(uid, bits) < 2**bits

    def test_uniformity_over_sequential_uids(self):
        counts = [0] * 8
        for uid in range(1, 8001):
            counts[trunk_of(uid, 3)] += 1
        assert min(counts) > 800  # perfectly uniform would be 1000

    def test_stable(self):
        assert trunk_of(991, 5) == trunk_of(991, 5)


class TestUidFrom:
    def test_stable_for_name(self):
        assert uid_from("Alice") == uid_from("Alice")

    def test_distinct_names(self):
        assert uid_from("Alice") != uid_from("Bob")

    def test_unicode(self):
        assert 0 <= uid_from("三位一体") < 2**64
