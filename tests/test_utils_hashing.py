"""Tests for repro.utils.hashing."""

import numpy as np
from hypothesis import given, strategies as st

from repro.utils.hashing import (
    hash64,
    mix64,
    mix64_array,
    trunk_of,
    trunk_of_array,
    uid_from,
)
from repro.utils.sorting import stable_argsort

UINT64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_zero_maps_to_zero(self):
        # splitmix64 finalizer fixes 0; trunk_of still spreads real UIDs.
        assert mix64(0) == 0

    def test_range_is_64_bit(self):
        for value in (1, 2**63, 2**64 - 1, 42):
            assert 0 <= mix64(value) < 2**64

    def test_negative_input_wraps(self):
        assert mix64(-1) == mix64(2**64 - 1)

    @given(UINT64)
    def test_avalanche_changes_low_bits(self, x):
        # Flipping one input bit must change the low byte most of the time;
        # spot-check a single flip is at least *different* somewhere.
        assert mix64(x) != mix64(x ^ (1 << 63)) or x == x ^ (1 << 63)

    def test_sequential_inputs_disperse(self):
        low_bits = {mix64(i) & 0xFF for i in range(1, 257)}
        # 256 sequential keys should hit a large share of the 256 buckets.
        assert len(low_bits) > 150


class TestHash64:
    def test_deterministic_across_calls(self):
        assert hash64(b"trinity") == hash64(b"trinity")

    def test_seed_changes_hash(self):
        assert hash64(b"trinity", seed=1) != hash64(b"trinity", seed=2)

    def test_empty_input(self):
        assert 0 <= hash64(b"") < 2**64

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            # Not a guarantee, but a collision in random testing would
            # indicate a broken mix.
            assert hash64(a) != hash64(b) or True

    def test_known_difference(self):
        assert hash64(b"a") != hash64(b"b")


class TestTrunkOf:
    @given(UINT64, st.integers(min_value=1, max_value=16))
    def test_in_range(self, uid, bits):
        assert 0 <= trunk_of(uid, bits) < 2**bits

    def test_uniformity_over_sequential_uids(self):
        counts = [0] * 8
        for uid in range(1, 8001):
            counts[trunk_of(uid, 3)] += 1
        assert min(counts) > 800  # perfectly uniform would be 1000

    def test_stable(self):
        assert trunk_of(991, 5) == trunk_of(991, 5)


class TestPinnedValues:
    """Regression pins: these exact outputs are part of the wire format.

    Anything stored in a trunk (offsets come from mix64) or named by
    ``uid_from`` depends on them, so a silent change would corrupt every
    persisted layout.  If one of these fails, the hash changed — do not
    update the constants without a migration story.
    """

    def test_mix64_pins(self):
        assert mix64(0) == 0x0
        assert mix64(1) == 0x5692161D100B05E5
        assert mix64(42) == 0xA759EA27D4727622
        assert mix64(12345) == 0xF36CF1164265DD51
        assert mix64(2**63) == 0x25C26EA579CEA98A
        assert mix64(2**64 - 1) == 0xB4D055FCF2CBBD7B

    def test_hash64_pins(self):
        assert hash64(b"") == 0xF52A15E9A9B5E89B
        assert hash64(b"a") == 0x02C0BDBF481420F8
        assert hash64(b"trinity") == 0xF7643D575FC36AAE
        assert hash64(b"trinity", seed=1) == 0x7A6A45A8E5163131

    def test_uid_from_pins(self):
        assert uid_from("Alice") == 0x498CD77792BF4527
        assert uid_from("Bob") == 0x370424EB7AF2AD23
        assert uid_from("trinity") == hash64(b"trinity")


class TestMix64Array:
    def test_edge_values_match_scalar(self):
        values = [0, 1, 42, 12345, 2**63, 2**64 - 1]
        out = mix64_array(values)
        assert out.dtype == np.uint64
        assert [int(v) for v in out] == [mix64(v) for v in values]

    @given(st.lists(UINT64, min_size=1, max_size=64))
    def test_matches_scalar_elementwise(self, values):
        out = mix64_array(np.asarray(values, dtype=np.uint64))
        assert [int(v) for v in out] == [mix64(v) for v in values]

    @given(st.lists(UINT64, min_size=1, max_size=64),
           st.integers(min_value=1, max_value=16))
    def test_trunk_of_array_matches_scalar(self, values, bits):
        out = trunk_of_array(np.asarray(values, dtype=np.uint64), bits)
        assert [int(v) for v in out] == [trunk_of(v, bits) for v in values]

    def test_empty_input(self):
        assert len(mix64_array(np.asarray([], dtype=np.uint64))) == 0


class TestUidFrom:
    def test_stable_for_name(self):
        assert uid_from("Alice") == uid_from("Alice")

    def test_distinct_names(self):
        assert uid_from("Alice") != uid_from("Bob")

    def test_unicode(self):
        assert 0 <= uid_from("三位一体") < 2**64

    def test_cached(self):
        before = uid_from.cache_info()
        value = uid_from("cache-probe-name")
        assert uid_from("cache-probe-name") == value
        after = uid_from.cache_info()
        assert after.hits >= before.hits + 1

    def test_cache_is_bounded(self):
        assert uid_from.cache_info().maxsize == 65536

    def test_cached_value_matches_uncached(self):
        # The cache must be a pure memo over hash64 of the UTF-8 bytes.
        assert uid_from("Zaphod") == hash64("Zaphod".encode("utf-8"))


class TestStableArgsort:
    """The radix fast path must be bit-identical to plain stable argsort."""

    @given(
        st.lists(st.integers(min_value=-(2**62), max_value=2**62),
                 max_size=200),
        st.sampled_from(["<i8", "<u8", "<i4", "<u2"]),
    )
    def test_matches_numpy_stable(self, values, dtype):
        if dtype == "<u8" or dtype == "<u2":
            values = [abs(v) for v in values]
        if dtype == "<u2":
            values = [v % 65536 for v in values]
        if dtype == "<i4":
            values = [v % 2**31 for v in values]
        arr = np.asarray(values, dtype=dtype)
        expected = arr.argsort(kind="stable")
        assert np.array_equal(stable_argsort(arr), expected)

    def test_narrow_range_takes_radix_path(self):
        # Wide dtype, narrow range: above the cutover the shifted-uint16
        # path runs; order must still match mergesort exactly.
        rng = np.random.default_rng(7)
        arr = (rng.integers(0, 2**14, 4096) + 2**40).astype(np.int64)
        assert np.array_equal(stable_argsort(arr),
                              arr.argsort(kind="stable"))

    def test_wide_range_falls_back(self):
        rng = np.random.default_rng(7)
        arr = rng.integers(-(2**60), 2**60, 4096).astype(np.int64)
        assert np.array_equal(stable_argsort(arr),
                              arr.argsort(kind="stable"))

    def test_stability_of_equal_keys(self):
        arr = np.zeros(5000, dtype=np.int64)
        assert np.array_equal(stable_argsort(arr), np.arange(5000))

    def test_float_dtype_uses_fallback(self):
        arr = np.asarray([3.5, -1.0, 2.25])
        assert np.array_equal(stable_argsort(arr),
                              arr.argsort(kind="stable"))
