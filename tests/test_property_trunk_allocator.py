"""Stateful property test of the circular trunk allocator.

Random interleavings of put/overwrite/remove/resize/defragment against a
reference dict, with the allocator's accounting invariants checked after
every step:

* logical contents always equal the reference dict;
* live bytes equal the sum of cell sizes plus headers;
* reserved >= live; garbage >= 0; everything fits the trunk;
* defragmentation preserves contents and zeroes the garbage counter.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.config import MemoryParams
from repro.errors import TrunkFullError
from repro.memcloud.trunk import CELL_HEADER_BYTES, MemoryTrunk

UIDS = st.integers(0, 60)
PAYLOADS = st.binary(max_size=300)


class TrunkMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.trunk = MemoryTrunk(0, MemoryParams(
            trunk_size=64 * 1024, page_size=1024,
            defrag_trigger_ratio=0.3,
        ))
        self.reference: dict[int, bytes] = {}

    @rule(uid=UIDS, payload=PAYLOADS)
    def put(self, uid, payload):
        try:
            self.trunk.put(uid, payload)
        except TrunkFullError:
            return  # legitimately full; state unchanged for this uid
        self.reference[uid] = payload

    @rule(uid=UIDS)
    def remove(self, uid):
        if uid in self.reference:
            self.trunk.remove(uid)
            del self.reference[uid]

    @rule(uid=UIDS, new_size=st.integers(0, 400))
    def resize(self, uid, new_size):
        if uid not in self.reference:
            return
        try:
            self.trunk.resize(uid, new_size, fill=0xAB)
        except TrunkFullError:
            return
        current = self.reference[uid]
        if new_size <= len(current):
            self.reference[uid] = current[:new_size]
        else:
            self.reference[uid] = (
                current + b"\xab" * (new_size - len(current))
            )

    @rule()
    def defragment(self):
        before = dict(self.reference)
        if self.trunk.defragment():
            stats = self.trunk.stats()
            assert stats.garbage_bytes == 0
            assert stats.reserved_bytes == stats.live_bytes
        for uid, value in before.items():
            assert self.trunk.get(uid) == value

    # -- invariants --------------------------------------------------------

    @invariant()
    def contents_match_reference(self):
        if not hasattr(self, "trunk"):
            return
        assert len(self.trunk) == len(self.reference)
        for uid, value in self.reference.items():
            assert self.trunk.get(uid) == value
            assert self.trunk.size_of(uid) == len(value)

    @invariant()
    def accounting_is_consistent(self):
        if not hasattr(self, "trunk"):
            return
        stats = self.trunk.stats()
        expected_live = sum(
            CELL_HEADER_BYTES + len(v) for v in self.reference.values()
        )
        assert stats.live_bytes == expected_live
        assert stats.reserved_bytes >= stats.live_bytes
        assert stats.garbage_bytes >= 0
        assert stats.committed_bytes <= stats.trunk_size
        assert (stats.reserved_bytes + stats.garbage_bytes
                <= stats.trunk_size)
        assert 0.0 <= stats.utilization <= 1.0 or not stats.committed_bytes


TrunkMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None,
)
TestTrunkAllocator = TrunkMachine.TestCase
