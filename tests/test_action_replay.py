"""Tests for action-script delivery replay (Section 5.4)."""

import pytest

from repro.compute import BipartiteScheduler
from repro.compute.action_replay import (
    replay_all,
    replay_naive_buffer_all,
    replay_naive_on_demand,
    replay_scripted,
)


@pytest.fixture(scope="module")
def plan_and_topology(rmat_topology):
    scheduler = BipartiteScheduler(rmat_topology, hub_fraction=0.02,
                                   num_partitions=6)
    return scheduler.plan_for_machine(0), rmat_topology


class TestReplay:
    def test_buffer_all_peak_equals_total(self, plan_and_topology):
        plan, topology = plan_and_topology
        report = replay_naive_buffer_all(plan, topology)
        assert report.peak_buffer_slots == report.total_deliveries
        assert report.duplicate_deliveries == 0

    def test_on_demand_duplicates_hub_messages(self, plan_and_topology):
        plan, topology = plan_and_topology
        report = replay_naive_on_demand(plan, topology)
        # Hubs are consumed by several partitions, hence re-delivered.
        assert report.duplicate_deliveries > 0

    def test_scripted_peak_below_buffer_all(self, plan_and_topology):
        plan, topology = plan_and_topology
        scripted = replay_scripted(plan, topology)
        buffer_all = replay_naive_buffer_all(plan, topology)
        assert scripted.peak_buffer_slots < buffer_all.peak_buffer_slots

    def test_scripted_duplicates_bounded_by_k_sets(self, plan_and_topology):
        plan, topology = plan_and_topology
        scripted = replay_scripted(plan, topology)
        k_total = sum(len(k) for k in plan.k_sets)
        assert scripted.duplicate_deliveries <= k_total

    def test_scripted_fewer_deliveries_than_on_demand(self,
                                                      plan_and_topology):
        plan, topology = plan_and_topology
        scripted = replay_scripted(plan, topology)
        on_demand = replay_naive_on_demand(plan, topology)
        assert scripted.total_deliveries <= on_demand.total_deliveries

    def test_replay_all_covers_three_disciplines(self, plan_and_topology):
        plan, topology = plan_and_topology
        reports = replay_all(plan, topology)
        assert set(reports) == {
            "naive-buffer-all", "naive-on-demand", "scripted",
        }
