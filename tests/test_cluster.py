"""Tests for cluster roles, heartbeats, leader election and recovery."""

import pytest

from repro.config import ClusterConfig
from repro.cluster import TrinityCluster
from repro.errors import (
    CellNotFoundError,
    LeaderElectionError,
    RecoveryError,
)


@pytest.fixture
def loaded_cluster(cluster, rng):
    """Cluster pre-loaded with 200 cells, backed up to TFS."""
    client = cluster.new_client()
    reference = {}
    for _ in range(200):
        uid = rng.getrandbits(60)
        value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 50)))
        client.put_cell(uid, value)
        reference[uid] = value
    cluster.backup_to_tfs()
    return cluster, client, reference


class TestRoles:
    def test_client_kv_roundtrip(self, cluster):
        client = cluster.new_client()
        client.put_cell(1, b"one")
        assert client.get_cell(1) == b"one"

    def test_client_missing_cell(self, cluster):
        client = cluster.new_client()
        with pytest.raises(CellNotFoundError):
            client.get_cell(999)

    def test_clients_have_distinct_addresses(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        assert a.client_id != b.client_id

    def test_slave_owns_its_cells(self, cluster):
        client = cluster.new_client()
        client.put_cell(7, b"x")
        owner = cluster.cloud.machine_of(7)
        assert cluster.slaves[owner].owns(7)

    def test_proxy_scatter_gather(self):
        cluster = TrinityCluster(ClusterConfig(machines=3, proxies=1))
        for slave in cluster.slaves.values():
            slave.register_protocol(
                "count",
                lambda m, d, s=slave: s.machine_id.to_bytes(4, "little"),
            )
        proxy = cluster.proxies[0]
        replies = proxy.scatter_gather("count", b"")
        assert len(replies) == 3
        total = proxy.scatter_gather(
            "count", b"",
            combine=lambda rs: sum(int.from_bytes(r, "little") for r in rs),
        )
        assert total == 0 + 1 + 2

    def test_client_call_via_proxy(self):
        cluster = TrinityCluster(ClusterConfig(machines=2, proxies=1))
        cluster.proxies[0].register_protocol("hello", lambda m, d: b"world")
        client = cluster.new_client()
        assert client.call_proxy("hello", b"") == b"world"

    def test_no_proxy_raises(self, cluster):
        client = cluster.new_client()
        with pytest.raises(RecoveryError, match="proxy"):
            client.call_proxy("x", b"")

    def test_slave_protocol_counts_messages(self, cluster):
        slave = cluster.slaves[1]
        slave.register_protocol("ping", lambda m, d: b"pong")
        client = cluster.new_client()
        client.call(1, "ping", b"")
        assert slave.messages_handled == 1


class TestHeartbeat:
    def test_no_failures_no_detection(self, cluster):
        assert cluster.heartbeat.tick() == []

    def test_detects_after_threshold(self, cluster):
        cluster.slaves[2].fail()
        detected = []
        for _ in range(5):
            detected.extend(cluster.heartbeat.tick())
        assert detected == [2]
        assert cluster.heartbeat.missed_beats(2) >= 3

    def test_reports_failure_once(self, cluster):
        cluster.slaves[2].fail()
        total = []
        for _ in range(10):
            total.extend(cluster.heartbeat.tick())
        assert total == [2]

    def test_recovered_machine_beats_again(self, cluster):
        cluster.slaves[2].fail()
        cluster.heartbeat.run_until_detection()
        cluster.slaves[2].restart()
        assert cluster.heartbeat.tick() == []


class TestLeaderElection:
    def test_initial_leader_is_lowest(self, cluster):
        assert cluster.leader_id == 0
        assert cluster.election.is_leader(0)

    def test_epoch_increases(self, cluster):
        epoch = cluster.election.current_epoch()
        cluster.election.elect([1, 2, 3])
        assert cluster.election.current_epoch() == epoch + 1
        assert cluster.election.current_leader() == 1

    def test_no_candidates(self, cluster):
        with pytest.raises(LeaderElectionError):
            cluster.election.elect([])

    def test_leader_failure_triggers_reelection(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        old_leader = cluster.leader_id
        cluster.fail_machine(old_leader)
        assert cluster.leader_id != old_leader
        assert cluster.election.is_leader(cluster.leader_id)


class TestRecovery:
    def test_data_survives_machine_failure(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        cluster.fail_machine(2)
        for uid, value in reference.items():
            assert client.get_cell(uid) == value

    def test_failed_machine_owns_nothing_after_recovery(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        cluster.fail_machine(2)
        cluster.report_failure(2)
        assert cluster.cloud.addressing.trunks_of(2) == []

    def test_recovery_via_heartbeat_path(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        cluster.fail_machine(1)
        failed = cluster.detect_and_recover()
        assert failed == [1]
        for uid, value in reference.items():
            assert client.get_cell(uid) == value

    def test_buffered_log_covers_post_backup_writes(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        # Writes after the TFS backup live only in memory + buffered log.
        for uid in range(5000, 5050):
            client.put_cell(uid, b"fresh-%d" % uid)
            reference[uid] = b"fresh-%d" % uid
        cluster.fail_machine(3)
        for uid, value in reference.items():
            assert client.get_cell(uid) == value

    def test_two_sequential_failures(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        for uid in range(6000, 6020):
            client.put_cell(uid, b"x%d" % uid)
            reference[uid] = b"x%d" % uid
        cluster.fail_machine(1)
        assert all(client.get_cell(u) == v for u, v in reference.items())
        cluster.fail_machine(2)
        assert all(client.get_cell(u) == v for u, v in reference.items())

    def test_without_buffered_log_post_backup_writes_lost(self, rng):
        cluster = TrinityCluster(
            ClusterConfig(machines=4, trunk_bits=5),
            enable_buffered_log=False,
        )
        client = cluster.new_client()
        client.put_cell(1, b"backed-up")
        cluster.backup_to_tfs()
        # Find a cell landing on a specific machine, written after backup.
        victim = cluster.cloud.machine_of(1)
        uid = 2
        while cluster.cloud.machine_of(uid) != victim:
            uid += 1
        client.put_cell(uid, b"volatile")
        cluster.fail_machine(victim)
        assert client.get_cell(1) == b"backed-up"
        with pytest.raises(CellNotFoundError):
            client.get_cell(uid)

    def test_addressing_persisted_before_commit(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        cluster.fail_machine(0)
        cluster.report_failure(0)
        persisted = cluster.recovery.load_persisted_addressing()
        assert persisted == cluster.cloud.addressing

    def test_spurious_failure_report_ignored(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        recoveries = cluster.recovery.recoveries
        cluster.report_failure(1)  # machine 1 is alive
        assert cluster.recovery.recoveries == recoveries

    def test_slave_replicas_sync_after_recovery(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        cluster.fail_machine(2)
        cluster.report_failure(2)
        primary = cluster.cloud.addressing
        for machine_id, slave in cluster.slaves.items():
            if slave.alive:
                assert slave.addressing_replica == primary

    def test_restart_machine_rejoins_empty(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        cluster.fail_machine(3)
        cluster.report_failure(3)
        cluster.restart_machine(3)
        assert cluster.slaves[3].alive
        with pytest.raises(RecoveryError):
            cluster.restart_machine(3)  # already alive


class TestJoin:
    def test_add_machine_rebalances(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        new_id = cluster.add_machine()
        assert len(cluster.cloud.addressing.trunks_of(new_id)) > 0
        for uid, value in reference.items():
            assert client.get_cell(uid) == value

    def test_new_machine_serves_requests(self, loaded_cluster):
        cluster, client, reference = loaded_cluster
        new_id = cluster.add_machine()
        # Find (or create) a cell owned by the new machine.
        uid = 9000
        while cluster.cloud.machine_of(uid) != new_id:
            uid += 1
        client.put_cell(uid, b"served-by-newcomer")
        assert client.get_cell(uid) == b"served-by-newcomer"
