"""Tests for landmark selection costs and the Section 5.2 index models."""

import pytest

from repro.algorithms.landmarks import (
    SelectionCost,
    select_landmarks,
    select_landmarks_with_cost,
)
from repro.baselines.index_cost import (
    exploration_query_cost,
    neighborhood_index_cost,
    trinity_label_index_cost,
    two_hop_index_cost,
)


class TestSelectionCost:
    def test_degree_selection_is_free(self, undirected_topology):
        _, cost = select_landmarks_with_cost(
            undirected_topology, 8, "degree",
        )
        assert cost.traversal_units == 0
        assert cost.elapsed() == 0.0

    def test_global_charges_one_machine(self, undirected_topology):
        _, cost = select_landmarks_with_cost(
            undirected_topology, 8, "global-betweenness", samples=16,
        )
        assert cost.traversal_units > 0
        assert list(cost.per_machine_units) == [0]

    def test_local_spreads_over_machines(self, undirected_topology):
        _, cost = select_landmarks_with_cost(
            undirected_topology, 8, "local-betweenness", samples=16,
        )
        assert len(cost.per_machine_units) > 1

    def test_local_cheaper_than_global_elapsed(self, undirected_topology):
        """The Section 5.5 cost claim, at test scale."""
        _, local = select_landmarks_with_cost(
            undirected_topology, 8, "local-betweenness", samples=32,
        )
        _, global_ = select_landmarks_with_cost(
            undirected_topology, 8, "global-betweenness", samples=32,
        )
        assert local.elapsed() < global_.elapsed()

    def test_wrapper_agrees_with_cost_variant(self, undirected_topology):
        plain = select_landmarks(undirected_topology, 6, "degree")
        with_cost, _ = select_landmarks_with_cost(
            undirected_topology, 6, "degree",
        )
        assert plain == with_cost

    def test_elapsed_uses_max_machine_for_local(self):
        cost = SelectionCost("local-betweenness")
        cost.charge(0, 1000)
        cost.charge(1, 4000)
        local_elapsed = cost.elapsed()
        serial = SelectionCost("global-betweenness")
        serial.charge(0, 5000)
        assert local_elapsed < serial.elapsed()


class TestIndexCostModels:
    def test_two_hop_super_linear(self):
        small = two_hop_index_cost(10**4, 10**5)
        large = two_hop_index_cost(10**5, 10**6)
        # 10x the vertices -> 10^4x the construction time.
        assert large.build_seconds == pytest.approx(
            small.build_seconds * 10**4
        )

    def test_two_hop_unrealistic_at_web_scale(self):
        cost = two_hop_index_cost(10**9, 16 * 10**9, machines=1000)
        assert cost.build_years > 10**6

    def test_neighborhood_index_bounded_by_n(self):
        # Neighborhood size cannot exceed the graph.
        cost = neighborhood_index_cost(1000, avg_degree=100, hops=3)
        assert cost.space_bytes <= 1000 * 1000 * 8

    def test_label_index_linear(self):
        a = trinity_label_index_cost(10**6)
        b = trinity_label_index_cost(2 * 10**6)
        assert b.build_seconds == pytest.approx(2 * a.build_seconds)
        assert b.space_bytes == 2 * a.space_bytes

    def test_exploration_scales_with_machines(self):
        few = exploration_query_cost(10**8, 16, machines=2)
        many = exploration_query_cost(10**8, 16, machines=16)
        assert many == pytest.approx(few / 8)

    def test_build_years_property(self):
        cost = two_hop_index_cost(10**6, 10**7)
        assert cost.build_years == pytest.approx(
            cost.build_seconds / (365.25 * 24 * 3600)
        )
