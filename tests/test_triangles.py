"""Tests for triangle counting."""

import pytest

from repro.algorithms import TriangleProgram, count_triangles
from repro.compute import BspEngine
from repro.config import ClusterConfig
from repro.generators import powerlaw_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud


@pytest.fixture(scope="module")
def triangle_topology():
    edges = powerlaw_edges(300, avg_degree=8, seed=5)
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=5))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
    builder.add_edges(edges.tolist())
    return CsrTopology(builder.finalize())


class TestTriangles:
    def test_matches_networkx(self, triangle_topology):
        networkx = pytest.importorskip("networkx")
        run = count_triangles(triangle_topology)
        reference = networkx.Graph()
        reference.add_nodes_from(range(triangle_topology.n))
        for i in range(triangle_topology.n):
            for j in triangle_topology.out_neighbors(i):
                reference.add_edge(i, int(j))
        expected = sum(networkx.triangles(reference).values()) // 3
        assert run.count == expected

    def test_vertex_program_agrees(self, triangle_topology):
        vectorised = count_triangles(triangle_topology)
        engine = BspEngine(triangle_topology)
        result = engine.run(TriangleProgram(), max_supersteps=4)
        assert result.aggregators.get("triangles", 0.0) == vectorised.count

    def test_per_vertex_sums_to_total(self, triangle_topology):
        run = count_triangles(triangle_topology)
        assert int(run.per_vertex.sum()) == run.count

    def test_known_small_graphs(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        # A 4-clique has exactly 4 triangles.
        for u in range(4):
            for v in range(u + 1, 4):
                builder.add_edge(u, v)
        topo = CsrTopology(builder.finalize())
        assert count_triangles(topo).count == 4

    def test_triangle_free_graph(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])  # a 4-cycle
        topo = CsrTopology(builder.finalize())
        assert count_triangles(topo).count == 0

    def test_accounting(self, triangle_topology):
        run = count_triangles(triangle_topology)
        assert run.elapsed > 0
