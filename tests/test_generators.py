"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.generators import (
    FIRST_NAMES,
    erdos_renyi_edges,
    powerlaw_degree_sequence,
    powerlaw_edges,
    rmat_edges,
    sample_names,
    social_edges,
)
from repro.generators.rmat import rmat_graph_size
from repro.generators.social import community_edges


class TestRmat:
    def test_shape_and_range(self):
        edges = rmat_edges(scale=8, avg_degree=4, seed=0)
        assert edges.shape == (256 * 4, 2)
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_deterministic(self):
        a = rmat_edges(scale=6, seed=9)
        b = rmat_edges(scale=6, seed=9)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = rmat_edges(scale=6, seed=1)
        b = rmat_edges(scale=6, seed=2)
        assert not np.array_equal(a, b)

    def test_heavy_tail(self):
        """R-MAT with skewed quadrants produces a hub-dominated
        out-degree distribution (the paper's scale-free setting)."""
        edges = rmat_edges(scale=11, avg_degree=8, seed=0)
        degrees = np.bincount(edges[:, 0], minlength=2048)
        mean = degrees.mean()
        assert degrees.max() > 8 * mean

    def test_dedup(self):
        edges = rmat_edges(scale=6, avg_degree=16, seed=0, dedup=True)
        assert len(np.unique(edges, axis=0)) == len(edges)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=0)
        with pytest.raises(ValueError):
            rmat_edges(scale=4, a=0.9, b=0.2, c=0.2)

    def test_graph_size_helper(self):
        assert rmat_graph_size(10, 13) == (1024, 13312)


class TestPowerlaw:
    def test_degree_sequence_bounds(self):
        degrees = powerlaw_degree_sequence(1000, gamma=2.16, seed=0)
        assert len(degrees) == 1000
        assert degrees.min() >= 1
        assert degrees.sum() % 2 == 0

    def test_gamma_controls_tail(self):
        heavy = powerlaw_degree_sequence(5000, gamma=2.0, seed=1)
        light = powerlaw_degree_sequence(5000, gamma=3.5, seed=1)
        assert heavy.max() >= light.max()

    def test_gamma_validated(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, gamma=1.0)

    def test_edges_simple_graph(self):
        edges = powerlaw_edges(500, avg_degree=8, seed=2)
        assert (edges[:, 0] != edges[:, 1]).all()          # no loops
        assert len(np.unique(edges, axis=0)) == len(edges)  # no dups
        assert (edges[:, 0] < edges[:, 1]).all()           # canonical

    def test_avg_degree_targeting(self):
        edges = powerlaw_edges(2000, avg_degree=12, seed=3)
        realised = 2 * len(edges) / 2000
        assert realised > 8  # close-ish to 12 after dedup losses

    def test_hub_share_matches_paper_claim(self):
        """Section 5.4: with gamma = 2.16, a small fraction of hub
        vertices covers a disproportionate share of edge endpoints."""
        edges = powerlaw_edges(5000, gamma=2.16, avg_degree=13, seed=4)
        degrees = np.bincount(edges.ravel(), minlength=5000)
        order = np.argsort(-degrees)
        top_2pct = order[: 5000 // 50]
        share = degrees[top_2pct].sum() / degrees.sum()
        assert share > 0.15


class TestSocial:
    def test_social_edges_are_powerlaw(self):
        edges = social_edges(1000, avg_degree=13, seed=5)
        assert len(edges) > 1000

    def test_community_random_layout(self):
        edges = community_edges(600, communities=6, avg_degree=8,
                                layout="random", seed=6)
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_community_ring_layout_connected_ish(self):
        networkx = pytest.importorskip("networkx")
        edges = community_edges(600, communities=6, avg_degree=8,
                                layout="ring", seed=6)
        graph = networkx.Graph()
        graph.add_edges_from(edges.tolist())
        largest = max(networkx.connected_components(graph), key=len)
        assert len(largest) > 500

    def test_ring_layout_has_long_paths(self):
        """Ring community layout must have larger diameter than random
        layout — the property the landmark experiment needs."""
        networkx = pytest.importorskip("networkx")

        def diameter_of(layout):
            edges = community_edges(600, communities=10, avg_degree=8,
                                    layout=layout, seed=7)
            graph = networkx.Graph()
            graph.add_edges_from(edges.tolist())
            core = graph.subgraph(
                max(networkx.connected_components(graph), key=len)
            )
            return networkx.approximation.diameter(core)

        assert diameter_of("ring") > diameter_of("random")

    def test_bad_layout(self):
        with pytest.raises(ValueError):
            community_edges(100, layout="torus")


class TestErdosRenyi:
    def test_directed_count(self):
        edges = erdos_renyi_edges(500, avg_degree=6, directed=True, seed=0)
        assert len(edges) == 3000

    def test_no_self_loops(self):
        edges = erdos_renyi_edges(100, avg_degree=10, seed=1)
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_edges(1)


class TestNames:
    def test_pool_contains_david(self):
        assert "David" in FIRST_NAMES

    def test_sample_size(self):
        names = sample_names(100, seed=0)
        assert len(names) == 100
        assert all(name in FIRST_NAMES for name in names)

    def test_david_selectivity(self):
        """David is popular (ranked 11th): ~1-3% of a big sample."""
        names = sample_names(20000, seed=1)
        share = names.count("David") / len(names)
        assert 0.005 < share < 0.06

    def test_deterministic(self):
        assert sample_names(50, seed=3) == sample_names(50, seed=3)
