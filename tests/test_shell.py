"""Tests for the TQL shell's scriptable surface."""

import io

import pytest

from repro.shell import build_demo, handle_meta, run_query


@pytest.fixture(scope="module")
def demo():
    return build_demo(people=300, machines=2, seed=1)


class TestShell:
    def test_query_prints_rows_and_summary(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        run_query(graph, "MATCH (a = 0) -[Friends]-> (b) RETURN b", out)
        text = out.getvalue()
        assert "rows" in text
        assert "simulated" in text

    def test_query_error_reported_not_raised(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        run_query(graph, "MATCH oops", out)
        assert "error:" in out.getvalue()

    def test_meta_help(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":help", cloud, graph, out)
        assert "MATCH" in out.getvalue()

    def test_meta_stats(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":stats", cloud, graph, out)
        assert "cells: 300" in out.getvalue()

    def test_meta_metrics(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":metrics", cloud, graph, out)
        assert "trunk.alloc.total" in out.getvalue()

    def test_meta_metrics_prefix_filter(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":metrics trunk.garbage", cloud, graph, out)
        text = out.getvalue()
        assert "trunk.alloc.total" not in text

    def test_meta_node(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":node 0", cloud, graph, out)
        assert "Name" in out.getvalue()

    def test_meta_node_missing(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":node 99999", cloud, graph, out)
        assert "error:" in out.getvalue()

    def test_meta_quit(self, demo):
        cloud, graph = demo
        assert not handle_meta(":quit", cloud, graph, io.StringIO())

    def test_meta_unknown(self, demo):
        cloud, graph = demo
        out = io.StringIO()
        assert handle_meta(":frobnicate", cloud, graph, out)
        assert "unknown command" in out.getvalue()
