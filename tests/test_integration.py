"""Integration tests: whole-system flows spanning multiple subsystems."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.cluster import TrinityCluster
from repro.algorithms import pagerank, people_search
from repro.compute import BspEngine, CheckpointManager
from repro.algorithms import PageRankProgram
from repro.generators.social import build_social_graph
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.tsl import compile_tsl


class TestTslToClusterFlow:
    """The Figure 4 + Figure 6 story end to end: declare a schema in
    TSL, store cells through the cluster, manipulate via accessors."""

    def test_movie_actor_workflow(self):
        cluster = TrinityCluster(ClusterConfig(machines=4))
        schema = compile_tsl("""
        [CellType: NodeCell]
        cell struct Movie {
            string Name;
            [EdgeType: SimpleEdge, ReferencedCell: Actor]
            List<long> Actors;
        }
        [CellType: NodeCell]
        cell struct Actor {
            string Name;
            [EdgeType: SimpleEdge, ReferencedCell: Movie]
            List<long> Movies;
        }
        """)
        movie_id, actor_a, actor_b = 1, 100, 101
        schema.save_cell(cluster.cloud, "Movie", movie_id,
                         {"Name": "Heat", "Actors": [actor_a]})
        schema.save_cell(cluster.cloud, "Actor", actor_a,
                         {"Name": "Pacino", "Movies": [movie_id]})
        schema.save_cell(cluster.cloud, "Actor", actor_b,
                         {"Name": "De Niro", "Movies": []})

        # Cast actor_b via the accessor; both sides of the relationship.
        with schema.use_cell(cluster.cloud, "Movie", movie_id) as movie:
            movie.Actors.append(actor_b)
        with schema.use_cell(cluster.cloud, "Actor", actor_b) as actor:
            actor.Movies.append(movie_id)

        movie = schema.load_cell(cluster.cloud, "Movie", movie_id)
        assert movie["Actors"] == [actor_a, actor_b]
        # The cells survive a full TFS backup + machine failure.
        cluster.backup_to_tfs()
        victim = cluster.cloud.machine_of(movie_id)
        cluster.fail_machine(victim)
        cluster.report_failure(victim)
        assert schema.load_cell(cluster.cloud, "Movie", movie_id) == movie

    def test_echo_protocol_end_to_end(self):
        """Figure 5: the Echo protocol through a real slave handler."""
        schema = compile_tsl("""
        struct MyMessage { string Text; }
        protocol Echo { Type: Syn; Request: MyMessage; Response: MyMessage; }
        """)
        cluster = TrinityCluster(ClusterConfig(machines=2), schema=schema)
        cluster.slaves[1].register_protocol(
            "Echo", lambda message, data: {"Text": "echo: " + data["Text"]},
        )
        client = cluster.new_client()
        reply = client.call(1, "Echo", {"Text": "hello trinity"})
        assert reply == {"Text": "echo: hello trinity"}


class TestAnalyticsOverCluster:
    def test_pagerank_result_independent_of_machine_count(self):
        """Section 5.3: results must not depend on the deployment shape."""
        from repro.generators import rmat_edges
        edges = rmat_edges(scale=8, avg_degree=8, seed=3)
        ranks = []
        for machines in (2, 8):
            cluster = TrinityCluster(
                ClusterConfig(machines=machines, trunk_bits=6)
            )
            builder = GraphBuilder(cluster.cloud,
                                   plain_graph_schema(directed=True))
            builder.add_edges(edges.tolist())
            topo = CsrTopology(builder.finalize())
            ranks.append(pagerank(topo, iterations=20).ranks)
        assert np.abs(ranks[0] - ranks[1]).max() < 1e-12

    def test_more_machines_faster_simulated_time(self):
        # Needs a graph large enough that per-machine communication
        # dominates the fixed barrier cost, like the paper's plots.
        from repro.generators import rmat_edges
        edges = rmat_edges(scale=12, avg_degree=13, seed=4)
        times = []
        for machines in (2, 8):
            cluster = TrinityCluster(
                ClusterConfig(machines=machines, trunk_bits=7)
            )
            builder = GraphBuilder(cluster.cloud,
                                   plain_graph_schema(directed=True))
            builder.add_edges(edges.tolist())
            topo = CsrTopology(builder.finalize())
            times.append(pagerank(topo, iterations=5).elapsed)
        assert times[1] < times[0]

    def test_checkpointed_pagerank_recovers_mid_job(self):
        """Section 6.2 fault recovery for BSP: checkpoint, 'fail', resume
        from the checkpoint and converge to the same answer."""
        from repro.generators import rmat_edges
        edges = rmat_edges(scale=8, avg_degree=8, seed=5)
        cluster = TrinityCluster(ClusterConfig(machines=4, trunk_bits=6))
        builder = GraphBuilder(cluster.cloud,
                               plain_graph_schema(directed=True))
        builder.add_edges(edges.tolist())
        topo = CsrTopology(builder.finalize())

        manager = CheckpointManager(cluster.tfs, job="pr", every=3)
        engine = BspEngine(topo)
        engine.run(PageRankProgram(iterations=9), max_supersteps=11,
                   on_superstep=manager.maybe_checkpoint)
        # "Crash" after superstep 5: restore the checkpoint written then.
        tag, values, _ = manager.load_latest()
        assert tag >= 5
        assert len(values) == topo.n
        # The checkpoint is a consistent value vector (sums to ~1).
        assert sum(values) == pytest.approx(1.0, abs=1e-6)


class TestOnlineQueryOverCluster:
    def test_people_search_after_failure_recovery(self):
        cluster = TrinityCluster(ClusterConfig(machines=4, trunk_bits=6))
        graph = build_social_graph(cluster.cloud, 400, avg_degree=8, seed=6)
        before = people_search(graph, 0, "David", hops=3)
        cluster.backup_to_tfs()
        cluster.fail_machine(2)
        cluster.report_failure(2)
        after = people_search(graph, 0, "David", hops=3)
        assert after.matches == before.matches


class TestScaleOutStory:
    def test_join_then_leave_preserves_graph(self):
        """Machines join and leave the memory cloud; the graph API keeps
        answering identically (Section 3's elasticity claim)."""
        cluster = TrinityCluster(ClusterConfig(machines=3, trunk_bits=6))
        builder = GraphBuilder(cluster.cloud,
                               plain_graph_schema(directed=True))
        builder.add_edges([(i, (i * 7 + 1) % 50) for i in range(200)])
        graph = builder.finalize()
        adjacency_before = {n: graph.outlinks(n) for n in graph.node_ids}

        cluster.backup_to_tfs()
        new_machine = cluster.add_machine()
        assert len(cluster.cloud.addressing.trunks_of(new_machine)) > 0
        cluster.fail_machine(0)
        cluster.report_failure(0)

        for node, expected in adjacency_before.items():
            assert graph.outlinks(node) == expected
