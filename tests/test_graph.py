"""Tests for the graph data model: schemas, builder, API, CSR cache."""

import pytest

from repro.errors import QueryError, TslTypeError
from repro.graph import (
    CsrTopology,
    GraphBuilder,
    GraphSchema,
    hyperedge_schema,
    plain_graph_schema,
    social_graph_schema,
    struct_edge_schema,
)
from repro.tsl import compile_tsl


class TestSchemas:
    def test_plain_directed(self):
        schema = plain_graph_schema(directed=True)
        assert schema.directed
        assert schema.out_field == "Outlinks"
        assert schema.in_field == "Inlinks"

    def test_plain_undirected(self):
        schema = plain_graph_schema(directed=False)
        assert not schema.directed
        assert schema.out_field == "Neighbors"

    def test_social_has_name_attribute(self):
        schema = social_graph_schema()
        assert schema.attribute_fields == ("Name",)

    def test_from_compiled_infers_conventions(self):
        compiled = compile_tsl("""
        cell struct Page {
            double Rank;
            [EdgeType: SimpleEdge]
            List<long> Out;
            [EdgeType: SimpleEdge]
            List<long> In;
        }
        """)
        schema = GraphSchema.from_compiled(compiled, "Page")
        assert schema.out_field == "Out"
        assert schema.in_field == "In"
        assert schema.attribute_fields == ("Rank",)

    def test_from_compiled_requires_edges(self):
        compiled = compile_tsl("cell struct X { int A; }")
        with pytest.raises(TslTypeError, match="EdgeType"):
            GraphSchema.from_compiled(compiled, "X")

    def test_struct_edge_schema_compiles(self):
        schema = struct_edge_schema()
        assert "Relation" in schema.cells
        edge = schema.edge_fields("Entity")[0]
        assert edge.edge_type == "StructEdge"

    def test_hyperedge_schema_compiles(self):
        schema = hyperedge_schema()
        assert schema.edge_fields("Member")[0].edge_type == "HyperEdge"


class TestBuilder:
    def test_directed_edges(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edge(1, 2)
        builder.add_edge(1, 3)
        graph = builder.finalize()
        assert sorted(graph.outlinks(1)) == [2, 3]
        assert graph.inlinks(2) == [1]
        assert graph.outlinks(2) == []

    def test_undirected_edges_mirrored(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edge(1, 2)
        graph = builder.finalize()
        assert graph.outlinks(2) == [1]
        assert graph.inlinks(1) == [2]

    def test_attributes(self, cloud):
        builder = GraphBuilder(cloud, social_graph_schema())
        builder.add_node(1, Name="David")
        builder.add_edge(1, 2)
        graph = builder.finalize()
        assert graph.attribute(1, "Name") == "David"
        assert graph.attribute(2, "Name") == ""  # default

    def test_unknown_attribute_rejected(self, cloud):
        builder = GraphBuilder(cloud, social_graph_schema())
        with pytest.raises(QueryError, match="unknown attributes"):
            builder.add_node(1, Age=30)

    def test_counts(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges([(0, 1), (1, 2), (2, 0)])
        assert builder.node_count == 3
        assert builder.edge_count == 3

    def test_undirected_edge_count_not_doubled(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edges([(0, 1), (1, 2)])
        assert builder.edge_count == 2

    def test_finalize_once(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema())
        builder.add_edge(0, 1)
        builder.finalize()
        with pytest.raises(QueryError, match="finalized"):
            builder.add_edge(1, 2)
        with pytest.raises(QueryError, match="finalized"):
            builder.finalize()


class TestGraphApi:
    @pytest.fixture
    def graph(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
        return builder.finalize()

    def test_shape(self, graph):
        assert graph.num_nodes == 3
        assert graph.num_edges() == 4
        assert graph.directed
        assert 0 in graph and 99 not in graph

    def test_degree(self, graph):
        assert graph.degree(0) == 2

    def test_node_materialisation(self, graph):
        node = graph.node(0)
        assert sorted(node["Outlinks"]) == [1, 2]

    def test_machine_placement_consistent(self, graph):
        partition = graph.partition()
        assert sum(len(v) for v in partition.values()) == 3
        for machine, nodes in partition.items():
            for node in nodes:
                assert graph.machine_of(node) == machine

    def test_use_node_mutation(self, graph):
        with graph.use_node(0) as cell:
            cell.Outlinks.append(99)
        assert 99 in graph.outlinks(0)

    def test_attribute_on_plain_schema_rejected(self, graph):
        with pytest.raises(QueryError):
            graph.attribute(0, "Name")


class TestCsrTopology:
    def test_matches_graph_adjacency(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges([(5, 7), (7, 9), (9, 5), (5, 9)])
        graph = builder.finalize()
        topo = CsrTopology(graph, include_inlinks=True)
        assert topo.n == 3
        assert topo.num_edges == 4
        five = topo.index_of[5]
        out_ids = sorted(topo.node_ids[topo.out_neighbors(five)])
        assert out_ids == [7, 9]
        in_nine = sorted(topo.node_ids[topo.in_neighbors(topo.index_of[9])])
        assert in_nine == [5, 7]

    def test_out_degrees(self, rmat_topology):
        degrees = rmat_topology.out_degrees()
        assert degrees.sum() == rmat_topology.num_edges
        assert len(degrees) == rmat_topology.n

    def test_machine_assignment_covers_all(self, rmat_topology):
        counted = sum(
            len(rmat_topology.nodes_of_machine(m))
            for m in range(rmat_topology.machine_count)
        )
        assert counted == rmat_topology.n

    def test_cut_edges_bounded(self, rmat_topology):
        cut = rmat_topology.cut_edges()
        assert 0 < cut < rmat_topology.num_edges

    def test_inlinks_disabled_raises(self, undirected_topology):
        with pytest.raises(QueryError):
            undirected_topology.in_neighbors(0)

    def test_empty_neighbor_slices(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_node(1)
        graph = builder.finalize()
        topo = CsrTopology(graph)
        assert len(topo.out_neighbors(0)) == 0
