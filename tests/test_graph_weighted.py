"""Tests for weighted graphs (edge data beside the cell id, §4.1)."""

import numpy as np
import pytest

from repro.algorithms import sssp
from repro.errors import QueryError
from repro.graph.weighted import WeightedGraphBuilder, weighted_graph_schema


@pytest.fixture
def weighted(cloud):
    builder = WeightedGraphBuilder(cloud)
    builder.add_edges([
        (0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 3, 1.0), (1, 3, 7.0),
    ])
    return builder.finalize()


class TestWeightedGraph:
    def test_weights_parallel_to_outlinks(self, weighted):
        assert weighted.outlinks(0) == [1, 2]
        assert weighted.weights(0) == [1.0, 4.0]
        assert weighted.weighted_outlinks(1) == [(2, 2.0), (3, 7.0)]

    def test_edge_weight_lookup(self, weighted):
        assert weighted.edge_weight(0, 2) == 4.0
        with pytest.raises(QueryError):
            weighted.edge_weight(3, 0)

    def test_negative_weight_rejected(self, cloud):
        builder = WeightedGraphBuilder(cloud)
        with pytest.raises(QueryError):
            builder.add_edge(0, 1, -2.0)

    def test_inlinks_maintained(self, weighted):
        assert sorted(weighted.inlinks(2)) == [0, 1]

    def test_weighted_topology_alignment(self, weighted):
        topology, weights = weighted.weighted_topology()
        assert len(weights) == topology.num_edges
        zero = topology.index_of[0]
        start = topology.out_indptr[zero]
        # Node 0's two edges carry its two weights, in order.
        assert weights[start:start + 2].tolist() == [1.0, 4.0]

    def test_weighted_sssp_end_to_end(self, weighted):
        """Dijkstra distances through the cloud-resident weights."""
        topology, weights = weighted.weighted_topology()
        run = sssp(topology, topology.index_of[0], edge_weights=weights)
        by_node = {
            int(topology.node_ids[i]): run.distances[i]
            for i in range(topology.n)
        }
        assert by_node[0] == 0.0
        assert by_node[1] == 1.0
        assert by_node[2] == 3.0   # 0->1->2 beats 0->2
        assert by_node[3] == 4.0   # 0->1->2->3

    def test_weighted_sssp_matches_networkx(self, cloud):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(3)
        builder = WeightedGraphBuilder(cloud)
        reference = networkx.DiGraph()
        reference.add_nodes_from(range(60))
        for _ in range(300):
            u, v = rng.integers(0, 60, size=2)
            if u == v:
                continue
            w = float(rng.uniform(0.1, 5.0))
            builder.add_edge(int(u), int(v), w)
            if (reference.has_edge(int(u), int(v))
                    and reference[int(u)][int(v)]["weight"] <= w):
                continue
            reference.add_edge(int(u), int(v), weight=w)
        graph = builder.finalize()
        topology, weights = graph.weighted_topology()
        root = topology.index_of[0]
        run = sssp(topology, root, edge_weights=weights)
        expected = networkx.single_source_dijkstra_path_length(reference, 0)
        for i in range(topology.n):
            node = int(topology.node_ids[i])
            if node in expected:
                assert run.distances[i] == pytest.approx(expected[node])
            else:
                assert not np.isfinite(run.distances[i])

    def test_schema_is_well_formed(self):
        schema = weighted_graph_schema()
        assert schema.directed
        assert "Weights" in schema.attribute_fields
