"""Tests for the PBGL/Giraph comparator simulators and Table 1."""

import numpy as np
import pytest

from repro.algorithms import bfs
from repro.baselines import (
    GiraphSimulation,
    PAPER_TABLE_1,
    PbglSimulation,
    capability_table,
)
from repro.baselines.capabilities import (
    format_table,
    trinity_capabilities,
)
from repro.baselines.costmodel import (
    GiraphCostModel, PbglCostModel, TrinityCostModel,
)
from repro.baselines.giraph import (
    expected_speedup_vs_giraph,
    giraph_from_topology,
    giraph_paper_calibration,
)
from repro.errors import ComputeError


class TestPbgl:
    @pytest.fixture(scope="class")
    def simulation(self, rmat_topology):
        return PbglSimulation(rmat_topology)

    def test_bfs_levels_match_trinity(self, simulation, rmat_topology):
        """The simulator changes costs, never answers."""
        ours = bfs(rmat_topology, 0)
        theirs = simulation.run_bfs(0)
        assert np.array_equal(ours.levels, theirs.levels)

    def test_ghost_cells_measured(self, simulation, rmat_topology):
        assert simulation.ghost_cells > 0
        # Ghosts are bounded by (machines x distinct vertices).
        assert simulation.ghost_cells <= (
            rmat_topology.machine_count * rmat_topology.n
        )

    def test_memory_exceeds_trinity(self, simulation, rmat_topology):
        trinity = TrinityCostModel().memory_bytes(
            rmat_topology.n, rmat_topology.num_edges
        )
        pbgl = sum(simulation.memory_per_machine())
        assert pbgl > 2 * trinity

    def test_memory_ratio_grows_with_degree(self):
        """Figure 13: higher average degree ghosts more hubs."""
        from repro.config import ClusterConfig
        from repro.generators import rmat_edges
        from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
        from repro.memcloud import MemoryCloud

        ratios = []
        for degree in (4, 16):
            edges = rmat_edges(scale=9, avg_degree=degree, seed=1)
            cloud = MemoryCloud(ClusterConfig(machines=8, trunk_bits=6))
            builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
            builder.add_edges(edges.tolist())
            topo = CsrTopology(builder.finalize())
            sim = PbglSimulation(topo)
            trinity = TrinityCostModel().memory_bytes(topo.n, topo.num_edges)
            ratios.append(sum(sim.memory_per_machine()) / trinity)
        assert ratios[1] >= ratios[0] * 0.8  # does not collapse

    def test_slower_than_trinity(self, simulation, rmat_topology):
        ours = bfs(rmat_topology, 0)
        theirs = simulation.run_bfs(0)
        assert theirs.elapsed > ours.elapsed

    def test_oom_flag(self, rmat_topology):
        tiny_ram = PbglCostModel(ram_per_machine=1024)
        simulation = PbglSimulation(rmat_topology, tiny_ram)
        assert not simulation.check_memory()
        result = simulation.run_bfs(0)
        assert result.out_of_memory
        with pytest.raises(MemoryError):
            simulation.run_bfs(0, allow_oom=False)

    def test_bad_root(self, simulation, rmat_topology):
        with pytest.raises(ComputeError):
            simulation.run_bfs(rmat_topology.n)


class TestGiraph:
    def test_paper_calibration_point(self):
        """Model must reproduce the paper's measured Giraph numbers."""
        calibration = giraph_paper_calibration()
        assert calibration["predicted_seconds"] == pytest.approx(
            calibration["paper_seconds"], rel=0.05
        )
        assert calibration["oom_at_degree_16"]

    def test_two_orders_of_magnitude_gap(self):
        assert 60 <= expected_speedup_vs_giraph() <= 2000

    def test_more_machines_faster(self):
        few = GiraphSimulation(10**6, 10**7, 4).run_pagerank()
        many = GiraphSimulation(10**6, 10**7, 16).run_pagerank()
        assert many.elapsed < few.elapsed

    def test_more_edges_slower(self):
        small = GiraphSimulation(10**6, 10**7, 8).run_pagerank()
        large = GiraphSimulation(10**6, 10**8, 8).run_pagerank()
        assert large.elapsed > small.elapsed

    def test_superstep_overhead_floor(self):
        empty = GiraphSimulation(10, 0, 4)
        run = empty.run_pagerank(supersteps=2)
        model = GiraphCostModel()
        assert run.elapsed >= 2 * model.superstep_overhead

    def test_memory_model_and_oom(self):
        fits = GiraphSimulation(10**6, 10**7, 8)
        assert fits.check_memory()
        blown = GiraphSimulation(256_000_000, 256_000_000 * 16, 4)
        assert not blown.check_memory()
        result = blown.run_pagerank()
        assert result.out_of_memory
        with pytest.raises(MemoryError):
            blown.run_pagerank(allow_oom=False)

    def test_from_topology(self, rmat_topology):
        simulation = giraph_from_topology(rmat_topology)
        assert simulation.vertices == rmat_topology.n
        assert simulation.edges == rmat_topology.num_edges

    def test_validation(self):
        with pytest.raises(ComputeError):
            GiraphSimulation(0, 0, 1)
        with pytest.raises(ComputeError):
            GiraphSimulation(1, 1, 2).run_pagerank(supersteps=0)


class TestTable1:
    def test_paper_rows_verbatim(self):
        by_name = {row.system: row for row in PAPER_TABLE_1}
        assert by_name["Neo4j"].row() == (
            "Neo4j", "Yes", "Yes", "Yes", "No",
        )
        assert by_name["Pregel"].row() == (
            "Pregel", "No", "No", "Yes", "Yes",
        )
        assert by_name["HyperGraphDB"].analytics is False
        assert by_name["GraphChi"].scale_out is False

    def test_trinity_row_derived_all_yes(self):
        """Trinity's thesis: the only system with all four capabilities —
        and our row is *derived* from implemented modules."""
        trinity = trinity_capabilities()
        assert trinity.row() == ("Trinity", "Yes", "Yes", "Yes", "Yes")

    def test_trinity_unique_in_full_table(self):
        rows = capability_table()
        all_yes = [row.system for row in rows
                   if row.graph_database and row.online_queries
                   and row.analytics and row.scale_out]
        assert all_yes == ["Trinity"]

    def test_format_table_renders_all_rows(self):
        rendered = format_table()
        for row in capability_table():
            assert row.system in rendered
        assert "Graph Database" in rendered
