"""Property tests: random TSL schemas round-trip through every path.

Generates arbitrary cell schemas (random field names, primitive /
string / list / nested-struct types), draws values matching each schema,
and asserts the core encoding invariants:

* encode -> decode is the identity,
* skip() of every field lands exactly where decode() does,
* field_offset + field decode equals whole-struct decode,
* cell accessors read the same values out of the memory cloud,
* accessor writes followed by reads return what was written.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, MemoryParams
from repro.memcloud import MemoryCloud
from repro.tsl.accessor import load_cell, save_cell, use_cell
from repro.tsl.types import (
    BOOL, BYTE, DOUBLE, INT, LONG, SHORT, STRING, ListType, StructType,
)

_NAMES = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=6)

_PRIMITIVES = [
    (BYTE, st.integers(0, 255)),
    (BOOL, st.booleans()),
    (SHORT, st.integers(-2**15, 2**15 - 1)),
    (INT, st.integers(-2**31, 2**31 - 1)),
    (LONG, st.integers(-2**63, 2**63 - 1)),
    (DOUBLE, st.floats(allow_nan=False, allow_infinity=False,
                       width=64)),
    (STRING, st.text(max_size=20)),
]


def _type_and_values(depth: int = 0):
    """Strategy producing (TslType, value_strategy) pairs."""
    options = [st.just(pair) for pair in _PRIMITIVES]
    if depth < 2:
        options.append(
            _type_and_values(depth + 1).map(
                lambda pair: (ListType(pair[0]),
                              st.lists(pair[1], max_size=5))
            )
        )
        options.append(_struct_and_values(depth + 1))
    return st.one_of(options)


def _struct_and_values(depth: int = 0):
    """Strategy producing (StructType, dict_strategy) pairs."""

    def build(fields):
        unique: dict[str, tuple] = {}
        for name, (tsl_type, value_strategy) in fields:
            unique[name] = (tsl_type, value_strategy)
        if not unique:
            unique["F"] = _PRIMITIVES[3]
        struct_type = StructType(
            "S", [(name, t) for name, (t, _) in unique.items()]
        )
        value_strategy = st.fixed_dictionaries({
            name: vs for name, (_, vs) in unique.items()
        })
        return (struct_type, value_strategy)

    return st.lists(
        st.tuples(_NAMES, _type_and_values(depth)),
        min_size=1, max_size=5,
    ).map(build)


SCHEMA_AND_VALUE = _struct_and_values().flatmap(
    lambda pair: st.tuples(st.just(pair[0]), pair[1])
)


class TestRandomSchemas:
    @settings(max_examples=120, deadline=None)
    @given(SCHEMA_AND_VALUE)
    def test_encode_decode_roundtrip(self, schema_value):
        struct_type, value = schema_value
        blob = struct_type.encode(value)
        decoded, end = struct_type.decode(blob, 0)
        assert end == len(blob)
        # Doubles are 64-bit on both sides, so equality is exact.
        assert decoded == value

    @settings(max_examples=120, deadline=None)
    @given(SCHEMA_AND_VALUE)
    def test_skip_equals_decode_advance(self, schema_value):
        struct_type, value = schema_value
        blob = struct_type.encode(value)
        offset = 0
        for name, field_type in struct_type.fields:
            _, after_decode = field_type.decode(blob, offset)
            after_skip = field_type.skip(blob, offset)
            assert after_skip == after_decode
            offset = after_decode
        assert offset == len(blob)

    @settings(max_examples=120, deadline=None)
    @given(SCHEMA_AND_VALUE)
    def test_field_offset_consistent(self, schema_value):
        struct_type, value = schema_value
        blob = struct_type.encode(value)
        whole, _ = struct_type.decode(blob, 0)
        for name, field_type in struct_type.fields:
            offset = struct_type.field_offset(blob, name)
            field_value, _ = field_type.decode(blob, offset)
            assert field_value == whole[name]

    @settings(max_examples=60, deadline=None)
    @given(SCHEMA_AND_VALUE)
    def test_accessor_reads_match_decode(self, schema_value):
        struct_type, value = schema_value
        cloud = MemoryCloud(ClusterConfig(
            machines=2, trunk_bits=3,
            memory=MemoryParams(trunk_size=512 * 1024),
        ))
        save_cell(cloud, 1, struct_type, value)
        with use_cell(cloud, 1, struct_type) as cell:
            for name, _ in struct_type.fields:
                assert cell.read(name) == value[name]
        assert load_cell(cloud, 1, struct_type) == value

    @settings(max_examples=60, deadline=None)
    @given(SCHEMA_AND_VALUE, SCHEMA_AND_VALUE)
    def test_accessor_full_rewrite(self, original, replacement):
        """Writing every field of one random value over another random
        value of the SAME schema reads back as the replacement."""
        struct_type, value = original
        _, other_strategy_value = replacement
        cloud = MemoryCloud(ClusterConfig(
            machines=2, trunk_bits=3,
            memory=MemoryParams(trunk_size=512 * 1024),
        ))
        save_cell(cloud, 1, struct_type, value)
        # Draw the replacement from the same schema by re-encoding the
        # default (schemas differ between the two draws; use defaults).
        new_value = struct_type.default()
        with use_cell(cloud, 1, struct_type) as cell:
            for name, _ in struct_type.fields:
                cell.set(name, new_value[name])
        assert load_cell(cloud, 1, struct_type) == new_value
