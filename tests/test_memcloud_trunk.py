"""Tests for memory trunks: circular allocation, defrag, reservation."""

import pytest

from repro.config import MemoryParams
from repro.errors import CellLockedError, CellNotFoundError, TrunkFullError
from repro.memcloud.trunk import CELL_HEADER_BYTES, MemoryTrunk


def make_trunk(trunk_size=64 * 1024, **kwargs) -> MemoryTrunk:
    params = MemoryParams(trunk_size=trunk_size, page_size=1024, **kwargs)
    return MemoryTrunk(0, params)


class TestBasicOps:
    def test_put_get(self):
        trunk = make_trunk()
        trunk.put(1, b"alpha")
        assert trunk.get(1) == b"alpha"

    def test_get_missing_raises(self):
        trunk = make_trunk()
        with pytest.raises(CellNotFoundError):
            trunk.get(404)

    def test_overwrite_same_size_in_place(self):
        trunk = make_trunk()
        trunk.put(1, b"aaaa")
        stats_before = trunk.stats()
        trunk.put(1, b"bbbb")
        assert trunk.get(1) == b"bbbb"
        assert trunk.stats().garbage_bytes == stats_before.garbage_bytes

    def test_shrink_in_place(self):
        trunk = make_trunk()
        trunk.put(1, b"a" * 100)
        trunk.put(1, b"b" * 10)
        assert trunk.get(1) == b"b" * 10

    def test_grow_relocates_and_reserves(self):
        trunk = make_trunk()
        trunk.put(1, b"a" * 10)
        trunk.put(1, b"b" * 100)  # outgrows slot -> relocation
        assert trunk.get(1) == b"b" * 100
        stats = trunk.stats()
        assert stats.relocations == 1
        # reservation_factor 2.0: new slot reserves ~200 bytes
        assert stats.reserved_bytes >= CELL_HEADER_BYTES + 200

    def test_remove(self):
        trunk = make_trunk()
        trunk.put(1, b"x")
        trunk.remove(1)
        assert 1 not in trunk
        with pytest.raises(CellNotFoundError):
            trunk.get(1)

    def test_remove_missing_raises(self):
        trunk = make_trunk()
        with pytest.raises(CellNotFoundError):
            trunk.remove(9)

    def test_len_and_uids(self):
        trunk = make_trunk()
        for uid in (5, 6, 7):
            trunk.put(uid, b"v")
        assert len(trunk) == 3
        assert sorted(trunk.uids()) == [5, 6, 7]

    def test_empty_payload(self):
        trunk = make_trunk()
        trunk.put(1, b"")
        assert trunk.get(1) == b""
        assert trunk.size_of(1) == 0

    def test_resize_grow_and_shrink(self):
        trunk = make_trunk()
        trunk.put(1, b"abc")
        trunk.resize(1, 6, fill=0)
        assert trunk.get(1) == b"abc\x00\x00\x00"
        trunk.resize(1, 2)
        assert trunk.get(1) == b"ab"

    def test_resize_negative_raises(self):
        trunk = make_trunk()
        trunk.put(1, b"abc")
        with pytest.raises(ValueError):
            trunk.resize(1, -1)


class TestZeroCopyViews:
    def test_view_matches_payload(self):
        trunk = make_trunk()
        trunk.put(1, b"zero-copy")
        view = trunk.get_view(1)
        assert bytes(view) == b"zero-copy"
        view.release()

    def test_view_is_writable_in_place(self):
        trunk = make_trunk()
        trunk.put(1, b"abcd")
        view = trunk.get_view(1)
        view[0] = ord("Z")
        view.release()
        assert trunk.get(1) == b"Zbcd"


class TestCircularAllocation:
    def test_fills_then_wraps_after_removal(self):
        trunk = make_trunk(trunk_size=4096)
        # Fill most of the trunk.
        payload = b"x" * 200
        uids = []
        uid = 0
        while True:
            try:
                trunk.put(uid, payload)
            except TrunkFullError:
                break
            uids.append(uid)
            uid += 1
        assert len(uids) > 10
        # Free the first half and keep allocating: the head must wrap
        # (possibly via a defrag pass) without corrupting survivors.
        for victim in uids[: len(uids) // 2]:
            trunk.remove(victim)
        survivors = uids[len(uids) // 2:]
        for fresh in range(1000, 1000 + len(uids) // 3):
            trunk.put(fresh, payload)
        for survivor in survivors:
            assert trunk.get(survivor) == payload

    def test_oversized_cell_rejected(self):
        trunk = make_trunk(trunk_size=4096)
        with pytest.raises(TrunkFullError, match="exceeds trunk size"):
            trunk.put(1, b"x" * 8192)

    def test_full_trunk_raises_after_defrag_attempt(self):
        trunk = make_trunk(trunk_size=2048)
        with pytest.raises(TrunkFullError):
            for uid in range(100):
                trunk.put(uid, b"y" * 128)
        # Data inserted before the failure is intact.
        assert trunk.get(0) == b"y" * 128


class TestDefragmentation:
    def test_defrag_reclaims_garbage(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)  # manual-only
        for uid in range(20):
            trunk.put(uid, b"d" * 64)
        for uid in range(0, 20, 2):
            trunk.remove(uid)
        assert trunk.stats().garbage_bytes > 0
        assert trunk.defragment()
        stats = trunk.stats()
        assert stats.garbage_bytes == 0
        for uid in range(1, 20, 2):
            assert trunk.get(uid) == b"d" * 64

    def test_defrag_releases_reservations(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)
        trunk.put(1, b"a" * 10)
        trunk.put(1, b"b" * 100)  # reserved ~200
        trunk.defragment()
        stats = trunk.stats()
        assert stats.reserved_bytes == stats.live_bytes

    def test_defrag_decommits_pages(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)
        for uid in range(30):
            trunk.put(uid, b"p" * 256)
        committed_before = trunk.stats().committed_bytes
        for uid in range(29):
            trunk.remove(uid)
        trunk.defragment()
        assert trunk.stats().committed_bytes < committed_before

    def test_defrag_aborts_on_pinned_cell(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)
        trunk.put(1, b"pinned")
        trunk.put(2, b"other")
        trunk.remove(2)
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            assert trunk.defragment() is False
        finally:
            lock.release()
        assert trunk.defragment() is True

    def test_auto_defrag_triggers_on_ratio(self):
        # Keep cell 0 alive so the tail cannot advance: the garbage is
        # scattered *between* live cells and only compaction reclaims it.
        trunk = make_trunk(trunk_size=8192, defrag_trigger_ratio=0.2)
        for uid in range(8):
            trunk.put(uid, b"z" * 512)
        for uid in range(1, 7):
            trunk.remove(uid)
        assert trunk.stats().defrag_passes >= 1

    def test_front_garbage_reclaimed_without_defrag(self):
        # Garbage immediately behind the tail is the cheap case: the
        # trigger ratio is hit but circular reclamation absorbs it and no
        # compaction pass runs.
        trunk = make_trunk(trunk_size=8192, defrag_trigger_ratio=0.2)
        for uid in range(8):
            trunk.put(uid, b"z" * 512)
        for uid in range(6):
            trunk.remove(uid)
        stats = trunk.stats()
        assert stats.defrag_passes == 0
        assert stats.tail_advances >= 1
        assert stats.garbage_bytes == 0

    def test_utilization_metric(self):
        trunk = make_trunk()
        trunk.put(1, b"u" * 100)
        assert 0.0 < trunk.stats().utilization <= 1.0


class TestLocking:
    def test_update_blocked_by_held_lock(self):
        trunk = make_trunk()
        trunk.put(1, b"v1")
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            with pytest.raises(CellLockedError):
                trunk.put(1, b"v2-blocked")
        finally:
            lock.release()
        trunk.put(1, b"v2")
        assert trunk.get(1) == b"v2"

    def test_remove_blocked_by_held_lock(self):
        trunk = make_trunk()
        trunk.put(1, b"v")
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            with pytest.raises(CellLockedError):
                trunk.remove(1)
        finally:
            lock.release()


class TestPersistenceHooks:
    def test_dump_and_load_cells(self):
        source = make_trunk()
        for uid in range(10):
            source.put(uid, bytes([uid]) * uid)
        target = make_trunk()
        target.load_cells(source.dump_cells())
        for uid in range(10):
            assert target.get(uid) == bytes([uid]) * uid
