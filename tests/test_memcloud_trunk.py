"""Tests for memory trunks: circular allocation, defrag, reservation."""

import numpy as np
import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.errors import (CellLockedError, CellNotFoundError, StaleSpanError,
                          TrunkFullError)
from repro.memcloud.trunk import CELL_HEADER_BYTES, MemoryTrunk
from repro.obs import MetricsRegistry


def make_trunk(trunk_size=64 * 1024, **kwargs) -> MemoryTrunk:
    params = MemoryParams(trunk_size=trunk_size, page_size=1024, **kwargs)
    return MemoryTrunk(0, params)


def make_paged_trunk(trunk_size=64 * 1024, page_budget=4,
                     storage_page_size=1024, **kwargs) -> MemoryTrunk:
    params = MemoryParams(trunk_size=trunk_size, page_size=1024,
                          storage="paged", page_budget=page_budget,
                          storage_page_size=storage_page_size, **kwargs)
    return MemoryTrunk(0, params, registry=MetricsRegistry())


class TestBasicOps:
    def test_put_get(self):
        trunk = make_trunk()
        trunk.put(1, b"alpha")
        assert trunk.get(1) == b"alpha"

    def test_get_missing_raises(self):
        trunk = make_trunk()
        with pytest.raises(CellNotFoundError):
            trunk.get(404)

    def test_overwrite_same_size_in_place(self):
        trunk = make_trunk()
        trunk.put(1, b"aaaa")
        stats_before = trunk.stats()
        trunk.put(1, b"bbbb")
        assert trunk.get(1) == b"bbbb"
        assert trunk.stats().garbage_bytes == stats_before.garbage_bytes

    def test_shrink_in_place(self):
        trunk = make_trunk()
        trunk.put(1, b"a" * 100)
        trunk.put(1, b"b" * 10)
        assert trunk.get(1) == b"b" * 10

    def test_grow_relocates_and_reserves(self):
        trunk = make_trunk()
        trunk.put(1, b"a" * 10)
        trunk.put(1, b"b" * 100)  # outgrows slot -> relocation
        assert trunk.get(1) == b"b" * 100
        stats = trunk.stats()
        assert stats.relocations == 1
        # reservation_factor 2.0: new slot reserves ~200 bytes
        assert stats.reserved_bytes >= CELL_HEADER_BYTES + 200

    def test_remove(self):
        trunk = make_trunk()
        trunk.put(1, b"x")
        trunk.remove(1)
        assert 1 not in trunk
        with pytest.raises(CellNotFoundError):
            trunk.get(1)

    def test_remove_missing_raises(self):
        trunk = make_trunk()
        with pytest.raises(CellNotFoundError):
            trunk.remove(9)

    def test_len_and_uids(self):
        trunk = make_trunk()
        for uid in (5, 6, 7):
            trunk.put(uid, b"v")
        assert len(trunk) == 3
        assert sorted(trunk.uids()) == [5, 6, 7]

    def test_empty_payload(self):
        trunk = make_trunk()
        trunk.put(1, b"")
        assert trunk.get(1) == b""
        assert trunk.size_of(1) == 0

    def test_resize_grow_and_shrink(self):
        trunk = make_trunk()
        trunk.put(1, b"abc")
        trunk.resize(1, 6, fill=0)
        assert trunk.get(1) == b"abc\x00\x00\x00"
        trunk.resize(1, 2)
        assert trunk.get(1) == b"ab"

    def test_resize_negative_raises(self):
        trunk = make_trunk()
        trunk.put(1, b"abc")
        with pytest.raises(ValueError):
            trunk.resize(1, -1)


class TestZeroCopyViews:
    def test_view_matches_payload(self):
        trunk = make_trunk()
        trunk.put(1, b"zero-copy")
        view = trunk.get_view(1)
        assert bytes(view) == b"zero-copy"
        view.release()

    def test_view_is_writable_in_place(self):
        trunk = make_trunk()
        trunk.put(1, b"abcd")
        view = trunk.get_view(1)
        view[0] = ord("Z")
        view.release()
        assert trunk.get(1) == b"Zbcd"


class TestCircularAllocation:
    def test_fills_then_wraps_after_removal(self):
        trunk = make_trunk(trunk_size=4096)
        # Fill most of the trunk.
        payload = b"x" * 200
        uids = []
        uid = 0
        while True:
            try:
                trunk.put(uid, payload)
            except TrunkFullError:
                break
            uids.append(uid)
            uid += 1
        assert len(uids) > 10
        # Free the first half and keep allocating: the head must wrap
        # (possibly via a defrag pass) without corrupting survivors.
        for victim in uids[: len(uids) // 2]:
            trunk.remove(victim)
        survivors = uids[len(uids) // 2:]
        for fresh in range(1000, 1000 + len(uids) // 3):
            trunk.put(fresh, payload)
        for survivor in survivors:
            assert trunk.get(survivor) == payload

    def test_oversized_cell_rejected(self):
        trunk = make_trunk(trunk_size=4096)
        with pytest.raises(TrunkFullError, match="exceeds trunk size"):
            trunk.put(1, b"x" * 8192)

    def test_full_trunk_raises_after_defrag_attempt(self):
        trunk = make_trunk(trunk_size=2048)
        with pytest.raises(TrunkFullError):
            for uid in range(100):
                trunk.put(uid, b"y" * 128)
        # Data inserted before the failure is intact.
        assert trunk.get(0) == b"y" * 128


class TestDefragmentation:
    def test_defrag_reclaims_garbage(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)  # manual-only
        for uid in range(20):
            trunk.put(uid, b"d" * 64)
        for uid in range(0, 20, 2):
            trunk.remove(uid)
        assert trunk.stats().garbage_bytes > 0
        assert trunk.defragment()
        stats = trunk.stats()
        assert stats.garbage_bytes == 0
        for uid in range(1, 20, 2):
            assert trunk.get(uid) == b"d" * 64

    def test_defrag_releases_reservations(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)
        trunk.put(1, b"a" * 10)
        trunk.put(1, b"b" * 100)  # reserved ~200
        trunk.defragment()
        stats = trunk.stats()
        assert stats.reserved_bytes == stats.live_bytes

    def test_defrag_decommits_pages(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)
        for uid in range(30):
            trunk.put(uid, b"p" * 256)
        committed_before = trunk.stats().committed_bytes
        for uid in range(29):
            trunk.remove(uid)
        trunk.defragment()
        assert trunk.stats().committed_bytes < committed_before

    def test_defrag_aborts_on_pinned_cell(self):
        trunk = make_trunk(defrag_trigger_ratio=1.0)
        trunk.put(1, b"pinned")
        trunk.put(2, b"other")
        trunk.remove(2)
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            assert trunk.defragment() is False
        finally:
            lock.release()
        assert trunk.defragment() is True

    def test_auto_defrag_triggers_on_ratio(self):
        # Keep cell 0 alive so the tail cannot advance: the garbage is
        # scattered *between* live cells and only compaction reclaims it.
        trunk = make_trunk(trunk_size=8192, defrag_trigger_ratio=0.2)
        for uid in range(8):
            trunk.put(uid, b"z" * 512)
        for uid in range(1, 7):
            trunk.remove(uid)
        assert trunk.stats().defrag_passes >= 1

    def test_front_garbage_reclaimed_without_defrag(self):
        # Garbage immediately behind the tail is the cheap case: the
        # trigger ratio is hit but circular reclamation absorbs it and no
        # compaction pass runs.
        trunk = make_trunk(trunk_size=8192, defrag_trigger_ratio=0.2)
        for uid in range(8):
            trunk.put(uid, b"z" * 512)
        for uid in range(6):
            trunk.remove(uid)
        stats = trunk.stats()
        assert stats.defrag_passes == 0
        assert stats.tail_advances >= 1
        assert stats.garbage_bytes == 0

    def test_utilization_metric(self):
        trunk = make_trunk()
        trunk.put(1, b"u" * 100)
        assert 0.0 < trunk.stats().utilization <= 1.0


class TestLocking:
    def test_update_blocked_by_held_lock(self):
        trunk = make_trunk()
        trunk.put(1, b"v1")
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            with pytest.raises(CellLockedError):
                trunk.put(1, b"v2-blocked")
        finally:
            lock.release()
        trunk.put(1, b"v2")
        assert trunk.get(1) == b"v2"

    def test_remove_blocked_by_held_lock(self):
        trunk = make_trunk()
        trunk.put(1, b"v")
        lock = trunk.lock_of(1)
        lock.acquire()
        try:
            with pytest.raises(CellLockedError):
                trunk.remove(1)
        finally:
            lock.release()


class TestPersistenceHooks:
    def test_dump_and_load_cells(self):
        source = make_trunk()
        for uid in range(10):
            source.put(uid, bytes([uid]) * uid)
        target = make_trunk()
        target.load_cells(source.dump_cells())
        for uid in range(10):
            assert target.get(uid) == bytes([uid]) * uid


class TestPagedSpanStaleness:
    """Span staleness under PagedStorage, mirroring the resident-epoch
    tests: a pinned span whose page is invalidated by defrag/mutation
    must fail ``assert_fresh`` instead of silently reading moved bytes.
    """

    def test_defrag_staleness_detected(self):
        trunk = make_paged_trunk()
        try:
            for uid in range(8):
                trunk.put(uid, bytes([uid]) * 200)
            for uid in range(0, 8, 2):
                trunk.remove(uid)
            uids = np.array([1, 3, 5, 7], dtype=np.uint64)
            spans = trunk.bulk_get_spans(uids)
            fetched = spans.epoch
            assert trunk.defragment()
            assert trunk.mutation_epoch != fetched
        finally:
            trunk.storage.unlink()

    def test_mutation_staleness_detected(self):
        trunk = make_paged_trunk()
        try:
            trunk.put(1, b"a" * 100)
            spans = trunk.bulk_get_spans(np.array([1], dtype=np.uint64))
            trunk.put(2, b"b" * 100)  # any structural mutation
            assert trunk.mutation_epoch != spans.epoch
        finally:
            trunk.storage.unlink()

    def test_mutation_releases_span_pins(self):
        trunk = make_paged_trunk(page_budget=16)
        try:
            trunk.put(1, b"a" * 100)
            trunk.bulk_get_spans(np.array([1], dtype=np.uint64))
            assert trunk.storage.pinned_pages >= 1
            trunk.put(2, b"b" * 100)
            assert trunk.storage.pinned_pages == 0
        finally:
            trunk.storage.unlink()

    def test_cloud_span_group_raises_after_paged_defrag(self):
        from repro.memcloud.cloud import MemoryCloud
        cfg = ClusterConfig(machines=2, trunk_bits=2, memory=MemoryParams(
            trunk_size=64 * 1024, storage="paged", storage_page_size=1024,
            page_budget=4))
        cloud = MemoryCloud(cfg, MetricsRegistry())
        try:
            uids = np.arange(100, dtype=np.uint64)
            cloud.bulk_put(uids, [bytes([i]) * 150 for i in range(100)],
                           presize=False)
            groups = cloud.bulk_get_spans(uids[:20])
            for uid in uids[:50].tolist():
                cloud.remove(int(uid))
            cloud.defragment_all()
            with pytest.raises(StaleSpanError):
                for group in groups:
                    group.assert_fresh()
        finally:
            cloud.release_arenas()


class TestSpanCacheInvalidation:
    """Regression: the span cache must drop on *every* path that changes
    cell layout — not only scalar structural mutations.  Checkpoint
    restore and the parallel-load adoption path both went around put().
    """

    def _cached_offsets(self, trunk):
        # Prime and return the internal (offsets, sizes) cache.
        trunk.bulk_get_packed(np.array(sorted(trunk.uids()),
                                       dtype=np.uint64))
        return trunk._span_cache

    def test_adopt_fresh_cells_drops_span_cache(self):
        # Worker half: lays the bytes out in its own (forked) trunk.
        worker = make_trunk()
        sizes = worker.bulk_write_fresh([1, 2], [b"a" * 10, b"b" * 20])
        # Coordinator half: bytes arrive via the shared arena (copied
        # here), the trunk object itself is still pristine.
        trunk = make_trunk()
        trunk.storage.write(0, worker.storage.read(0, 2 * 16 + 30))
        epoch_before = trunk.mutation_epoch
        trunk.adopt_fresh_cells([1, 2], sizes)
        assert trunk._span_cache is None
        assert trunk.mutation_epoch > epoch_before
        assert trunk.get(1) == b"a" * 10 and trunk.get(2) == b"b" * 20

    def test_adopt_image_state_drops_span_cache_and_bumps_epoch(self):
        source = make_trunk()
        for uid in range(5):
            source.put(uid, bytes([uid]) * 50)
        state = source.freeze_image_state()
        target = make_trunk()
        epoch_before = target.mutation_epoch
        target.adopt_image_state(state)
        assert target._span_cache is None
        assert target.mutation_epoch > epoch_before
        assert dict(target.dump_cells()) == dict(source.dump_cells())

    def test_restore_trunk_stales_old_spans_and_keeps_epoch_monotonic(self):
        from repro.compute.checkpoint import CheckpointManager
        from repro.memcloud.cloud import MemoryCloud
        from repro.tfs import TrinityFileSystem
        cfg = ClusterConfig(machines=2, trunk_bits=2)
        cloud = MemoryCloud(cfg, MetricsRegistry())
        uids = np.arange(60, dtype=np.uint64)
        cloud.bulk_put(uids, [bytes([i]) * 40 for i in range(60)],
                       presize=False)
        groups = cloud.bulk_get_spans(uids)
        epoch_before = cloud.mutation_epoch()
        manager = CheckpointManager(TrinityFileSystem(), job="trunkreg")
        manager.save_cloud(1, cloud)
        manager.load_cloud(1, cloud)
        # The cloud-wide epoch may never go backwards across a restore:
        # serve-layer caches stamped before it must not validate after.
        assert cloud.mutation_epoch() > epoch_before
        # Outstanding span groups hold the *replaced* trunk objects and
        # must fail freshness rather than silently pass forever.
        with pytest.raises(StaleSpanError):
            for group in groups:
                group.assert_fresh()
        assert cloud.bulk_get(uids) == [bytes([i]) * 40 for i in range(60)]

    def test_paged_checkpoint_restart_round_trip(self):
        from repro.compute.checkpoint import CheckpointManager
        from repro.memcloud.cloud import MemoryCloud
        from repro.tfs import TrinityFileSystem
        cfg = ClusterConfig(machines=2, trunk_bits=2, memory=MemoryParams(
            trunk_size=64 * 1024, storage="paged", storage_page_size=1024,
            page_budget=4))
        cloud = MemoryCloud(cfg, MetricsRegistry())
        try:
            uids = np.arange(120, dtype=np.uint64)
            values = [bytes([i]) * (30 + i % 90) for i in range(120)]
            cloud.bulk_put(uids, values, presize=False)
            for uid in uids[:30].tolist():
                cloud.remove(int(uid))
            cloud.defragment_all()
            stats_before = {t: cloud.trunks[t].stats() for t in cloud.trunks}
            manager = CheckpointManager(TrinityFileSystem(), job="pagedck")
            manager.save_cloud(3, cloud)
            assert manager.load_cloud(3, cloud) == 90
            # Page-image restore is exact: bytes *and* allocator stats.
            assert cloud.bulk_get(uids[30:]) == values[30:]
            for trunk_id, stats in stats_before.items():
                assert cloud.trunks[trunk_id].stats() == stats
        finally:
            cloud.release_arenas()
