"""Concurrency stress tests: real threads against the memory cloud.

The trunk-level design claim (Section 3): "trunk level parallelism can
be achieved without any overhead of locking" — different trunks never
contend; within a cell, the spin lock serialises accessors.  These tests
run actual Python threads (the GIL interleaves them finely enough to
expose ordering bugs) against the structures.
"""

import threading

import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.errors import CellLockedError
from repro.memcloud import MemoryCloud
from repro.memcloud.minitransaction import (
    MiniTransaction,
    TransactionAborted,
)


@pytest.fixture
def big_cloud():
    return MemoryCloud(ClusterConfig(
        machines=4, trunk_bits=6,
        memory=MemoryParams(trunk_size=1024 * 1024,
                            spinlock_budget=1 << 22),
    ))


class TestConcurrentCloud:
    def test_parallel_writers_disjoint_keys(self, big_cloud):
        """Writers on disjoint key ranges touch different trunks most of
        the time; all writes must land."""
        errors: list[Exception] = []

        def writer(base: int):
            try:
                for i in range(200):
                    big_cloud.put(base + i, f"{base}:{i}".encode())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t * 1000,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for t in range(4):
            base = t * 1000
            for i in range(200):
                assert big_cloud.get(base + i) == f"{base}:{i}".encode()

    def test_pin_blocks_concurrent_update(self, big_cloud):
        """While one thread pins a cell, another thread's update spins
        until the pin is released — and then succeeds."""
        big_cloud.put(1, b"original")
        pinned = threading.Event()
        release = threading.Event()
        done = threading.Event()

        def pinner():
            with big_cloud.pin(1) as view:
                assert bytes(view) == b"original"
                pinned.set()
                release.wait(timeout=5)

        def updater():
            pinned.wait(timeout=5)
            big_cloud.put(1, b"updated")  # spins on the cell lock
            done.set()

        threads = [threading.Thread(target=pinner),
                   threading.Thread(target=updater)]
        for thread in threads:
            thread.start()
        pinned.wait(timeout=5)
        assert not done.is_set()  # updater is spinning behind the pin
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert done.is_set()
        assert big_cloud.get(1) == b"updated"

    def test_concurrent_cas_increments_never_lose_updates(self, big_cloud):
        """Mini-transaction CAS loops from several threads: the final
        counter equals the number of successful commits."""
        big_cloud.put(7, (0).to_bytes(8, "little"))
        successes = []
        lock = threading.Lock()

        def incrementer():
            done = 0
            while done < 25:
                current = big_cloud.get(7)
                value = int.from_bytes(current, "little")
                try:
                    (MiniTransaction(big_cloud)
                     .compare(7, current)
                     .write(7, (value + 1).to_bytes(8, "little"))
                     .commit())
                    done += 1
                except (TransactionAborted, CellLockedError):
                    continue
            with lock:
                successes.append(done)

        threads = [threading.Thread(target=incrementer) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sum(successes) == 75
        assert int.from_bytes(big_cloud.get(7), "little") == 75
