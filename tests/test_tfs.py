"""Tests for the Trinity File System (repro.tfs)."""

import pytest

from repro.errors import BlockNotFoundError, TfsError
from repro.tfs import TrinityFileSystem


@pytest.fixture
def tfs() -> TrinityFileSystem:
    return TrinityFileSystem(datanodes=4, replication=2, block_size=64)


class TestBasicIO:
    def test_write_read_roundtrip(self, tfs):
        tfs.write("/a", b"hello world")
        assert tfs.read("/a") == b"hello world"

    def test_empty_file(self, tfs):
        tfs.write("/empty", b"")
        assert tfs.read("/empty") == b""

    def test_multi_block_file(self, tfs):
        payload = bytes(range(256)) * 3  # crosses several 64-byte blocks
        tfs.write("/big", payload)
        assert tfs.read("/big") == payload
        assert len(tfs.stat("/big").block_ids) == len(payload) // 64

    def test_overwrite_replaces_atomically(self, tfs):
        tfs.write("/f", b"v1")
        tfs.write("/f", b"version two")
        assert tfs.read("/f") == b"version two"
        assert tfs.stat("/f").version == 2

    def test_overwrite_frees_old_blocks(self, tfs):
        tfs.write("/f", b"x" * 640)
        before = tfs.total_bytes
        tfs.write("/f", b"y" * 64)
        assert tfs.total_bytes < before

    def test_missing_file_raises(self, tfs):
        with pytest.raises(BlockNotFoundError):
            tfs.read("/nope")
        with pytest.raises(BlockNotFoundError):
            tfs.stat("/nope")

    def test_delete(self, tfs):
        tfs.write("/gone", b"data")
        tfs.delete("/gone")
        assert not tfs.exists("/gone")
        with pytest.raises(BlockNotFoundError):
            tfs.read("/gone")

    def test_delete_missing_is_noop(self, tfs):
        tfs.delete("/never-existed")

    def test_list_files_by_prefix(self, tfs):
        tfs.write("/trunks/001", b"a")
        tfs.write("/trunks/002", b"b")
        tfs.write("/other", b"c")
        assert tfs.list_files("/trunks/") == ["/trunks/001", "/trunks/002"]


class TestReplication:
    def test_each_block_replicated(self, tfs):
        tfs.write("/r", b"z" * 200)
        # 4 blocks x 2 replicas
        assert sum(n.block_count for n in tfs.nodes) == 8

    def test_survives_single_datanode_failure(self, tfs):
        tfs.write("/r", b"payload" * 30)
        tfs.nodes[0].fail()
        assert tfs.read("/r") == b"payload" * 30

    def test_read_fails_when_all_replicas_lost(self, tfs):
        tfs.write("/r", b"payload")
        for node in tfs.nodes:
            node.fail()
        with pytest.raises(BlockNotFoundError):
            tfs.read("/r")

    def test_write_fails_without_quorum(self, tfs):
        for node in tfs.nodes[:3]:
            node.fail()
        with pytest.raises(TfsError, match="alive"):
            tfs.write("/w", b"x")

    def test_re_replicate_restores_factor(self, tfs):
        tfs.write("/r", b"block" * 40)
        tfs.nodes[0].fail()
        copies = tfs.re_replicate()
        assert copies > 0
        tfs.nodes[1].fail()  # any single further failure is survivable
        assert tfs.read("/r") == b"block" * 40

    def test_datanode_recover_keeps_blocks(self, tfs):
        tfs.write("/r", b"data" * 20)
        tfs.nodes[0].fail()
        tfs.nodes[0].recover()
        assert tfs.read("/r") == b"data" * 20


class TestValidation:
    def test_replication_bounds(self):
        with pytest.raises(TfsError):
            TrinityFileSystem(datanodes=2, replication=3)
        with pytest.raises(TfsError):
            TrinityFileSystem(datanodes=1, replication=0)

    def test_needs_one_datanode(self):
        with pytest.raises(TfsError):
            TrinityFileSystem(datanodes=0, replication=1)

    def test_block_size_positive(self):
        with pytest.raises(TfsError):
            TrinityFileSystem(datanodes=2, replication=1, block_size=0)

    def test_placement_spreads_over_nodes(self, tfs):
        for i in range(8):
            tfs.write(f"/f{i}", b"x" * 64)
        used = [n.block_count for n in tfs.nodes]
        assert max(used) - min(used) <= 1  # round-robin stays balanced
