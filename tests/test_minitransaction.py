"""Tests for multi-cell atomic primitives (Section 4.4)."""

import pytest

from repro.errors import CellNotFoundError, MemoryCloudError
from repro.memcloud.minitransaction import (
    MiniTransaction,
    TransactionAborted,
    multi_op,
)


@pytest.fixture
def seeded(cloud):
    cloud.put(1, b"one")
    cloud.put(2, b"two")
    cloud.put(3, b"three")
    return cloud


class TestMiniTransaction:
    def test_compare_write_commit(self, seeded):
        tx = MiniTransaction(seeded)
        tx.compare(1, b"one").write(1, b"ONE").write(2, b"TWO")
        tx.commit()
        assert seeded.get(1) == b"ONE"
        assert seeded.get(2) == b"TWO"

    def test_failed_compare_aborts_everything(self, seeded):
        tx = MiniTransaction(seeded)
        tx.compare(1, b"wrong").write(1, b"X").write(2, b"Y")
        with pytest.raises(TransactionAborted):
            tx.commit()
        assert seeded.get(1) == b"one"
        assert seeded.get(2) == b"two"

    def test_read_set_returned(self, seeded):
        tx = MiniTransaction(seeded)
        reads = tx.read(2).read(3).commit()
        assert reads == {2: b"two", 3: b"three"}

    def test_atomic_read_with_compare(self, seeded):
        tx = MiniTransaction(seeded)
        reads = tx.compare(1, b"one").read(2).write(3, b"z").commit()
        assert reads == {2: b"two"}
        assert seeded.get(3) == b"z"

    def test_write_can_create_cells(self, seeded):
        MiniTransaction(seeded).write(99, b"fresh").commit()
        assert seeded.get(99) == b"fresh"

    def test_compare_on_missing_cell_aborts(self, seeded):
        tx = MiniTransaction(seeded).compare(12345, b"x").write(1, b"n")
        with pytest.raises(TransactionAborted, match="missing"):
            tx.commit()
        assert seeded.get(1) == b"one"

    def test_commit_is_single_shot(self, seeded):
        tx = MiniTransaction(seeded).write(1, b"a")
        tx.commit()
        with pytest.raises(MemoryCloudError, match="already"):
            tx.commit()
        with pytest.raises(MemoryCloudError, match="already"):
            tx.write(1, b"b")

    def test_participants_sorted(self, seeded):
        tx = (MiniTransaction(seeded)
              .write(3, b"c").compare(1, b"one").read(2))
        assert tx.participants() == [1, 2, 3]

    def test_read_missing_cell_raises(self, seeded):
        tx = MiniTransaction(seeded).read(5555)
        with pytest.raises(CellNotFoundError):
            tx.commit()

    def test_locks_released_after_abort(self, seeded):
        tx = MiniTransaction(seeded).compare(1, b"bad").write(1, b"x")
        with pytest.raises(TransactionAborted):
            tx.commit()
        # A subsequent transaction on the same cells proceeds.
        MiniTransaction(seeded).compare(1, b"one").write(1, b"ok").commit()
        assert seeded.get(1) == b"ok"

    def test_compare_and_swap_loop(self, seeded):
        """Classic CAS usage: increment a counter cell atomically."""
        seeded.put(10, (0).to_bytes(8, "little"))
        for _ in range(5):
            current = seeded.get(10)
            value = int.from_bytes(current, "little")
            (MiniTransaction(seeded)
             .compare(10, current)
             .write(10, (value + 1).to_bytes(8, "little"))
             .commit())
        assert int.from_bytes(seeded.get(10), "little") == 5


class TestMultiOp:
    def test_then_branch(self, seeded):
        taken = multi_op(
            seeded,
            guards=[(1, b"one"), (2, b"two")],
            then_ops=[(3, b"then")],
            else_ops=[(3, b"else")],
        )
        assert taken
        assert seeded.get(3) == b"then"

    def test_else_branch(self, seeded):
        taken = multi_op(
            seeded,
            guards=[(1, b"nope")],
            then_ops=[(3, b"then")],
            else_ops=[(3, b"else")],
        )
        assert not taken
        assert seeded.get(3) == b"else"

    def test_empty_else_is_noop(self, seeded):
        taken = multi_op(seeded, guards=[(1, b"nope")],
                         then_ops=[(3, b"then")])
        assert not taken
        assert seeded.get(3) == b"three"

    def test_no_guards_always_then(self, seeded):
        assert multi_op(seeded, guards=[], then_ops=[(4, b"new")])
        assert seeded.get(4) == b"new"
