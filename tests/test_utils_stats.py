"""Tests for repro.utils.stats."""


import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import OnlineStats, percentile

FLOATS = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.stddev == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    @given(st.lists(FLOATS, min_size=2, max_size=100))
    def test_matches_batch_formulas(self, values):
        stats = OnlineStats()
        stats.update(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_repr_mentions_count(self):
        stats = OnlineStats()
        stats.add(1.0)
        assert "count=1" in repr(stats)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_element(self):
        assert percentile([7], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(FLOATS, min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_within_data_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)
