"""Tests for the observability layer: metrics, tracing, sinks, report."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    JsonFileSink,
    LineSink,
    MemorySink,
    MetricsRegistry,
    MetricsReport,
    NullSink,
    Tracer,
    get_registry,
    get_tracer,
)


class TestCounter:
    def test_inc(self):
        c = MetricsRegistry().counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = MetricsRegistry().counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_summary_stats(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        assert h.count == 3
        assert h.min == 0.001
        assert h.max == 0.1
        assert h.mean == pytest.approx(0.111 / 3)

    def test_quantile_bucket_resolution(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_bounds_checked(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_bucket(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        h.observe(5.0)
        assert h.snapshot()["overflow"] == 1

    def test_default_buckets_cover_sim_timescales(self):
        assert DEFAULT_BUCKETS[0] <= 1e-6
        assert DEFAULT_BUCKETS[-1] >= 10.0

    def test_summary_shape(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        assert h.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                               "p99": 0.0, "max": 0.0}
        for _ in range(99):
            h.observe(0.5)
        h.observe(50.0)
        s = h.summary()
        assert s["count"] == 100
        assert s["mean"] == pytest.approx((99 * 0.5 + 50.0) / 100)
        assert s["p50"] == 1.0       # bucket-resolution estimates
        assert s["p99"] == 1.0       # 99 of 100 samples sit in bucket one
        assert s["max"] == 50.0

    def test_snapshot_carries_quantiles(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["p50"] == 1.0
        assert snap["p99"] == 1.0
        assert "buckets" in snap  # raw buckets are still exported


class TestRegistry:
    def test_get_or_create_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("trunk.alloc.total", trunk=3)
        b = reg.counter("trunk.alloc.total", trunk=3)
        assert a is b

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("n", trunk=1)
        b = reg.counter("n", trunk=2)
        assert a is not b
        snap = reg.snapshot()
        assert len(snap["n"]["series"]) == 2

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("n", a=1, b=2)
        b = reg.counter("n", b=2, a=1)
        assert a is b

    def test_kinds_do_not_collide(self):
        reg = MetricsRegistry()
        reg.counter("same")
        reg.gauge("same")  # different kind, same name: both live
        assert len(list(reg.collect())) == 2

    def test_reset_in_place_keeps_references(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(9)
        reg.reset()
        assert c.value == 0
        c.inc()  # cached reference still feeds the registry
        assert reg.counter("c").value == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.total", m=0).inc(2)
        reg.histogram("b.seconds").observe(0.5)
        snap = reg.snapshot()
        assert snap["a.total"]["kind"] == "counter"
        assert snap["a.total"]["series"][0] == {
            "labels": {"m": "0"}, "value": 2,
        }
        assert snap["b.seconds"]["series"][0]["count"] == 1

    def test_default_registry_singleton(self):
        assert get_registry() is get_registry()


class TestSinks:
    def test_flush_without_sinks_is_free(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert not reg.has_sinks
        assert reg.flush() == 0

    def test_memory_sink(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.attach_sink(sink)
        reg.counter("x").inc(7)
        assert reg.flush() == 1
        assert sink.latest["x"]["series"][0]["value"] == 7
        reg.detach_sink(sink)
        assert not reg.has_sinks

    def test_json_file_sink(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc(3)
        path = tmp_path / "deep" / "snap.json"
        sink = JsonFileSink(path)
        reg.attach_sink(sink)
        reg.flush()
        data = json.loads(path.read_text())
        assert data["x"]["series"][0]["value"] == 3
        assert sink.exports == 1

    def test_line_sink_appends(self, tmp_path):
        reg = MetricsRegistry()
        path = tmp_path / "journal.jsonl"
        reg.attach_sink(LineSink(path))
        reg.counter("x").inc()
        reg.flush()
        reg.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["x"]["series"][0]["value"] == 1

    def test_null_sink(self):
        reg = MetricsRegistry()
        reg.attach_sink(NullSink())
        assert reg.flush() == 1


class TestTracer:
    def make_tracer(self):
        clock = {"now": 0.0}
        reg = MetricsRegistry()
        tracer = Tracer(clock=lambda: clock["now"], registry=reg)
        return tracer, clock, reg

    def test_span_duration_from_clock(self):
        tracer, clock, _ = self.make_tracer()
        with tracer.span("op") as span:
            clock["now"] += 2.5
        assert span.duration == 2.5

    def test_span_feeds_histogram(self):
        tracer, clock, reg = self.make_tracer()
        with tracer.span("op"):
            clock["now"] += 0.25
        h = reg.histogram("span.op.seconds")
        assert h.count == 1
        assert h.total == 0.25

    def test_nested_spans_record_parent(self):
        tracer, clock, _ = self.make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                clock["now"] += 1.0
        assert inner.parent is outer
        assert outer.parent is None

    def test_span_attrs(self):
        tracer, _, _ = self.make_tracer()
        with tracer.span("op", superstep=3) as span:
            span.set(messages=11)
        assert span.attrs == {"superstep": 3, "messages": 11}

    def test_spans_filter_and_ring_buffer(self):
        clock = {"now": 0.0}
        tracer = Tracer(clock=lambda: clock["now"],
                        registry=MetricsRegistry(), max_spans=3)
        for i in range(5):
            with tracer.span("a" if i % 2 else "b"):
                clock["now"] += 1.0
        assert len(tracer.spans()) == 3  # oldest rotated out
        assert all(s.name == "a" for s in tracer.spans("a"))
        tracer.clear()
        assert tracer.spans() == []

    def test_unfinished_span_duration_raises(self):
        tracer, _, _ = self.make_tracer()
        with tracer.span("op") as span:
            with pytest.raises(RuntimeError):
                _ = span.duration

    def test_default_tracer_wall_clock(self):
        tracer = get_tracer()
        with tracer.span("wall") as span:
            pass
        assert span.duration >= 0.0


class TestReport:
    def make_report(self):
        reg = MetricsRegistry()
        reg.counter("trunk.alloc.total", trunk=0).inc(5)
        reg.counter("trunk.alloc.total", trunk=1)  # never incremented
        reg.gauge("bsp.queue.depth").set(4)
        reg.histogram("net.round.elapsed.seconds").observe(0.001)
        return MetricsReport.from_registry(reg)

    def test_filter_by_prefix(self):
        report = self.make_report().filter("trunk.")
        assert list(report.snapshot) == ["trunk.alloc.total"]

    def test_nonzero_drops_idle_series(self):
        report = self.make_report().nonzero()
        assert len(report.snapshot["trunk.alloc.total"]["series"]) == 1

    def test_render_mentions_every_metric(self):
        text = self.make_report().render()
        for name in ("trunk.alloc.total", "bsp.queue.depth",
                     "net.round.elapsed.seconds"):
            assert name in text
        assert "count=1" in text  # histogram summary line

    def test_render_caps_series(self):
        reg = MetricsRegistry()
        for i in range(20):
            reg.counter("many", i=i).inc()
        text = MetricsReport.from_registry(reg).render(
            max_series_per_metric=4
        )
        assert "... 16 more series" in text

    def test_empty_report_renders_placeholder(self):
        assert MetricsReport({}).render() == "(no metrics recorded)"

    def test_series_count(self):
        assert self.make_report().series_count == 4
