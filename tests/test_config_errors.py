"""Tests for configuration validation and the exception hierarchy."""

import pytest

from repro import errors
from repro.config import (
    ClusterConfig,
    ComputeParams,
    ConfigError,
    MemoryParams,
    NetworkParams,
)


class TestClusterConfig:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.machines == 8
        assert config.trunk_count == 2 ** config.trunk_bits

    def test_trunks_must_exceed_machines(self):
        with pytest.raises(ConfigError, match="must exceed"):
            ClusterConfig(machines=8, trunk_bits=3)

    @pytest.mark.parametrize("kwargs", [
        dict(machines=0),
        dict(trunk_bits=0),
        dict(trunk_bits=30),
        dict(proxies=-1),
        dict(replication=0),
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)

    def test_frozen(self):
        config = ClusterConfig()
        with pytest.raises(Exception):
            config.machines = 99


class TestMemoryParams:
    @pytest.mark.parametrize("kwargs", [
        dict(trunk_size=0),
        dict(trunk_size=5000, page_size=4096),   # not page-aligned
        dict(page_size=0),
        dict(defrag_trigger_ratio=0.0),
        dict(defrag_trigger_ratio=1.5),
        dict(reservation_factor=0.5),
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MemoryParams(**kwargs)

    def test_defaults_valid(self):
        params = MemoryParams()
        assert params.trunk_size % params.page_size == 0


class TestNetworkParams:
    def test_transfer_time_monotone_in_size(self):
        params = NetworkParams()
        assert params.transfer_time(10**6) > params.transfer_time(10**3)

    def test_components_sum_to_total(self):
        params = NetworkParams()
        for size, messages in ((100, 1), (10**6, 500), (0, 1)):
            latency, serial = params.transfer_components(size, messages)
            assert latency + serial == pytest.approx(
                params.transfer_time(size, messages)
            )

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            NetworkParams().transfer_time(-5)


class TestComputeParams:
    def test_defaults(self):
        params = ComputeParams()
        assert params.threads_per_machine == 24  # 2 CPUs x 12 threads


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc_class", [
        errors.ConfigError, errors.MemoryCloudError,
        errors.CellNotFoundError, errors.TrunkFullError,
        errors.CellLockedError, errors.AddressingError,
        errors.TslError, errors.TslSyntaxError, errors.TslTypeError,
        errors.SchemaMismatchError, errors.NetworkError,
        errors.ProtocolError, errors.MachineDownError,
        errors.ClusterError, errors.LeaderElectionError,
        errors.RecoveryError, errors.TfsError, errors.BlockNotFoundError,
        errors.ComputeError, errors.SuperstepError, errors.QueryError,
    ])
    def test_all_derive_from_trinity_error(self, exc_class):
        if exc_class is errors.CellNotFoundError:
            instance = exc_class(1)
        elif exc_class is errors.MachineDownError:
            instance = exc_class(1)
        elif exc_class is errors.BlockNotFoundError:
            instance = exc_class("x")
        else:
            instance = exc_class("boom")
        assert isinstance(instance, errors.TrinityError)

    def test_cell_not_found_is_key_error(self):
        exc = errors.CellNotFoundError(0xAB)
        assert isinstance(exc, KeyError)
        assert "0xab" in str(exc)

    def test_machine_down_carries_id(self):
        exc = errors.MachineDownError(7)
        assert exc.machine_id == 7
        assert "7" in str(exc)

    def test_tsl_syntax_error_position(self):
        exc = errors.TslSyntaxError("bad", line=3, column=9)
        assert "line 3" in str(exc)
        plain = errors.TslSyntaxError("bad")
        assert str(plain) == "bad"

    def test_block_not_found_readable(self):
        assert "'/a'" in str(errors.BlockNotFoundError("/a"))
