"""Equivalence of the vectorized BSP fast path with the per-vertex
reference path.

The contract under test (the whole point of the combiner/batch-kernel
design): for every shipped program, both paths produce **bit-identical**
values, the same superstep count, and the same simulated-time/traffic
accounting — every field of every ``SuperstepReport``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import BfsProgram
from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.sssp import SsspProgram
from repro.algorithms.wcc import WccProgram
from repro.compute import BspEngine, VertexProgram
from repro.errors import ComputeError
from repro.generators import rmat_edges
from repro.generators.erdos_renyi import erdos_renyi_edges
from repro.graph import CsrTopology
from repro.net.simnet import SimNetwork
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def er_topology() -> CsrTopology:
    """An Erdős–Rényi graph (no hubs — exercises the non-hub traffic
    path) over 4 machines, built without a memory cloud."""
    edges = erdos_renyi_edges(500, avg_degree=6.0, directed=True, seed=11)
    return CsrTopology.from_arrays(edges, machines=4, num_nodes=500)


def _run_both(topology, make_program, max_supersteps=80):
    """Run the same program on both paths with isolated networks."""
    results = {}
    for vectorize in (True, False):
        engine = BspEngine(
            topology,
            network=SimNetwork(registry=MetricsRegistry()),
            vectorize=vectorize,
        )
        results[vectorize] = engine.run(make_program(),
                                        max_supersteps=max_supersteps)
    return results[True], results[False]


def _assert_equivalent(fast, reference):
    fast_values = np.asarray(fast.values)
    reference_values = np.asarray(reference.values,
                                  dtype=fast_values.dtype)
    # Bit-identical, not approximately equal.
    assert np.array_equal(reference_values, fast_values)
    assert fast.superstep_count == reference.superstep_count
    for fast_step, ref_step in zip(fast.supersteps, reference.supersteps):
        assert fast_step == ref_step  # every field, elapsed included
    assert fast.aggregators == reference.aggregators


PROGRAMS = {
    "pagerank": lambda: PageRankProgram(iterations=10),
    "bfs": lambda: BfsProgram(root=0),
    "sssp_unit": lambda: SsspProgram(root=0),
    "wcc": lambda: WccProgram(),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_rmat_equivalence(rmat_topology, name):
    fast, reference = _run_both(rmat_topology, PROGRAMS[name])
    _assert_equivalent(fast, reference)
    assert fast.superstep_count > 1


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_erdos_renyi_equivalence(er_topology, name):
    fast, reference = _run_both(er_topology, PROGRAMS[name])
    _assert_equivalent(fast, reference)


def test_weighted_sssp_equivalence(rmat_topology):
    rng = np.random.default_rng(17)
    weights = rng.uniform(0.5, 2.0,
                          size=len(rmat_topology.out_indices))
    fast, reference = _run_both(
        rmat_topology, lambda: SsspProgram(root=3, edge_weights=weights)
    )
    _assert_equivalent(fast, reference)


def test_dict_weight_sssp_vetoes_batch_but_still_vectorizes(er_topology):
    """A (src, dst) weights dict can't be gathered vectorially: the
    instance falls back to per-vertex compute over the combined inbox,
    which must still match the reference path exactly."""
    weights = {(0, int(d)): 3.0 for d in er_topology.out_neighbors(0)}
    assert not SsspProgram(root=0, weights=weights).batch_eligible
    fast, reference = _run_both(
        er_topology, lambda: SsspProgram(root=0, weights=weights)
    )
    _assert_equivalent(fast, reference)


def test_pagerank_dangling_aggregator_matches(er_topology):
    """Dangling mass flows through the aggregator identically (the batch
    kernel folds it sequentially in vertex order on purpose)."""
    assert (er_topology.out_degrees() == 0).any()
    fast, reference = _run_both(er_topology,
                                lambda: PageRankProgram(iterations=6))
    _assert_equivalent(fast, reference)
    assert np.isclose(np.asarray(fast.values).sum(), 1.0)


def test_cross_check_accepts_consistent_program(er_topology):
    engine = BspEngine(er_topology,
                       network=SimNetwork(registry=MetricsRegistry()),
                       cross_check=True)
    result = engine.run(PageRankProgram(iterations=4))
    assert result.superstep_count == 5


def test_cross_check_rejects_divergent_kernel(er_topology):
    class Broken(PageRankProgram):
        def compute_batch(self, ctx, vertices, combined, received):
            super().compute_batch(ctx, vertices, combined, received)
            ctx.values[vertices[0]] += 1e-9  # diverge slightly

    engine = BspEngine(er_topology,
                       network=SimNetwork(registry=MetricsRegistry()),
                       cross_check=True)
    with pytest.raises(ComputeError, match="cross-check"):
        engine.run(Broken(iterations=2))


def test_unknown_combiner_rejected(er_topology):
    class Bad(VertexProgram):
        combiner = "mean"

        def compute(self, ctx, vertex, messages):
            ctx.vote_to_halt()

    engine = BspEngine(er_topology,
                       network=SimNetwork(registry=MetricsRegistry()))
    with pytest.raises(ComputeError, match="combiner"):
        engine.run(Bad())


def test_no_combiner_program_keeps_list_values(er_topology):
    """Programs without a combiner stay on the reference path and keep
    plain-list values (the checkpoint layer JSON-serialises them)."""

    class Keep(VertexProgram):
        def init(self, ctx, vertex):
            ctx.set_value(vertex, vertex * 2)

        def compute(self, ctx, vertex, messages):
            ctx.vote_to_halt()

    engine = BspEngine(er_topology,
                       network=SimNetwork(registry=MetricsRegistry()))
    result = engine.run(Keep())
    assert isinstance(result.values, list)
    assert result.values[5] == 10


def test_vectorized_path_observes_wall_clock(er_topology):
    registry = MetricsRegistry()
    engine = BspEngine(er_topology,
                       network=SimNetwork(registry=registry))
    result = engine.run(BfsProgram(root=0))
    wall = registry.histogram("bsp.superstep.wall_seconds")
    assert wall.count == result.superstep_count
    assert wall.total > 0.0


def test_from_arrays_matches_manual_adjacency():
    edges = np.array([[0, 1], [0, 2], [2, 0], [3, 1], [1, 1]],
                     dtype=np.int64)
    topo = CsrTopology.from_arrays(edges, machines=2, num_nodes=5)
    assert topo.n == 5
    assert topo.num_edges == 5
    assert sorted(topo.out_neighbors(0).tolist()) == [1, 2]
    assert topo.out_neighbors(4).tolist() == []
    assert topo.machine.tolist() == [0, 1, 0, 1, 0]
    assert topo.machine_count == 2


def test_from_arrays_agrees_with_cloud_built_topology(rmat_topology):
    """The synthetic constructor must produce the same vertex-program
    results as a cloud-built topology of the same edge set would — the
    perf harness depends on it standing in for the real thing."""
    edges = rmat_edges(scale=8, avg_degree=6, seed=5)
    topo = CsrTopology.from_arrays(edges, machines=4)
    fast, reference = _run_both(topo, lambda: WccProgram())
    _assert_equivalent(fast, reference)
