"""Tests for the BSP vertex engine."""

import pytest

from repro.compute import BspEngine, VertexProgram
from repro.errors import ComputeError


class CountdownProgram(VertexProgram):
    """Every vertex decrements its value until zero, then halts."""

    restrictive = True

    def init(self, ctx, vertex):
        ctx.set_value(vertex, 3)

    def compute(self, ctx, vertex, messages):
        if ctx.value > 0:
            ctx.value = ctx.value - 1
        else:
            ctx.vote_to_halt()


class NeighborSumProgram(VertexProgram):
    """Superstep 0: send own id to neighbors; 1: sum what arrived."""

    restrictive = True
    uniform_messages = True

    def compute(self, ctx, vertex, messages):
        if ctx.superstep == 0:
            ctx.set_value(vertex, 0)
            ctx.send_to_neighbors(vertex)
        else:
            ctx.set_value(vertex, ctx.value + sum(messages))
            ctx.vote_to_halt()


class GeneralSendProgram(VertexProgram):
    """General model: everyone messages vertex 0."""

    restrictive = False

    def compute(self, ctx, vertex, messages):
        if ctx.superstep == 0:
            ctx.send(0, 1)
            ctx.set_value(vertex, 0)
        elif vertex == 0:
            ctx.set_value(vertex, sum(messages))
        ctx.vote_to_halt()


class AggregatorProgram(VertexProgram):
    def compute(self, ctx, vertex, messages):
        if ctx.superstep == 0:
            ctx.aggregate("total", 1.0)
        else:
            ctx.set_value(vertex, ctx.aggregated("total"))
        if ctx.superstep >= 1:
            ctx.vote_to_halt()


class TestEngineBasics:
    def test_halts_when_quiet(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(CountdownProgram(), max_supersteps=50)
        # 3 decrements + 1 all-halt superstep.
        assert result.superstep_count <= 5
        assert all(v == 0 for v in result.values)

    def test_max_supersteps_cap(self, rmat_topology):
        engine = BspEngine(rmat_topology)

        class Forever(VertexProgram):
            def compute(self, ctx, vertex, messages):
                ctx.set_value(vertex, ctx.superstep)

        result = engine.run(Forever(), max_supersteps=3)
        assert result.superstep_count == 3

    def test_neighbor_messages_delivered(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(NeighborSumProgram(), max_supersteps=5)
        topo = rmat_topology
        # Check a few vertices against a direct in-neighbor sum.
        for vertex in range(0, topo.n, 97):
            expected = int(topo.in_neighbors(vertex).sum())
            assert result.values[vertex] == expected

    def test_general_model_any_target(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(GeneralSendProgram(), max_supersteps=5)
        assert result.values[0] == rmat_topology.n

    def test_restrictive_violation_detected(self, rmat_topology):
        engine = BspEngine(rmat_topology, validate_restrictive=True)

        class Cheater(VertexProgram):
            restrictive = True

            def compute(self, ctx, vertex, messages):
                if ctx.superstep == 0 and vertex == 1:
                    ctx.send((vertex + 101) % ctx.num_vertices, 1)
                ctx.vote_to_halt()

        # Vertex 1 messaging an arbitrary far vertex: almost surely not a
        # neighbor in the fixture graph.
        far = (1 + 101) % rmat_topology.n
        if far in set(rmat_topology.out_neighbors(1).tolist()):
            pytest.skip("fixture graph happens to contain the edge")
        with pytest.raises(ComputeError, match="non-neighbor"):
            engine.run(Cheater(), max_supersteps=2)

    def test_aggregators_visible_next_superstep(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(AggregatorProgram(), max_supersteps=4)
        assert result.values[0] == rmat_topology.n

    def test_initial_values(self, rmat_topology):
        engine = BspEngine(rmat_topology)

        class Keep(VertexProgram):
            def compute(self, ctx, vertex, messages):
                ctx.vote_to_halt()

        seed = list(range(rmat_topology.n))
        result = engine.run(Keep(), initial_values=seed, max_supersteps=2)
        assert result.values == seed

    def test_initial_values_length_checked(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        with pytest.raises(ComputeError):
            engine.run(CountdownProgram(), initial_values=[1, 2, 3])

    def test_bad_max_supersteps(self, rmat_topology):
        with pytest.raises(ComputeError):
            BspEngine(rmat_topology).run(CountdownProgram(), max_supersteps=0)

    def test_on_superstep_callback(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        seen = []
        engine.run(
            CountdownProgram(), max_supersteps=10,
            on_superstep=lambda step, values: seen.append(step),
        )
        assert seen == list(range(len(seen)))
        assert seen  # ran at least once


class TestAccounting:
    def test_superstep_reports_present(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(NeighborSumProgram(), max_supersteps=5)
        assert result.supersteps
        first = result.supersteps[0]
        assert first.elapsed > 0
        assert first.messages == rmat_topology.num_edges
        assert first.active_vertices == rmat_topology.n
        assert result.elapsed == pytest.approx(
            sum(r.elapsed for r in result.supersteps)
        )

    def test_hub_buffering_reduces_wire_messages(self, rmat_topology):
        buffered = BspEngine(rmat_topology, hub_buffering=True,
                             hub_fraction=0.02)
        plain = BspEngine(rmat_topology, hub_buffering=False)
        res_buffered = buffered.run(NeighborSumProgram(), max_supersteps=5)
        res_plain = plain.run(NeighborSumProgram(), max_supersteps=5)
        # Same results...
        assert res_buffered.values == res_plain.values
        # ...but fewer charged wire transfers on the scale-free graph.
        assert (res_buffered.supersteps[0].remote_transfers
                < res_plain.supersteps[0].remote_transfers)

    def test_hub_buffering_requires_uniform_messages(self, rmat_topology):
        engine = BspEngine(rmat_topology, hub_buffering=True)

        class NonUniform(NeighborSumProgram):
            uniform_messages = False

        res_uniform = engine.run(NeighborSumProgram(), max_supersteps=5)
        res_nonuniform = engine.run(NonUniform(), max_supersteps=5)
        assert (res_uniform.supersteps[0].remote_transfers
                <= res_nonuniform.supersteps[0].remote_transfers)

    def test_value_by_node_mapping(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(CountdownProgram(), max_supersteps=10)
        by_node = result.value_by_node(rmat_topology)
        assert len(by_node) == rmat_topology.n
        assert set(by_node.values()) == {0}
