"""Tests for the memory-residence model and Safra termination detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compute import MemoryResidenceModel, SafraDetector
from repro.compute.residence import plan_residence
from repro.errors import ComputeError


class TestResidenceFormulas:
    def test_online_formula(self):
        model = MemoryResidenceModel(k=8, l=8, m=8)
        # S = V(16+k+l+m) + 8E
        assert model.online_bytes(100, 1000) == 100 * 40 + 8 * 1000

    def test_offline_formula(self):
        model = MemoryResidenceModel(k=8, l=8, m=8)
        vertices, edges, p = 1000, 13000, 0.1
        full = model.online_bytes(vertices, edges)
        expected = p * full + (1 - p) * vertices * 24
        assert model.offline_bytes(vertices, edges, p) == pytest.approx(expected)

    def test_savings_formula(self):
        model = MemoryResidenceModel(k=8, l=8, m=8)
        vertices, edges, p = 1000, 13000, 0.1
        expected = (1 - p) * 16 * vertices + (1 - p) * 8 * edges
        assert model.saved_bytes(vertices, edges, p) == pytest.approx(expected)

    def test_paper_headline_78gb(self):
        """The paper: k = l = m = 8, p = 0.1, Facebook graph -> 78 GB saved.

        Facebook scale per Section 5.1: 8e8 nodes, 1.04e10 edges (degree
        13 counted once per directed adjacency entry)."""
        model = MemoryResidenceModel(k=8, l=8, m=8)
        vertices = 800_000_000
        edges = vertices * 13
        saved = model.saved_bytes(vertices, edges, 0.1)
        assert saved == pytest.approx(78e9, rel=0.18)

    @given(st.integers(1, 10**6), st.integers(0, 10**7),
           st.floats(0, 1))
    def test_identity_saved_equals_difference(self, vertices, edges, p):
        model = MemoryResidenceModel()
        direct = (model.online_bytes(vertices, edges)
                  - model.offline_bytes(vertices, edges, p))
        assert model.saved_bytes(vertices, edges, p) == pytest.approx(
            direct, rel=1e-9, abs=1e-3
        )

    def test_fraction_validated(self):
        model = MemoryResidenceModel()
        with pytest.raises(ComputeError):
            model.offline_bytes(10, 10, 1.5)


class TestResidencePlan:
    def test_split_covers_machine(self, rmat_topology):
        local = rmat_topology.nodes_of_machine(0)
        scheduled = local[: len(local) // 4]
        plan = plan_residence(rmat_topology, 0, scheduled)
        assert len(plan.type_a) + len(plan.type_b) == len(local)
        assert set(plan.type_a.tolist()) == set(int(v) for v in scheduled)

    def test_type_b_cheaper_per_vertex(self, rmat_topology):
        local = rmat_topology.nodes_of_machine(0)
        plan = plan_residence(rmat_topology, 0, local[:5])
        if len(plan.type_a) and len(plan.type_b):
            per_a = plan.type_a_bytes / len(plan.type_a)
            per_b = plan.type_b_bytes / len(plan.type_b)
            assert per_b < per_a

    def test_fraction(self, rmat_topology):
        local = rmat_topology.nodes_of_machine(0)
        plan = plan_residence(rmat_topology, 0, local[: len(local) // 10])
        assert 0.0 < plan.type_a_fraction < 0.2


class TestSafra:
    def test_immediate_termination_when_quiet(self):
        detector = SafraDetector(4)
        assert detector.probe()

    def test_active_machine_blocks_probe(self):
        detector = SafraDetector(4)
        detector.set_active(2, True)
        assert not detector.probe()
        detector.set_active(2, False)
        assert detector.probe()

    def test_in_flight_message_blocks_probe(self):
        detector = SafraDetector(4)
        detector.record_send(0)
        # Receiver is activated by the message; even after it goes
        # passive, the un-received message keeps counters non-zero.
        assert detector.in_flight == 1
        assert not detector.probe()
        detector.record_receive(3)
        detector.set_active(3, False)
        # First probe whitens the blackened machine but must NOT declare
        # termination (the black colour vetoes it).
        first = detector.probe()
        assert not first
        # Quiet system, second probe succeeds.
        assert detector.probe()

    def test_counters_balance(self):
        detector = SafraDetector(3)
        for _ in range(5):
            detector.record_send(0)
            detector.record_receive(1)
        for machine in range(3):
            detector.set_active(machine, False)
        assert detector.in_flight == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    max_size=40))
    def test_never_terminates_with_messages_in_flight(self, sends):
        """Safety invariant: an undelivered message always vetoes
        termination, no matter the interleaving of probes."""
        detector = SafraDetector(4)
        delivered = []
        for src, dst in sends:
            detector.record_send(src)
            # Deliver only half the messages.
            if len(delivered) % 2 == 0:
                detector.record_receive(dst)
                detector.set_active(dst, False)
            delivered.append((src, dst))
            if detector.in_flight > 0:
                assert not detector.probe()

    def test_needs_machines(self):
        with pytest.raises(ComputeError):
            SafraDetector(0)

    def test_probe_counter(self):
        detector = SafraDetector(2)
        detector.probe()
        detector.probe()
        assert detector.probes == 2
