"""Tests for the background layout re-encoder (graph/reencode.py).

The invariants under test: a migration goes through the trunk's normal
mutation path (epoch bump → span invalidation → cache invalidation), so
concurrent serving can observe a ``StaleSpanError`` and retry but never
a stale or wrong answer; migrations are CAS-guarded so a racing writer
wins; and layout tags survive both checkpoint image formats.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.errors import StaleSpanError
from repro.graph import Graph, GraphBuilder, LayoutReencoder, plain_graph_schema
from repro.memcloud import MemoryCloud
from repro.memcloud.persistence import adopt_trunk_image, trunk_to_bytes
from repro.tsl import LAYOUT_DELTA_VARINT, LAYOUT_RAW
from repro.tsl.layout import DEFAULT_LAYOUT_POLICY, RAW_ONLY_POLICY


def build_graph(policy="raw", storage="resident", nodes=60, seed=7):
    """A directed graph with enough clustered fan-out that the adaptive
    policy wants codecs for most cells."""
    rng = np.random.default_rng(seed)
    cloud = MemoryCloud(ClusterConfig(machines=2, memory=MemoryParams(
        storage=storage, layout_policy=policy)))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    for src in range(nodes):
        degree = int(rng.integers(16, 48))
        for dst in rng.integers(0, 10 ** 5, degree):
            builder.add_edge(src, int(dst))
    return builder.finalize(cross_check=True)


def out_tag(graph, uid):
    node_type = graph.graph_schema.node_type
    blob = graph.cloud.get(uid)
    offset = node_type.field_offset(blob, "Outlinks")
    return node_type.field_type("Outlinks").stored_layout(blob, offset)


def snapshot(graph):
    node_ids = sorted(graph.node_ids)
    indptr, flat = graph.outlinks_batch(node_ids, cross_check=True)
    return node_ids, indptr.tolist(), flat.tolist()


class TestMigration:
    def test_migrates_raw_graph_to_adaptive(self):
        graph = build_graph(policy="raw")
        before = snapshot(graph)
        epoch_before = graph.cloud.mutation_epoch()
        report = LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY).run_pass()
        assert report.migrated > 0
        assert report.bytes_saved > 0
        assert all(src == LAYOUT_RAW for src, _ in report.retagged)
        assert graph.cloud.mutation_epoch() > epoch_before
        assert snapshot(graph) == before  # bit-identical answers

    def test_second_pass_is_idempotent(self):
        graph = build_graph(policy="raw")
        reencoder = LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY)
        assert reencoder.run_pass().migrated > 0
        again = reencoder.run_pass()
        assert again.migrated == 0 and again.candidates == 0

    def test_rollback_to_raw(self):
        graph = build_graph(policy="adaptive")
        assert any(out_tag(graph, uid) != LAYOUT_RAW
                   for uid in graph.node_ids)
        before = snapshot(graph)
        report = LayoutReencoder(graph, policy=RAW_ONLY_POLICY).run_pass()
        assert report.migrated > 0
        assert report.bytes_saved < 0  # rolling back costs bytes
        assert all(out_tag(graph, uid) == LAYOUT_RAW
                   for uid in graph.node_ids)
        assert snapshot(graph) == before

    def test_accessor_drift_gets_repaired(self):
        """A cell that grows past the policy threshold via add_edge keeps
        its raw layout (the accessor never re-runs the policy) until the
        re-encoder migrates it."""
        cloud = MemoryCloud(ClusterConfig(
            machines=1, memory=MemoryParams(layout_policy="adaptive")))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edge(1, 2)
        graph = builder.finalize()
        assert out_tag(graph, 1) == LAYOUT_RAW
        rng = np.random.default_rng(3)
        for dst in rng.integers(0, 10 ** 5, 64):
            graph.add_edge(1, int(dst))
        assert out_tag(graph, 1) == LAYOUT_RAW  # drift: still raw
        report = LayoutReencoder(graph).run_pass()
        assert report.migrated >= 1
        assert out_tag(graph, 1) == LAYOUT_DELTA_VARINT
        assert graph.outlinks(1)[0] == 2
        assert len(graph.outlinks(1)) == 65

    def test_metrics_counters_advance(self):
        graph = build_graph(policy="raw")
        obs = graph.cloud.obs
        LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY).run_pass()
        totals = {}
        for trunk_id in graph.cloud.trunks:
            for name in ("trunk.layout.migrated", "trunk.layout.skipped",
                         "trunk.layout.bytes_before",
                         "trunk.layout.bytes_after"):
                value = obs.counter(name, trunk=trunk_id).value
                totals[name] = totals.get(name, 0) + value
        assert totals["trunk.layout.migrated"] > 0
        assert totals["trunk.layout.bytes_before"] > \
            totals["trunk.layout.bytes_after"]


class TestCasGuards:
    def test_cas_skips_on_concurrent_write(self):
        graph = build_graph(policy="raw", nodes=10)
        cloud = graph.cloud
        uid = sorted(graph.node_ids)[0]
        expected = cloud.get(uid)
        # Another writer lands between the re-encoder's read and its CAS.
        cloud.put(uid, expected)  # same bytes object, new epoch — applies
        assert cloud.reencode_cell(uid, expected, expected)
        cloud.put(uid, expected + b"")
        assert not cloud.reencode_cell(uid, b"different", expected)

    def test_cas_skips_missing_cell(self):
        graph = build_graph(policy="raw", nodes=10)
        assert not graph.cloud.reencode_cell(2 ** 50, b"x", b"y")

    def test_skip_leaves_cell_for_next_pass(self):
        graph = build_graph(policy="raw", nodes=10)
        reencoder = LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY)
        uid = reencoder.scan()[0]
        expected = graph.cloud.get(uid)
        # Mutate after the scan: this uid's CAS must skip, not clobber.
        graph.add_edge(uid, 99999)
        report = reencoder.migrate(uid)
        assert report.migrated + report.skipped == report.candidates
        # Next pass sees the post-mutation bytes and succeeds.
        report = reencoder.migrate(uid)
        if report.candidates:
            assert report.migrated == 1
        assert 99999 in graph.outlinks(uid)


class TestSpanInvalidation:
    @pytest.mark.parametrize("storage", ["resident", "paged"])
    def test_outstanding_spans_go_stale(self, storage):
        graph = build_graph(policy="raw", storage=storage, nodes=30)
        cloud = graph.cloud
        uids = np.asarray(sorted(graph.node_ids), dtype=np.int64)
        groups = cloud.bulk_get_spans(uids)
        for group in groups:
            group.assert_fresh()  # nothing migrated yet
        report = LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY).run_pass()
        assert report.migrated > 0
        with pytest.raises(StaleSpanError):
            for group in groups:
                group.assert_fresh()
        for group in groups:
            group.close()
        # A re-fetch observes the migrated layout and decodes cleanly.
        snapshot(graph)


class TestConcurrentServe:
    def test_daemon_migrates_under_query_traffic(self):
        """The daemon migrates cells while queries run with cross_check
        on: every answer is either correct or a StaleSpanError retry —
        never silently wrong."""
        graph = build_graph(policy="raw", nodes=80, seed=19)
        expected = {uid: graph.outlinks(uid) for uid in graph.node_ids}
        node_ids = sorted(expected)
        reencoder = LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY)
        errors = []
        stale_retries = 0

        reencoder.start(interval=0.0)
        try:
            for round_no in range(30):
                batch = node_ids[(round_no * 7) % len(node_ids):][:16] \
                    or node_ids[:16]
                for _ in range(50):  # bounded retry on stale spans
                    try:
                        indptr, flat = graph.outlinks_batch(
                            batch, cross_check=True)
                        break
                    except StaleSpanError:
                        stale_retries += 1
                else:
                    errors.append(f"round {round_no}: spans never settled")
                    continue
                bounds = indptr.tolist()
                values = flat.tolist()
                for i, uid in enumerate(batch):
                    if values[bounds[i]:bounds[i + 1]] != expected[uid]:
                        errors.append(f"node {uid}: wrong answer")
        finally:
            report = reencoder.stop()

        assert not errors, errors
        assert report.migrated > 0
        # The migrated graph serves the same answers as before.
        assert {uid: graph.outlinks(uid) for uid in graph.node_ids} == expected

    def test_daemon_start_stop_lifecycle(self):
        graph = build_graph(policy="raw", nodes=10)
        reencoder = LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY)
        reencoder.start(interval=0.01)
        with pytest.raises(RuntimeError):
            reencoder.start()
        report = reencoder.stop()
        assert report.migrated > 0
        # stop() after stop() returns the same accumulated report.
        assert reencoder.stop().migrated == report.migrated


class TestCheckpointRoundTrip:
    def _tags(self, graph):
        return {uid: out_tag(graph, uid) for uid in graph.node_ids}

    @pytest.mark.parametrize("storage,page_image", [
        ("resident", False),   # v1 cell image
        ("paged", True),       # v2 page image
    ])
    def test_layout_tags_survive_checkpoint(self, storage, page_image):
        graph = build_graph(policy="adaptive", storage=storage, nodes=40)
        tags_before = self._tags(graph)
        assert set(tags_before.values()) != {LAYOUT_RAW}
        before = snapshot(graph)
        images = {trunk_id: trunk_to_bytes(trunk, page_image=page_image)
                  for trunk_id, trunk in graph.cloud.trunks.items()}
        for trunk_id, image in images.items():
            adopt_trunk_image(graph.cloud, trunk_id, image)
        assert self._tags(graph) == tags_before
        assert snapshot(graph) == before

    def test_v1_restore_into_raw_policy_cloud_keeps_tags(self):
        """Layout tags live inside the cell bytes: restoring onto a
        cloud configured with a different policy must not rewrite them
        (the policy only governs *new* encodes)."""
        source = build_graph(policy="adaptive", nodes=30)
        tags_before = self._tags(source)
        before = snapshot(source)
        images = {trunk_id: trunk_to_bytes(trunk, page_image=False)
                  for trunk_id, trunk in source.cloud.trunks.items()}
        target_cloud = MemoryCloud(ClusterConfig(
            machines=2, memory=MemoryParams(layout_policy="raw")))
        for trunk_id, image in images.items():
            adopt_trunk_image(target_cloud, trunk_id, image)
        target = Graph(target_cloud, plain_graph_schema(directed=True),
                       node_ids=sorted(source.node_ids))
        assert self._tags(target) == tags_before
        assert snapshot(target) == before

    def test_migrated_graph_checkpoints_cleanly(self):
        graph = build_graph(policy="raw", nodes=30)
        LayoutReencoder(graph, policy=DEFAULT_LAYOUT_POLICY).run_pass()
        tags_before = self._tags(graph)
        before = snapshot(graph)
        images = {trunk_id: trunk_to_bytes(trunk, page_image=False)
                  for trunk_id, trunk in graph.cloud.trunks.items()}
        for trunk_id, image in images.items():
            adopt_trunk_image(graph.cloud, trunk_id, image)
        assert self._tags(graph) == tags_before
        assert snapshot(graph) == before
