"""Tests for the MemoryCloud facade and trunk persistence."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, MemoryParams
from repro.errors import CellNotFoundError, MemoryCloudError
from repro.memcloud import MemoryCloud
from repro.memcloud import persistence
from repro.tfs import TrinityFileSystem


class TestKeyValue:
    def test_put_get_remove(self, cloud):
        cloud.put(10, b"ten")
        assert cloud.get(10) == b"ten"
        assert 10 in cloud
        cloud.remove(10)
        assert 10 not in cloud

    def test_get_missing(self, cloud):
        with pytest.raises(CellNotFoundError):
            cloud.get(123456)

    def test_len_counts_all_trunks(self, cloud):
        for uid in range(100):
            cloud.put(uid, b"x")
        assert len(cloud) == 100

    def test_size_of(self, cloud):
        cloud.put(1, b"12345")
        assert cloud.size_of(1) == 5

    def test_pin_yields_payload_view(self, cloud):
        cloud.put(1, b"pinme")
        with cloud.pin(1) as view:
            assert bytes(view) == b"pinme"

    def test_pin_releases_lock_on_exit(self, cloud):
        cloud.put(1, b"v")
        with cloud.pin(1):
            pass
        cloud.put(1, b"v2")  # would deadlock if the pin leaked its lock
        assert cloud.get(1) == b"v2"

    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(st.integers(0, 2**63), st.binary(max_size=128),
                           max_size=60))
    def test_matches_dict_semantics(self, reference):
        cloud = MemoryCloud(ClusterConfig(
            machines=3, trunk_bits=4,
            memory=MemoryParams(trunk_size=128 * 1024),
        ))
        for uid, value in reference.items():
            cloud.put(uid, value)
        assert len(cloud) == len(reference)
        for uid, value in reference.items():
            assert cloud.get(uid) == value


class TestPlacement:
    def test_every_cell_on_some_machine(self, cloud):
        for uid in range(200):
            cloud.put(uid, b"v")
            assert 0 <= cloud.machine_of(uid) < cloud.config.machines

    def test_cells_on_partition_the_keyspace(self, cloud):
        uids = set(range(300))
        for uid in uids:
            cloud.put(uid, b"v")
        seen = set()
        for machine in range(cloud.config.machines):
            for uid in cloud.cells_on(machine):
                assert uid not in seen
                seen.add(uid)
        assert seen == uids

    def test_machine_stats_aggregates(self, cloud):
        for uid in range(100):
            cloud.put(uid, b"y" * 32)
        total = sum(
            cloud.machine_stats(m).cell_count
            for m in range(cloud.config.machines)
        )
        assert total == 100

    def test_total_byte_accounting(self, cloud):
        for uid in range(50):
            cloud.put(uid, b"z" * 64)
        live = cloud.total_live_bytes()
        assert live >= 50 * (64 + 16)
        assert cloud.total_committed_bytes() >= live

    def test_defragment_all(self, cloud):
        for uid in range(50):
            cloud.put(uid, b"a" * 64)
        for uid in range(0, 50, 2):
            cloud.remove(uid)
        assert cloud.defragment_all() >= 1
        for uid in range(1, 50, 2):
            assert cloud.get(uid) == b"a" * 64


class TestPersistence:
    def test_trunk_image_roundtrip(self, cloud, rng):
        reference = {}
        for _ in range(200):
            uid = rng.getrandbits(60)
            value = bytes(rng.getrandbits(8)
                          for _ in range(rng.randrange(100)))
            cloud.put(uid, value)
            reference[uid] = value
        tfs = TrinityFileSystem(datanodes=3, replication=2)
        persistence.backup_all(cloud, tfs)
        # Wipe a trunk, restore it, verify every cell.
        trunk_id = next(iter(cloud.trunks))
        lost = dict(cloud.trunks[trunk_id].dump_cells())
        from repro.memcloud.trunk import MemoryTrunk
        cloud.trunks[trunk_id] = MemoryTrunk(trunk_id, cloud.config.memory)
        restored = persistence.restore_trunk(cloud, trunk_id, tfs)
        assert restored == len(lost)
        for uid, value in reference.items():
            assert cloud.get(uid) == value

    def test_image_format_guard(self, cloud):
        from repro.memcloud.trunk import MemoryTrunk
        trunk = MemoryTrunk(0, cloud.config.memory)
        with pytest.raises(MemoryCloudError, match="magic"):
            persistence.trunk_from_bytes(b"XXXXjunk", trunk)

    def test_image_truncation_detected(self, cloud):
        cloud.put(1, b"payload-bytes")
        trunk_id = None
        for tid, trunk in cloud.trunks.items():
            if 1 in trunk:
                trunk_id = tid
        image = persistence.trunk_to_bytes(cloud.trunks[trunk_id])
        from repro.memcloud.trunk import MemoryTrunk
        fresh = MemoryTrunk(0, cloud.config.memory)
        with pytest.raises(MemoryCloudError, match="truncated"):
            persistence.trunk_from_bytes(image[:-4], fresh)

    def test_backup_returns_bytes_written(self, cloud):
        cloud.put(1, b"x" * 100)
        tfs = TrinityFileSystem(datanodes=3, replication=1)
        written = persistence.backup_all(cloud, tfs)
        assert written > 100
        assert len(tfs.list_files("/trinity/trunks/")) == len(cloud.trunks)
