"""Tests: protocol-driven people search equals the fast path."""

import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.cluster import TrinityCluster
from repro.algorithms import people_search
from repro.algorithms.people_search_distributed import (
    distributed_people_search,
    install_search_handlers,
)
from repro.errors import QueryError
from repro.generators.social import build_social_graph
from repro.graph import GraphBuilder, plain_graph_schema


@pytest.fixture(scope="module")
def deployment():
    cluster = TrinityCluster(ClusterConfig(
        machines=4, trunk_bits=6,
        memory=MemoryParams(trunk_size=8 * 1024 * 1024),
    ))
    graph = build_social_graph(cluster.cloud, 1200, avg_degree=9, seed=8)
    install_search_handlers(cluster, graph)
    return cluster, graph


class TestDistributedPeopleSearch:
    @pytest.mark.parametrize("start", [0, 17, 200, 555])
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_agrees_with_fast_path(self, deployment, start, hops):
        cluster, graph = deployment
        fast = people_search(graph, start, "David", hops=hops)
        distributed = distributed_people_search(
            cluster, graph, start, "David", hops=hops,
        )
        assert distributed.matches == fast.matches
        assert distributed.visited == fast.visited

    def test_one_call_per_machine_per_hop(self, deployment):
        cluster, graph = deployment
        result = distributed_people_search(cluster, graph, 0, "David",
                                           hops=3)
        assert result.protocol_calls <= 3 * cluster.config.machines
        assert result.elapsed > 0

    def test_rare_name(self, deployment):
        cluster, graph = deployment
        result = distributed_people_search(
            cluster, graph, 0, "NoSuchName", hops=3,
        )
        assert result.matches == []
        assert result.visited > 0

    def test_bad_hops(self, deployment):
        cluster, graph = deployment
        with pytest.raises(QueryError):
            distributed_people_search(cluster, graph, 0, "David", hops=0)

    def test_requires_name_attribute(self):
        cluster = TrinityCluster(ClusterConfig(machines=2, trunk_bits=4))
        builder = GraphBuilder(cluster.cloud, plain_graph_schema())
        builder.add_edge(0, 1)
        graph = builder.finalize()
        with pytest.raises(QueryError, match="Name"):
            install_search_handlers(cluster, graph)

    def test_survives_failure_recovery(self, deployment):
        """The protocol keeps answering after a crash + recovery."""
        cluster, graph = deployment
        before = distributed_people_search(cluster, graph, 3, "David",
                                           hops=2)
        cluster.backup_to_tfs()
        cluster.fail_machine(1)
        cluster.report_failure(1)
        cluster.restart_machine(1)
        # Reinstall handlers on the restarted slave (fresh process).
        install_search_handlers(cluster, graph)
        after = distributed_people_search(cluster, graph, 3, "David",
                                          hops=2)
        assert after.matches == before.matches
