"""Property-based storage-tier equivalence: resident vs paged trunks.

The storage tier must be invisible to trunk semantics: any interleaving
of put / bulk_put / remove / overwrite / resize / defrag — including
ones that force wraps and constant page eviction (tiny page budget) —
must leave a paged trunk byte-identical to a resident one, down to the
allocator accounting and the hash table's probe-exact counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemoryParams
from repro.memcloud import persistence
from repro.memcloud.trunk import MemoryTrunk
from repro.obs import MetricsRegistry

TRUNK_SIZE = 2048
PAGE_SIZE = 256          # 8 storage pages per trunk
PAGE_BUDGET = 2          # almost nothing stays resident: constant eviction

SMALL_UID = st.integers(min_value=0, max_value=23)
PAYLOAD = st.binary(max_size=48)

# One "program": an interleaved list of trunk operations.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), SMALL_UID, PAYLOAD),
        st.tuples(st.just("remove"), SMALL_UID),
        st.tuples(st.just("bulk"),
                  st.lists(st.tuples(SMALL_UID, PAYLOAD), max_size=12)),
        st.tuples(st.just("resize"), SMALL_UID,
                  st.integers(min_value=0, max_value=96)),
        st.tuples(st.just("defrag")),
    ),
    max_size=40,
)


def make_params(storage: str) -> MemoryParams:
    return MemoryParams(
        trunk_size=TRUNK_SIZE, page_size=128, storage=storage,
        storage_page_size=PAGE_SIZE, page_budget=PAGE_BUDGET,
    )


def make_pair() -> tuple[MemoryTrunk, MemoryTrunk]:
    resident = MemoryTrunk(0, make_params("resident"),
                           registry=MetricsRegistry())
    paged = MemoryTrunk(0, make_params("paged"), registry=MetricsRegistry())
    return resident, paged


def run_program(trunk: MemoryTrunk, ops, reference: dict[int, bytes]) -> None:
    """Replay one operation program; ``reference`` tracks expected cells."""
    for op in ops:
        if op[0] == "put":
            _, uid, payload = op
            trunk.put(uid, payload)
            reference[uid] = payload
        elif op[0] == "remove":
            uid = op[1]
            if uid in reference:
                trunk.remove(uid)
                del reference[uid]
        elif op[0] == "bulk":
            pairs = op[1]
            if not pairs:
                continue
            trunk.bulk_put([uid for uid, _ in pairs],
                           [payload for _, payload in pairs],
                           presize=False)
            reference.update(pairs)
        elif op[0] == "resize":
            _, uid, new_size = op
            if uid in reference:
                trunk.resize(uid, new_size)
                old = reference[uid]
                reference[uid] = (old[:new_size]
                                  + b"\x00" * (new_size - len(old)))
        else:
            trunk.defragment()


def assert_trunks_identical(resident: MemoryTrunk, paged: MemoryTrunk,
                            probes: bool = True) -> None:
    assert dict(resident.dump_cells()) == dict(paged.dump_cells())
    assert resident.stats() == paged.stats()
    if probes:
        a, b = resident._index, paged._index
        assert (a.probe_count, a.lookup_count) == (b.probe_count,
                                                   b.lookup_count)


def close_paged(paged: MemoryTrunk) -> None:
    paged.storage.unlink()


class TestStorageEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_interleaved_program_equivalence(self, ops):
        """Any program leaves both tiers byte- and counter-identical."""
        resident, paged = make_pair()
        try:
            ref_a: dict[int, bytes] = {}
            ref_b: dict[int, bytes] = {}
            run_program(resident, ops, ref_a)
            run_program(paged, ops, ref_b)
            assert ref_a == ref_b
            assert_trunks_identical(resident, paged)
            live = sorted(ref_a)
            if live:
                assert (resident.bulk_get(live) == paged.bulk_get(live)
                        == [ref_a[u] for u in live])
                for uid in live:
                    assert paged.get(uid) == ref_a[uid]
        finally:
            close_paged(paged)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(SMALL_UID, PAYLOAD), min_size=1, max_size=20))
    def test_spans_byte_identical(self, pairs):
        """Span reads materialize the same bytes on both tiers.

        Under a 2-page budget most batches exceed the pinnable working
        set, so the paged trunk degrades them to packed copies — the
        bytes must not care.
        """
        resident, paged = make_pair()
        try:
            reference: dict[int, bytes] = {}
            for uid, payload in pairs:
                resident.put(uid, payload)
                paged.put(uid, payload)
                reference[uid] = payload
            live = np.array(sorted(reference), dtype=np.uint64)
            span_a = resident.bulk_get_spans(live)
            span_b = paged.bulk_get_spans(live)
            for i, uid in enumerate(live.tolist()):
                got_a = bytes(span_a.arena[span_a.starts[i]:span_a.limits[i]])
                got_b = bytes(span_b.arena[span_b.starts[i]:span_b.limits[i]])
                assert got_a == got_b == reference[uid]
            paged.release_span_pins()
        finally:
            close_paged(paged)

    @settings(max_examples=20, deadline=None)
    @given(OPS)
    def test_page_image_roundtrip(self, ops):
        """freeze → serialise → adopt restores a paged trunk exactly."""
        _, paged = make_pair()
        fresh = MemoryTrunk(0, make_params("paged"),
                            registry=MetricsRegistry(),
                            spill_dir=None)
        try:
            reference: dict[int, bytes] = {}
            run_program(paged, ops, reference)
            image = persistence.trunk_to_bytes(paged)
            count = persistence.trunk_from_bytes(image, fresh)
            assert count == len(reference)
            assert dict(fresh.dump_cells()) == reference
            assert fresh.stats() == paged.stats()
        finally:
            close_paged(paged)
            close_paged(fresh)


class TestEvictionChurn:
    def test_wrap_churn_stays_identical_and_evicts(self):
        """A deterministic churn loop forces wraps *and* evictions."""
        resident, paged = make_pair()
        try:
            reference: dict[int, bytes] = {}
            for round_no in range(12):
                for uid in range(8):
                    tag = round_no * 8 + uid
                    payload = bytes([tag % 251]) * (40 + (tag * 37) % 140)
                    resident.put(uid, payload)
                    paged.put(uid, payload)
                    reference[uid] = payload
                victim = round_no % 8
                resident.remove(victim)
                paged.remove(victim)
                del reference[victim]
            assert_trunks_identical(resident, paged)
            stats = paged.stats()
            # Growing overwrites relocate, so the circular allocator had
            # to reclaim space one way or another.
            assert (stats.wraps + stats.defrag_passes
                    + stats.tail_advances) > 0
            assert stats.relocations > 0
            assert paged.storage.resident_pages <= PAGE_BUDGET
            live = sorted(reference)
            assert paged.bulk_get(live) == [reference[u] for u in live]
        finally:
            close_paged(paged)

    def test_eviction_metrics_are_real(self):
        """The fault/evict/writeback counters actually tick."""
        registry = MetricsRegistry()
        paged = MemoryTrunk(0, make_params("paged"), registry=registry)
        try:
            for uid in range(16):
                paged.put(uid, bytes([uid]) * 100)
            for uid in range(16):
                assert paged.get(uid) == bytes([uid]) * 100
            snap = registry.snapshot()

            def total(name):
                return sum(s["value"]
                           for s in snap[name]["series"])

            assert total("trunk.page.fault.total") > 0
            assert total("trunk.page.evict.total") > 0
            assert total("trunk.page.writeback.total") > 0
            assert paged.storage.resident_pages <= PAGE_BUDGET
        finally:
            close_paged(paged)

    def test_over_budget_span_batch_falls_back_to_copies(self):
        """A span batch wider than the budget degrades, never fails."""
        registry = MetricsRegistry()
        paged = MemoryTrunk(0, make_params("paged"), registry=registry)
        try:
            payloads = {uid: bytes([uid]) * 120 for uid in range(12)}
            for uid, payload in payloads.items():
                paged.put(uid, payload)
            uids = np.arange(12, dtype=np.uint64)
            spans = paged.bulk_get_spans(uids)
            for i in range(12):
                got = bytes(spans.arena[spans.starts[i]:spans.limits[i]])
                assert got == payloads[i]
            snap = registry.snapshot()
            fallbacks = sum(
                s["value"]
                for s in snap["trunk.page.span_fallback.total"]["series"])
            assert fallbacks >= 1
            assert paged.storage.pinned_pages == 0
        finally:
            close_paged(paged)

    def test_small_span_batch_pins_zero_copy(self):
        """A batch that fits the budget aliases the mapping (no copy)."""
        params = MemoryParams(trunk_size=TRUNK_SIZE, page_size=128,
                              storage="paged", storage_page_size=PAGE_SIZE,
                              page_budget=8)
        paged = MemoryTrunk(0, params, registry=MetricsRegistry())
        try:
            paged.put(1, b"a" * 40)
            paged.put(2, b"b" * 40)
            spans = paged.bulk_get_spans(np.array([1, 2], dtype=np.uint64))
            assert paged.storage.pinned_pages >= 1
            assert spans.arena is paged.storage.as_ndarray()
            paged.release_span_pins()
            assert paged.storage.pinned_pages == 0
        finally:
            close_paged(paged)


class TestConfigValidation:
    def test_paged_needs_aligned_trunk_size(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            MemoryParams(trunk_size=1000, storage="paged",
                         storage_page_size=256)

    def test_unknown_storage_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            MemoryParams(storage="holographic")
