"""Tests for cell accessors: zero-copy reads/writes over blob cells."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, MemoryParams
from repro.errors import CellLockedError
from repro.memcloud import MemoryCloud
from repro.tsl import compile_tsl
from repro.tsl.accessor import load_cell, save_cell, use_cell

TSL = """
[CellType: NodeCell]
cell struct Node {
    long Id;
    double Score;
    string Name;
    List<long> Links;
    List<string> Tags;
}
"""


@pytest.fixture
def schema():
    return compile_tsl(TSL)


@pytest.fixture
def node_type(schema):
    return schema.cell("Node")


@pytest.fixture
def loaded_cloud(cloud, node_type):
    save_cell(cloud, 1, node_type, {
        "Id": 7, "Score": 2.5, "Name": "alpha",
        "Links": [10, 20, 30], "Tags": ["a", "bb"],
    })
    return cloud


class TestReads:
    def test_scalar_fields(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            assert cell.Id == 7
            assert cell.Score == 2.5
            assert cell.Name == "alpha"

    def test_list_access(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            links = cell.Links
            assert len(links) == 3
            assert links[1] == 20
            assert links[-1] == 30
            assert list(links) == [10, 20, 30]
            assert links == [10, 20, 30]

    def test_list_index_errors(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            with pytest.raises(IndexError):
                cell.Links[3]
            with pytest.raises(IndexError):
                cell.Links[-4]

    def test_to_dict(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            assert cell.to_dict()["Tags"] == ["a", "bb"]

    def test_read_materialises_lists(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            assert cell.read("Links") == [10, 20, 30]

    def test_unknown_attribute(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            with pytest.raises(Exception):
                cell.Ghost


class TestInPlaceWrites:
    def test_fixed_field_write_is_immediate(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Id = 99
            cell.Score = -1.5
        assert load_cell(loaded_cloud, 1, node_type)["Id"] == 99
        assert load_cell(loaded_cloud, 1, node_type)["Score"] == -1.5

    def test_fixed_list_element_write(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Links[1] = 2222
        assert load_cell(loaded_cloud, 1, node_type)["Links"] == [10, 2222, 30]

    def test_in_place_write_does_not_resize_blob(self, loaded_cloud,
                                                 node_type):
        size_before = loaded_cloud.size_of(1)
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Id = 123456789
        assert loaded_cloud.size_of(1) == size_before


class TestStructuralWrites:
    def test_string_assignment(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Name = "a much longer name than before"
            # Later fields still readable after the splice.
            assert list(cell.Links) == [10, 20, 30]
        assert (load_cell(loaded_cloud, 1, node_type)["Name"]
                == "a much longer name than before")

    def test_list_append(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Links.append(40)
            assert len(cell.Links) == 4
        assert load_cell(loaded_cloud, 1, node_type)["Links"] == [10, 20, 30, 40]

    def test_list_extend(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Links.extend([41, 42])
        assert load_cell(loaded_cloud, 1, node_type)["Links"][-2:] == [41, 42]

    def test_whole_list_assignment(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Links = [1]
        assert load_cell(loaded_cloud, 1, node_type)["Links"] == [1]

    def test_variable_list_element_assignment(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Tags[0] = "replaced-tag"
            assert cell.Tags[1] == "bb"
        assert load_cell(loaded_cloud, 1, node_type)["Tags"] == [
            "replaced-tag", "bb",
        ]

    def test_mixed_writes_in_one_session(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type) as cell:
            cell.Name = "renamed"
            cell.Id = 5       # fixed write after structural change
            cell.Links.append(99)
        decoded = load_cell(loaded_cloud, 1, node_type)
        assert decoded["Name"] == "renamed"
        assert decoded["Id"] == 5
        assert decoded["Links"] == [10, 20, 30, 99]

    def test_exception_discards_structural_changes(self, loaded_cloud,
                                                   node_type):
        with pytest.raises(RuntimeError):
            with use_cell(loaded_cloud, 1, node_type) as cell:
                cell.Name = "should not persist"
                raise RuntimeError("abort")
        assert load_cell(loaded_cloud, 1, node_type)["Name"] == "alpha"


class TestLockingProtocol:
    def test_accessor_holds_the_cell_lock(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type):
            lock = loaded_cloud.trunk_for(1).lock_of(1)
            assert lock.held

    def test_nested_accessors_on_same_cell_blocked(self, loaded_cloud,
                                                   node_type):
        config = ClusterConfig(
            machines=2, trunk_bits=3,
            memory=MemoryParams(trunk_size=64 * 1024, spinlock_budget=32),
        )
        cloud = MemoryCloud(config)
        save_cell(cloud, 1, node_type, {"Id": 1, "Score": 0.0, "Name": "",
                                        "Links": [], "Tags": []})
        with use_cell(cloud, 1, node_type):
            with pytest.raises(CellLockedError):
                with use_cell(cloud, 1, node_type):
                    pass

    def test_lock_released_after_exit(self, loaded_cloud, node_type):
        with use_cell(loaded_cloud, 1, node_type):
            pass
        with use_cell(loaded_cloud, 1, node_type) as cell:
            assert cell.Id == 7


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(-2**62, 2**62), st.text(max_size=30),
        st.lists(st.integers(-2**62, 2**62), max_size=20),
    )
    def test_write_then_read_equals_written(self, new_id, new_name,
                                            new_links):
        node_type = compile_tsl(TSL).cell("Node")
        cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=3))
        save_cell(cloud, 1, node_type, {"Id": 0, "Score": 0.0, "Name": "x",
                                        "Links": [0], "Tags": []})
        with use_cell(cloud, 1, node_type) as cell:
            cell.Id = new_id
            cell.Name = new_name
            cell.Links = new_links
        decoded = load_cell(cloud, 1, node_type)
        assert decoded["Id"] == new_id
        assert decoded["Name"] == new_name
        assert decoded["Links"] == new_links
