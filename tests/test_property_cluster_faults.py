"""Stateful property test: no acknowledged write is ever lost.

Drives a cluster through random interleavings of writes, TFS backups,
machine crashes, recoveries, restarts and joins, checking after every
step that every acknowledged write is still readable — the composite
guarantee of Section 6.2's fault-tolerance machinery (TFS trunk images +
buffered logging + addressing-table recovery).

The BufferedLog invariants hold throughout every interleaving:

* no committed write is lost (including minitransaction commits);
* no aborted minitransaction write is ever visible;
* every origin with surviving log records keeps them on at least
  ``min(replication, live candidates)`` live holders — the factor
  ``recover_machine``'s rebalance restores after each crash.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.config import ClusterConfig, MemoryParams
from repro.cluster import TrinityCluster
from repro.memcloud.minitransaction import MiniTransaction, TransactionAborted

MACHINES = 4


class ClusterFaultMachine(RuleBasedStateMachine):
    """Hypothesis state machine over a live TrinityCluster."""

    @initialize()
    def setup(self):
        self.cluster = TrinityCluster(ClusterConfig(
            machines=MACHINES, trunk_bits=5,
            memory=MemoryParams(trunk_size=256 * 1024),
        ))
        self.client = self.cluster.new_client()
        self.reference: dict[int, bytes] = {}
        self.sequence = 0

    # -- actions -------------------------------------------------------------

    @rule(uid=st.integers(0, 400), size=st.integers(0, 40))
    def write(self, uid, size):
        self.sequence += 1
        value = bytes([self.sequence % 256]) * size + uid.to_bytes(2, "little")
        self.client.put_cell(uid, value)
        self.reference[uid] = value

    @rule()
    def backup(self):
        self.cluster.backup_to_tfs()

    @rule(victim=st.integers(0, MACHINES - 1))
    def crash_and_recover(self, victim):
        slave = self.cluster.slaves.get(victim)
        if slave is None or not slave.alive:
            return
        if len(self.cluster.alive_machines()) <= 2:
            return  # keep a quorum of survivors + TFS datanodes
        self.cluster.fail_machine(victim)
        self.cluster.report_failure(victim)

    @rule(victim=st.integers(0, MACHINES - 1))
    def crash_detect_by_heartbeat(self, victim):
        slave = self.cluster.slaves.get(victim)
        if slave is None or not slave.alive:
            return
        if len(self.cluster.alive_machines()) <= 2:
            return
        self.cluster.fail_machine(victim)
        self.cluster.detect_and_recover()

    @rule()
    def restart_a_dead_machine(self):
        for machine_id, slave in self.cluster.slaves.items():
            if not slave.alive:
                self.cluster.restart_machine(machine_id)
                return

    @rule(uid=st.integers(0, 400), size=st.integers(1, 24))
    def minitransaction_commit(self, uid, size):
        """A committed minitransaction write must be as durable as a
        plain put: log it the way ``Slave.local_put`` does, then hold it
        to the no-write-lost invariant."""
        self.sequence += 1
        value = bytes([self.sequence % 255 + 1]) * size
        tx = MiniTransaction(self.cluster.cloud)
        if uid in self.reference:
            tx.compare(uid, self.reference[uid])
        tx.write(uid, value).commit()
        log = self.cluster.buffered_log
        if log is not None:
            origin = self.cluster.cloud.addressing.machine_for_cell(uid)
            log.append(origin, uid, value,
                       alive=set(self.cluster.alive_machines()))
        self.reference[uid] = value

    @rule(uid=st.integers(0, 400))
    def minitransaction_abort(self, uid):
        """An aborted minitransaction must leave no trace."""
        if uid not in self.reference:
            return
        tx = MiniTransaction(self.cluster.cloud)
        tx.compare(uid, self.reference[uid] + b"\x00wrong")
        tx.write(uid, b"must never be visible")
        with pytest.raises(TransactionAborted):
            tx.commit()
        assert self.client.get_cell(uid) == self.reference[uid]

    @rule(uid=st.integers(0, 400))
    def delete(self, uid):
        if uid in self.reference:
            machine = self.cluster.cloud.addressing.machine_for_cell(uid)
            if self.cluster.slaves[machine].alive:
                self.cluster.cloud.remove(uid)
                del self.reference[uid]

    # -- the guarantee -----------------------------------------------------

    @invariant()
    def every_acknowledged_write_readable(self):
        if not hasattr(self, "cluster"):
            return
        for uid, value in self.reference.items():
            assert self.client.get_cell(uid) == value

    @invariant()
    def log_replication_factor_restored(self):
        """Every origin with surviving records keeps the full record set
        on at least ``min(replication, live ring candidates)`` live
        holders — the guarantee ``rebalance`` restores after crashes."""
        if not hasattr(self, "cluster"):
            return
        log = self.cluster.buffered_log
        if log is None:
            return
        alive = set(self.cluster.alive_machines())
        origins = {o for by in log._buffers.values() for o in by}
        for origin in origins:
            merged = log.records_for(
                origin,
                exclude_holders=[h for h in log._buffers if h not in alive],
            )
            if not merged:
                continue
            sequences = {r.sequence for r in merged}
            full_holders = sum(
                1 for holder, by in log._buffers.items()
                if holder in alive
                and sequences <= {r.sequence
                                  for r in by.get(origin, ())}
            )
            candidates = [m for m in alive if m != origin]
            assert full_holders >= min(log.replication, len(candidates))


ClusterFaultMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None,
)
TestClusterFaults = ClusterFaultMachine.TestCase
