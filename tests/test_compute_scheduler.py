"""Tests for the bipartite scheduler and action scripts (Section 5.4)."""

import numpy as np
import pytest

from repro.compute import BipartiteScheduler
from repro.compute.scheduler import merge_action_scripts
from repro.errors import ComputeError


@pytest.fixture
def scheduler(rmat_topology):
    return BipartiteScheduler(rmat_topology, hub_fraction=0.02,
                              num_partitions=4)


class TestPlan:
    def test_partitions_cover_local_vertices(self, scheduler, rmat_topology):
        plan = scheduler.plan_for_machine(0)
        covered = np.concatenate(plan.partitions)
        local = rmat_topology.nodes_of_machine(0)
        assert sorted(covered.tolist()) == sorted(local.tolist())

    def test_partition_count(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        assert plan.partition_count == 4

    def test_hub_sources_are_remote_and_high_degree(self, scheduler,
                                                    rmat_topology):
        plan = scheduler.plan_for_machine(0)
        for hub in plan.hub_sources:
            assert rmat_topology.machine[hub] != 0
            assert scheduler.is_hub(hub)

    def test_assigned_sources_disjoint(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        seen = set()
        for sources in plan.assigned_sources:
            assert not (sources & seen)
            seen |= sources

    def test_k_sets_are_owned_elsewhere(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        for i, k_set in enumerate(plan.k_sets):
            assert not (k_set & plan.assigned_sources[i])
            for src in k_set:
                assert any(src in owned for j, owned
                           in enumerate(plan.assigned_sources) if j != i)

    def test_hubs_not_partitioned(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        for sources in plan.assigned_sources:
            assert not (sources & plan.hub_sources)

    def test_stats_hub_coverage(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        stats = plan.stats
        assert 0.0 <= stats["hub_coverage"] <= 1.0
        # On a scale-free graph buffering 2% of vertices must cover a
        # disproportionate share of message needs (the paper's 72.8%
        # claim at 1%; we only assert it is strongly super-linear).
        assert stats["hub_coverage"] > 0.10

    def test_peak_buffer_below_naive(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        assert (plan.stats["peak_buffer_slots"]
                < plan.stats["naive_buffer_slots"])

    def test_more_partitions_smaller_peak(self, rmat_topology):
        small = BipartiteScheduler(rmat_topology, num_partitions=2)
        large = BipartiteScheduler(rmat_topology, num_partitions=8)
        peak_small = small.plan_for_machine(0).stats["peak_buffer_slots"]
        peak_large = large.plan_for_machine(0).stats["peak_buffer_slots"]
        assert peak_large <= peak_small


class TestActionScripts:
    def test_scripts_cover_all_needed_sources(self, scheduler):
        plan = scheduler.plan_for_machine(0)
        scripted = set()
        for script in plan.action_scripts.values():
            scripted.update(script.hub_sources)
            for slot in script.schedule:
                scripted.update(slot)
        needed = set(plan.hub_sources)
        for assigned, k_set in zip(plan.assigned_sources, plan.k_sets):
            needed |= assigned | k_set
        assert scripted == needed

    def test_script_sources_live_on_their_machine(self, scheduler,
                                                  rmat_topology):
        plan = scheduler.plan_for_machine(0)
        for remote, script in plan.action_scripts.items():
            assert remote != 0
            for src in script.hub_sources:
                assert rmat_topology.machine[src] == remote
            for slot in script.schedule:
                for src in slot:
                    assert rmat_topology.machine[src] == remote

    def test_merge_action_scripts_once_per_requester(self, scheduler):
        plans = [scheduler.plan_for_machine(m) for m in range(2)]
        # Scripts received by machine 3 from machines 0 and 1.
        received = [
            plan.action_scripts[3] for plan in plans
            if 3 in plan.action_scripts
        ]
        if not received:
            pytest.skip("machine 3 serves no sources in this fixture")
        order = merge_action_scripts(received)
        expected = {
            (script.local_machine, src)
            for script in received
            for src in (list(script.hub_sources)
                        + [s for slot in script.schedule for s in slot])
        }
        # Every (requester, source) pair is emitted exactly once.
        assert len(order) == len(expected)

    def test_total_sources_metric(self, scheduler):
        plan = scheduler.plan_for_machine(1)
        for script in plan.action_scripts.values():
            assert script.total_sources == (
                len(script.hub_sources)
                + sum(len(s) for s in script.schedule)
            )


class TestValidation:
    def test_needs_inlinks(self, undirected_topology):
        # undirected_topology was built without include_inlinks and is
        # undirected, so in_indptr is None.
        with pytest.raises(ComputeError, match="include_inlinks"):
            BipartiteScheduler(undirected_topology)

    def test_bad_parameters(self, rmat_topology):
        with pytest.raises(ComputeError):
            BipartiteScheduler(rmat_topology, num_partitions=0)
        with pytest.raises(ComputeError):
            BipartiteScheduler(rmat_topology, hub_fraction=1.5)
