"""Tests for the TQL traversal query language."""

import pytest

from repro.config import ClusterConfig
from repro.errors import QueryError
from repro.graph import GraphBuilder, social_graph_schema
from repro.memcloud import MemoryCloud
from repro.tql import TqlSyntaxError, execute_tql, parse_tql


@pytest.fixture(scope="module")
def friends_graph():
    """A small named friendship graph:

        0 Ada   — 1 Bob — 2 David
        |                  |
        3 Cara ———————————— (2)
        4 David (isolated friend of Ada)
    """
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=5))
    builder = GraphBuilder(cloud, social_graph_schema())
    names = ["Ada", "Bob", "David", "Cara", "David"]
    for node_id, name in enumerate(names):
        builder.add_node(node_id, Name=name)
    builder.add_edges([(0, 1), (1, 2), (0, 3), (3, 2), (0, 4)])
    return builder.finalize()


class TestParser:
    def test_basic_chain(self):
        query = parse_tql(
            "MATCH (a) -[Friends]-> (b) RETURN b"
        )
        assert query.variables() == ["a", "b"]
        assert query.edges[0].field == "Friends"
        assert not query.edges[0].reverse

    def test_anchor_and_filter(self):
        query = parse_tql(
            "MATCH (a = 7 {Name: 'Ada'}) RETURN a"
        )
        assert query.nodes[0].anchor == 7
        assert query.nodes[0].filters == (("Name", "Ada"),)

    def test_reverse_edge(self):
        query = parse_tql("MATCH (a) <-[Friends]- (b) RETURN a")
        assert query.edges[0].reverse

    def test_where_and_limit(self):
        query = parse_tql(
            "MATCH (a) -[Friends]-> (b) "
            "WHERE b.Name = 'David' AND b != a "
            "RETURN a, b.Name LIMIT 5"
        )
        assert len(query.conditions) == 2
        assert query.limit == 5
        assert query.returns[1].field == "Name"

    def test_numeric_literals(self):
        query = parse_tql("MATCH (a) WHERE a >= 3 RETURN a")
        assert query.conditions[0].right.literal == 3
        query = parse_tql("MATCH (a) WHERE a.Score > 1.5 RETURN a")
        assert query.conditions[0].right.literal == 1.5

    @pytest.mark.parametrize("bad", [
        "(a) RETURN a",                          # no MATCH
        "MATCH (a)",                             # no RETURN
        "MATCH (a) RETURN b",                    # unbound return
        "MATCH (a) WHERE z = 1 RETURN a",        # unbound condition
        "MATCH (a) RETURN a LIMIT 0",            # bad limit
        "MATCH (a) RETURN 5",                    # literal return
        "MATCH (a -[X]-> (b) RETURN a",          # mangled pattern
        "MATCH (a) RETURN a garbage",            # trailing tokens
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(TqlSyntaxError):
            parse_tql(bad)


class TestExecution:
    def test_anchored_neighbors(self, friends_graph):
        result = execute_tql(
            friends_graph, "MATCH (a = 0) -[Friends]-> (b) RETURN b"
        )
        assert result.rows == [(1,), (3,), (4,)]

    def test_filter_on_start(self, friends_graph):
        result = execute_tql(
            friends_graph,
            "MATCH (a {Name: 'Ada'}) -[Friends]-> (b) RETURN b",
        )
        assert result.rows == [(1,), (3,), (4,)]

    def test_two_hop_chain_with_name_filter(self, friends_graph):
        """The David problem, in TQL."""
        result = execute_tql(
            friends_graph,
            "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) "
            "WHERE c.Name = 'David' AND c != a RETURN c",
        )
        assert result.rows == [(2,)]

    def test_projection_of_fields(self, friends_graph):
        result = execute_tql(
            friends_graph,
            "MATCH (a = 1) -[Friends]-> (b) RETURN b, b.Name",
        )
        assert result.rows == [(0, "Ada"), (2, "David")]

    def test_where_join_between_variables(self, friends_graph):
        result = execute_tql(
            friends_graph,
            "MATCH (a) -[Friends]-> (b) WHERE a < b RETURN a, b",
        )
        assert (0, 1) in result.rows
        assert all(a < b for a, b in result.rows)

    def test_rebound_variable_closes_triangle(self, friends_graph):
        # 0 - 3 - 2 - ... back to a node adjacent to 0?  Triangles via
        # re-mentioning the first variable.
        result = execute_tql(
            friends_graph,
            "MATCH (a = 2) -[Friends]-> (b) -[Friends]-> (a) RETURN b",
        )
        assert result.rows == [(1,), (3,)]

    def test_reverse_edge_on_undirected_schema(self, friends_graph):
        forward = execute_tql(
            friends_graph, "MATCH (a = 0) -[Friends]-> (b) RETURN b"
        )
        backward = execute_tql(
            friends_graph, "MATCH (a = 0) <-[Friends]- (b) RETURN b"
        )
        assert forward.rows == backward.rows  # symmetric lists

    def test_limit(self, friends_graph):
        result = execute_tql(
            friends_graph,
            "MATCH (a) -[Friends]-> (b) RETURN a, b LIMIT 3",
        )
        assert len(result.rows) == 3
        assert not result.truncated  # explicit LIMIT, not truncation

    def test_unanchored_scan(self, friends_graph):
        result = execute_tql(
            friends_graph, "MATCH (a {Name: 'David'}) RETURN a"
        )
        assert result.rows == [(2,), (4,)]

    def test_missing_anchor_yields_empty(self, friends_graph):
        result = execute_tql(
            friends_graph, "MATCH (a = 999) -[Friends]-> (b) RETURN b"
        )
        assert result.rows == []

    def test_unknown_field_raises(self, friends_graph):
        with pytest.raises(QueryError):
            execute_tql(friends_graph,
                        "MATCH (a = 0) -[Ghost]-> (b) RETURN b")

    def test_type_mismatch_in_condition(self, friends_graph):
        with pytest.raises(QueryError, match="compare"):
            execute_tql(friends_graph,
                        "MATCH (a = 0) WHERE a.Name < 3 RETURN a")

    def test_accounting(self, friends_graph):
        result = execute_tql(
            friends_graph,
            "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) RETURN c",
        )
        assert result.cells_touched > 0
        assert result.elapsed > 0

    def test_directed_reverse_edges(self, cloud):
        from repro.graph import plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges([(10, 20), (30, 20)])
        graph = builder.finalize()
        result = execute_tql(
            graph, "MATCH (a = 20) <-[Outlinks]- (b) RETURN b"
        )
        assert result.rows == [(10,), (30,)]


class TestVariableLengthPaths:
    def test_parse_range(self):
        query = parse_tql("MATCH (a) -[Friends*2..4]-> (b) RETURN b")
        edge = query.edges[0]
        assert edge.variable_length
        assert (edge.min_hops, edge.max_hops) == (2, 4)

    def test_parse_fixed_repeat(self):
        query = parse_tql("MATCH (a) -[Friends*3]-> (b) RETURN b")
        assert (query.edges[0].min_hops, query.edges[0].max_hops) == (3, 3)

    def test_bad_range_rejected(self):
        with pytest.raises(TqlSyntaxError):
            parse_tql("MATCH (a) -[Friends*4..2]-> (b) RETURN b")
        with pytest.raises(TqlSyntaxError):
            parse_tql("MATCH (a) -[Friends*1..99]-> (b) RETURN b")

    def test_two_hop_matches_chain(self, friends_graph):
        chained = execute_tql(
            friends_graph,
            "MATCH (a = 0) -[Friends]-> (x) -[Friends]-> (b) "
            "WHERE b != a RETURN b",
        )
        ranged = execute_tql(
            friends_graph,
            "MATCH (a = 0) -[Friends*2..2]-> (b) RETURN b",
        )
        # *2..2 uses BFS distance semantics: only nodes first reached at
        # hop 2 qualify, a subset of the explicit chain's answers.
        assert set(ranged.rows) <= set(chained.rows)
        assert ranged.rows  # and it does find the hop-2 nodes

    def test_david_problem_one_edge(self, friends_graph):
        """Within 3 hops of node 0, anyone named David."""
        result = execute_tql(
            friends_graph,
            "MATCH (a = 0) -[Friends*1..3]-> (b {Name: 'David'}) RETURN b",
        )
        assert result.rows == [(2,), (4,)]

    def test_zero_min_includes_start(self, friends_graph):
        result = execute_tql(
            friends_graph,
            "MATCH (a = 1) -[Friends*0..1]-> (b) RETURN b",
        )
        assert (1,) in result.rows  # the start itself at distance 0
        assert (0,) in result.rows and (2,) in result.rows
