"""Shared fixtures for the Trinity reproduction test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.cluster import TrinityCluster
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.generators import rmat_edges
from repro.memcloud import MemoryCloud


@pytest.fixture
def small_config() -> ClusterConfig:
    """4 machines, 32 trunks, small trunks so defrag paths trigger."""
    return ClusterConfig(
        machines=4, trunk_bits=5,
        memory=MemoryParams(trunk_size=256 * 1024),
    )


@pytest.fixture
def cloud(small_config) -> MemoryCloud:
    return MemoryCloud(small_config)


@pytest.fixture
def cluster(small_config) -> TrinityCluster:
    return TrinityCluster(small_config)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def rmat_topology() -> CsrTopology:
    """A 1024-node R-MAT graph over 4 machines (session-scoped: building
    cloud-resident graphs is the slowest fixture step)."""
    edges = rmat_edges(scale=10, avg_degree=8, seed=42)
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges.tolist())
    graph = builder.finalize()
    return CsrTopology(graph, include_inlinks=True)


@pytest.fixture(scope="session")
def rmat_networkx(rmat_topology):
    """The same graph as a networkx DiGraph (reference implementation).

    R-MAT emits parallel edges, which the CSR keeps; the reference graph
    carries them as a ``multiplicity`` weight so weighted comparisons
    (e.g. PageRank) see the same structure.
    """
    networkx = pytest.importorskip("networkx")
    reference = networkx.DiGraph()
    reference.add_nodes_from(range(rmat_topology.n))
    for i in range(rmat_topology.n):
        for j in rmat_topology.out_neighbors(i):
            j = int(j)
            if reference.has_edge(i, j):
                reference[i][j]["multiplicity"] += 1
            else:
                reference.add_edge(i, j, multiplicity=1)
    return reference


@pytest.fixture(scope="session")
def undirected_topology() -> CsrTopology:
    """A 600-node undirected power-law graph over 4 machines."""
    from repro.generators import powerlaw_edges
    edges = powerlaw_edges(600, avg_degree=8, seed=7)
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
    builder.add_edges(edges.tolist())
    graph = builder.finalize()
    return CsrTopology(graph, include_inlinks=False)


def random_blob(rng: random.Random, max_len: int = 256) -> bytes:
    """A random byte string (shared helper for store tests)."""
    return bytes(rng.getrandbits(8) for _ in range(rng.randrange(max_len)))


@pytest.fixture(scope="session")
def numpy_seeded():
    np.random.seed(1234)
    return np.random
