"""Tests for the spin-lock primitive."""

import threading

import pytest

from repro.errors import CellLockedError
from repro.memcloud.locks import SpinLock


class TestSpinLock:
    def test_acquire_release(self):
        lock = SpinLock()
        lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_try_acquire(self):
        lock = SpinLock()
        assert lock.try_acquire()
        assert not lock.try_acquire()
        lock.release()
        assert lock.try_acquire()

    def test_budget_exhaustion_raises(self):
        lock = SpinLock()
        lock.acquire()
        with pytest.raises(CellLockedError):
            lock.acquire(budget=10)

    def test_release_unheld_raises(self):
        lock = SpinLock()
        with pytest.raises(CellLockedError):
            lock.release()

    def test_context_manager(self):
        lock = SpinLock()
        with lock:
            assert lock.held
        assert not lock.held

    def test_context_manager_releases_on_exception(self):
        lock = SpinLock()
        with pytest.raises(RuntimeError):
            with lock:
                raise RuntimeError("boom")
        assert not lock.held

    def test_contention_counted(self):
        lock = SpinLock()
        lock.acquire()
        with pytest.raises(CellLockedError):
            lock.acquire(budget=1)
        assert lock.contention_count == 1
        assert lock.acquire_count == 2

    def test_cross_thread_mutual_exclusion(self):
        lock = SpinLock()
        counter = {"value": 0}
        iterations = 200

        def worker():
            for _ in range(iterations):
                lock.acquire()
                current = counter["value"]
                counter["value"] = current + 1
                lock.release()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 4 * iterations
