"""Tests for the spin-lock primitives."""

import multiprocessing
import threading

import pytest

from repro.errors import CellLockedError
from repro.memcloud.locks import SharedSpinLock, SpinLock


class TestSpinLock:
    def test_acquire_release(self):
        lock = SpinLock()
        lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_try_acquire(self):
        lock = SpinLock()
        assert lock.try_acquire()
        assert not lock.try_acquire()
        lock.release()
        assert lock.try_acquire()

    def test_budget_exhaustion_raises(self):
        lock = SpinLock()
        lock.acquire()
        with pytest.raises(CellLockedError):
            lock.acquire(budget=10)

    def test_release_unheld_raises(self):
        lock = SpinLock()
        with pytest.raises(CellLockedError):
            lock.release()

    def test_context_manager(self):
        lock = SpinLock()
        with lock:
            assert lock.held
        assert not lock.held

    def test_context_manager_releases_on_exception(self):
        lock = SpinLock()
        with pytest.raises(RuntimeError):
            with lock:
                raise RuntimeError("boom")
        assert not lock.held

    def test_contention_counted(self):
        lock = SpinLock()
        lock.acquire()
        with pytest.raises(CellLockedError):
            lock.acquire(budget=1)
        assert lock.contention_count == 1
        assert lock.acquire_count == 2

    def test_cross_thread_mutual_exclusion(self):
        lock = SpinLock()
        counter = {"value": 0}
        iterations = 200

        def worker():
            for _ in range(iterations):
                lock.acquire()
                current = counter["value"]
                counter["value"] = current + 1
                lock.release()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 4 * iterations


class TestSharedSpinLock:
    """The process-shared variant backing the shared-memory backend.

    A plain :class:`SpinLock` is process-local state: after a fork each
    worker would spin on its *own copy* of the flag and two processes
    could both "win" the same cell lock.  These tests prove the shared
    variant genuinely excludes across process boundaries.
    """

    def test_same_interface_in_process(self):
        lock = SharedSpinLock()
        lock.acquire()
        assert lock.held
        assert not lock.try_acquire()
        lock.release()
        assert not lock.held
        with pytest.raises(CellLockedError):
            lock.release()

    def test_budget_exhaustion_raises(self):
        lock = SharedSpinLock()
        lock.acquire()
        with pytest.raises(CellLockedError):
            lock.acquire(budget=10)
        lock.release()

    def test_two_processes_cannot_both_win(self):
        """Exactly one of two forked workers acquires the cell lock."""
        ctx = multiprocessing.get_context("fork")
        lock = SharedSpinLock()
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()

        def contender(worker_id):
            barrier.wait()  # line both workers up on the same attempt
            won = lock.try_acquire()
            queue.put((worker_id, won))

        procs = [ctx.Process(target=contender, args=(i,)) for i in range(2)]
        for proc in procs:
            proc.start()
        outcomes = dict(queue.get(timeout=10) for _ in range(2))
        for proc in procs:
            proc.join(timeout=10)
        assert sorted(outcomes.values()) == [False, True]
        # The winner exited without releasing; the parent still sees the
        # lock held — the flag lives in shared memory, not in the child.
        assert lock.held
        assert not lock.try_acquire()

    def test_parent_hold_visible_to_child(self):
        """A child forked while the parent holds the lock cannot take it."""
        ctx = multiprocessing.get_context("fork")
        lock = SharedSpinLock()
        queue = ctx.Queue()
        lock.acquire()

        def prober():
            queue.put(lock.try_acquire())
            queue.put(lock.held)

        proc = ctx.Process(target=prober)
        proc.start()
        got_lock = queue.get(timeout=10)
        saw_held = queue.get(timeout=10)
        proc.join(timeout=10)
        lock.release()
        assert got_lock is False
        assert saw_held is True
