"""Equivalence tests for the batched online-traversal path.

Every batched query surface — the Graph ``*_batch`` reads, people search
(fast path and protocol-driven), TQL multi-hop expansion, subgraph
candidate prefiltering, and the landmark-oracle BFS — must agree with
its scalar twin on seeded R-MAT graphs, across at least two machine
counts, with ``cross_check=True`` shadow-replaying the scalar path
inside the batched one.
"""

import numpy as np
import pytest

from repro.algorithms.landmarks import evaluate_oracle, select_landmarks
from repro.algorithms.people_search import people_search
from repro.algorithms.people_search_distributed import (
    distributed_people_search,
    install_search_handlers,
)
from repro.algorithms.subgraph import (
    LabelIndex,
    assign_labels,
    generate_query_dfs,
    generate_query_random,
    match_subgraph,
)
from repro.cluster import TrinityCluster
from repro.config import ClusterConfig, MemoryParams
from repro.errors import QueryError
from repro.generators.names import sample_names
from repro.generators.rmat import rmat_edges
from repro.graph import GraphBuilder
from repro.graph.csr import CsrTopology
from repro.graph.model import social_graph_schema
from repro.memcloud import MemoryCloud
from repro.net.simnet import SimNetwork
from repro.obs import MetricsRegistry

MACHINE_COUNTS = [2, 5]


def build_rmat_named_graph(cloud, scale=8, avg_degree=6.0, seed=11):
    """A named friendship graph over an R-MAT edge set."""
    n = 1 << scale
    edges = rmat_edges(scale, avg_degree=avg_degree, seed=seed, dedup=True)
    edges = edges[edges[:, 0] != edges[:, 1]]
    builder = GraphBuilder(cloud, social_graph_schema())
    for node_id, name in enumerate(sample_names(n, seed=seed + 1)):
        builder.add_node(node_id, Name=name)
    builder.add_edges(edges.tolist())
    return builder.finalize()


@pytest.fixture(scope="module", params=MACHINE_COUNTS)
def deployment(request):
    machines = request.param
    cloud = MemoryCloud(ClusterConfig(machines=machines, trunk_bits=5),
                        MetricsRegistry())
    graph = build_rmat_named_graph(cloud)
    return cloud, graph


class TestGraphBatchSurface:
    def test_outlinks_batch_matches_scalar(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids[:300], dtype=np.int64)
        indptr, flat = graph.outlinks_batch(ids, cross_check=True)
        assert len(indptr) == len(ids) + 1
        for i, node_id in enumerate(ids.tolist()):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == \
                graph.outlinks(node_id)

    def test_read_field_batch_attribute_column(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids[:200], dtype=np.int64)
        names = graph.read_field_batch(ids, "Name", cross_check=True)
        assert names == [graph.attribute(int(i), "Name") for i in ids]

    def test_degree_batch_header_only(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids, dtype=np.int64)
        degrees = graph.degree_batch(ids, cross_check=True)
        assert degrees.tolist() == [len(graph.outlinks(int(i)))
                                    for i in ids]

    def test_degree_scalar_header_decode(self, deployment):
        _, graph = deployment
        for node_id in graph.node_ids[:50]:
            assert graph.degree(node_id) == len(graph.outlinks(node_id))

    def test_num_edges_via_degree_batch(self, deployment):
        _, graph = deployment
        total = sum(len(graph.outlinks(v)) for v in graph.node_ids)
        assert graph.num_edges() == total // 2  # undirected schema

    def test_machine_of_batch(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids[:500], dtype=np.int64)
        owners = graph.machine_of_batch(ids)
        assert owners.tolist() == [graph.machine_of(int(i)) for i in ids]

    def test_batch_counters_move(self, deployment):
        cloud, graph = deployment
        before = cloud.obs.counter("query.batch.cells").value
        graph.outlinks_batch(np.asarray(graph.node_ids[:10],
                                        dtype=np.int64))
        assert cloud.obs.counter("query.batch.cells").value == before + 10

    def test_rejects_bad_shapes_and_fields(self, deployment):
        _, graph = deployment
        with pytest.raises(QueryError):
            graph.outlinks_batch(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(QueryError):
            graph.read_field_batch(np.asarray([0], dtype=np.int64),
                                   "NoSuchField")
        with pytest.raises(QueryError):
            # string column: no CSR decoding
            graph.read_field_csr(np.asarray([0], dtype=np.int64), "Name")


class TestNodesOnCache:
    def test_cache_hits_and_invalidation(self):
        cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=4),
                            MetricsRegistry())
        graph = build_rmat_named_graph(cloud, scale=6)
        first = graph.nodes_on(0)
        assert graph.nodes_on(0) == first
        # Returned lists are copies: mutating one must not poison the cache.
        first.append(-1)
        assert -1 not in graph.nodes_on(0)
        new_id = max(graph.node_ids) + 1
        graph.add_node(new_id, Name="Zed")
        machine = graph.machine_of(new_id)
        assert new_id in graph.nodes_on(machine)
        peer = max(graph.node_ids) + 1
        graph.add_edge(new_id, peer)  # also invalidates (creates peer)
        assert peer in graph.nodes_on(graph.machine_of(peer))


class TestPeopleSearchBatch:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_batch_equals_scalar(self, deployment, hops):
        _, graph = deployment
        batched = people_search(graph, 0, "David", hops=hops,
                                network=SimNetwork(), batch=True,
                                cross_check=True)
        scalar = people_search(graph, 0, "David", hops=hops,
                               network=SimNetwork(), batch=False)
        assert batched.matches == scalar.matches
        assert batched.visited == scalar.visited
        assert batched.messages == scalar.messages
        assert batched.hop_times == scalar.hop_times

    def test_rare_name(self, deployment):
        _, graph = deployment
        result = people_search(graph, 0, "NoSuchName", hops=3,
                               network=SimNetwork(), cross_check=True)
        assert result.matches == []
        assert result.visited > 0


class TestStorageTiers:
    """People search and TQL on a paged cloud, bit-identical to resident.

    The page budget is deliberately smaller than the graph's arena
    bytes, so queries run against a working set that cannot all be
    resident.  The cloud is built with ``cross_check=True`` — its
    shadow always runs *resident* storage, so every mutation during
    graph build is verified cell-for-cell across tiers — and each query
    runs with ``cross_check=True``, replaying the scalar read path on
    the paged cloud itself.
    """

    STORAGES = ["resident", "paged"]

    @pytest.fixture(scope="class", params=STORAGES)
    def tier_deployment(self, request):
        memory = MemoryParams(trunk_size=256 * 1024,
                              storage=request.param,
                              storage_page_size=512, page_budget=2)
        cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=4,
                                          memory=memory),
                            MetricsRegistry(), cross_check=True)
        graph = build_rmat_named_graph(cloud, scale=9)
        yield request.param, cloud, graph
        cloud.release_arenas()

    def test_shadow_agrees_across_tiers(self, tier_deployment):
        _, cloud, _ = tier_deployment
        assert cloud._shadow.config.memory.storage == "resident"
        cloud.verify_shadow()

    def test_graph_exceeds_page_budget(self, tier_deployment):
        storage, cloud, _ = tier_deployment
        if storage != "paged":
            pytest.skip("budget applies to the paged tier only")
        budget_bytes = sum(
            t.storage.page_budget * t.storage.page_size
            for t in cloud.trunks.values()
        )
        assert cloud.total_live_bytes() > budget_bytes
        for trunk in cloud.trunks.values():
            assert trunk.storage.resident_pages <= trunk.storage.page_budget
        faults = cloud.obs.snapshot()["trunk.page.fault.total"]["series"]
        assert sum(s["value"] for s in faults) > 0

    def test_people_search_bit_identical(self, tier_deployment):
        _, _, graph = tier_deployment
        batched = people_search(graph, 0, "David", hops=3,
                                network=SimNetwork(), batch=True,
                                cross_check=True)
        scalar = people_search(graph, 0, "David", hops=3,
                               network=SimNetwork(), batch=False)
        assert batched.matches == scalar.matches
        assert batched.visited == scalar.visited
        assert batched.hop_times == scalar.hop_times

    @pytest.mark.parametrize("tql", [
        "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) RETURN c",
        "MATCH (a = 0) -[Friends*1..3]-> (b) "
        "WHERE b.Name = 'David' RETURN b",
    ])
    def test_tql_bit_identical(self, tier_deployment, tql):
        from repro.tql.engine import execute_tql
        _, _, graph = tier_deployment
        batched = execute_tql(graph, tql, network=SimNetwork(),
                              batch=True, cross_check=True)
        scalar = execute_tql(graph, tql, network=SimNetwork(), batch=False)
        assert batched.rows == scalar.rows
        assert batched.cells_touched == scalar.cells_touched

    def test_batch_surface_cross_checked(self, tier_deployment):
        _, _, graph = tier_deployment
        ids = np.asarray(graph.node_ids[:300], dtype=np.int64)
        indptr, flat = graph.outlinks_batch(ids, cross_check=True)
        for i, node_id in enumerate(ids.tolist()):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == \
                graph.outlinks(node_id)
        names = graph.read_field_batch(ids[:100], "Name", cross_check=True)
        assert names == [graph.attribute(int(i), "Name")
                         for i in ids[:100]]


class TestDistributedSearchBatch:
    @pytest.fixture(scope="class", params=MACHINE_COUNTS)
    def cluster_deployment(self, request):
        cluster = TrinityCluster(ClusterConfig(
            machines=request.param, trunk_bits=6,
            memory=MemoryParams(trunk_size=8 * 1024 * 1024),
        ))
        graph = build_rmat_named_graph(cluster.cloud, scale=8)
        return cluster, graph

    def test_batch_handlers_equal_scalar(self, cluster_deployment):
        cluster, graph = cluster_deployment
        install_search_handlers(cluster, graph, batch=True,
                                cross_check=True)
        batched = distributed_people_search(cluster, graph, 0, "David",
                                            hops=3, batch=True,
                                            cross_check=True)
        install_search_handlers(cluster, graph, batch=False)
        scalar = distributed_people_search(cluster, graph, 0, "David",
                                           hops=3, batch=False)
        assert batched.matches == scalar.matches
        assert batched.visited == scalar.visited
        assert batched.protocol_calls == scalar.protocol_calls
        fast = people_search(graph, 0, "David", hops=3)
        assert batched.matches == fast.matches


class TestTqlBatch:
    QUERIES = [
        "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) RETURN c",
        "MATCH (a = 0) -[Friends*1..3]-> (b) "
        "WHERE b.Name = 'David' RETURN b",
        "MATCH (a) -[Friends]-> (b) WHERE b.Name = 'David' "
        "RETURN a LIMIT 40",
        "MATCH (a {Name: 'David'}) <-[Friends]- (b) RETURN b LIMIT 25",
    ]

    @pytest.mark.parametrize("tql", QUERIES)
    def test_batch_equals_scalar(self, deployment, tql):
        from repro.tql.engine import execute_tql
        _, graph = deployment
        batched = execute_tql(graph, tql, network=SimNetwork(),
                              batch=True, cross_check=True)
        scalar = execute_tql(graph, tql, network=SimNetwork(),
                             batch=False)
        assert batched.rows == scalar.rows
        assert batched.cells_touched == scalar.cells_touched
        assert batched.messages == scalar.messages
        assert batched.elapsed == scalar.elapsed
        assert batched.truncated == scalar.truncated


class TestSubgraphBatch:
    @pytest.mark.parametrize("generator,qseed",
                             [(generate_query_dfs, 2),
                              (generate_query_random, 5)])
    def test_batch_equals_scalar(self, deployment, generator, qseed):
        _, graph = deployment
        topology = CsrTopology(graph)
        labels = assign_labels(topology.n, num_labels=8, seed=3)
        query = generator(topology, labels, size=5, seed=qseed)
        index = LabelIndex(topology, labels)
        batched = match_subgraph(topology, labels, query,
                                 network=SimNetwork(), index=index,
                                 batch=True, cross_check=True)
        scalar = match_subgraph(topology, labels, query,
                                network=SimNetwork(), index=index,
                                batch=False)
        assert batched.embeddings == scalar.embeddings
        assert batched.candidates_examined == scalar.candidates_examined
        assert batched.messages == scalar.messages
        assert batched.round_times == scalar.round_times


class TestLandmarkBatch:
    def test_oracle_batch_equals_scalar(self, deployment):
        _, graph = deployment
        topology = CsrTopology(graph)
        landmarks = select_landmarks(topology, 4, strategy="degree")
        batched = evaluate_oracle(topology, landmarks, pairs=40, seed=2,
                                  batch=True, cross_check=True)
        scalar = evaluate_oracle(topology, landmarks, pairs=40, seed=2,
                                 batch=False)
        assert batched.per_pair == scalar.per_pair
        assert batched.accuracy == scalar.accuracy
        assert batched.exact_fraction == scalar.exact_fraction


class TestFieldEqBatch:
    def test_matches_scalar_compare(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids[:300], dtype=np.int64)
        target = graph.attribute(5, "Name")
        hits = graph.field_eq_batch(ids, "Name", target, cross_check=True)
        assert hits.dtype == bool
        assert hits.tolist() == [
            graph.attribute(int(i), "Name") == target for i in ids]

    def test_no_match_and_empty_needle(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids[:64], dtype=np.int64)
        assert not graph.field_eq_batch(
            ids, "Name", "no such name ever", cross_check=True).any()
        assert not graph.field_eq_batch(ids, "Name", "",
                                        cross_check=True).any()

    def test_non_string_field_falls_back(self, deployment):
        _, graph = deployment
        ids = np.asarray(graph.node_ids[:50], dtype=np.int64)
        target = graph.outlinks(int(ids[3]))
        hits = graph.field_eq_batch(ids, "Friends", target,
                                    cross_check=True)
        assert hits.tolist() == [graph.outlinks(int(i)) == target
                                 for i in ids]


class TestBatchDedup:
    """Repeated node ids are routed once and reassembled in input order."""

    def _dup_ids(self, graph):
        base = graph.node_ids[:40]
        return np.asarray(base + base[:17] + base[5:9] + [base[0]] * 6,
                          dtype=np.int64)

    def test_outlinks_batch_with_duplicates(self, deployment):
        _, graph = deployment
        ids = self._dup_ids(graph)
        indptr, flat = graph.outlinks_batch(ids, cross_check=True)
        assert len(indptr) == len(ids) + 1
        for i, node_id in enumerate(ids.tolist()):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == \
                graph.outlinks(node_id)

    def test_read_field_batch_with_duplicates(self, deployment):
        _, graph = deployment
        ids = self._dup_ids(graph)
        names = graph.read_field_batch(ids, "Name", cross_check=True)
        assert names == [graph.attribute(int(i), "Name") for i in ids]

    def test_field_eq_batch_with_duplicates(self, deployment):
        _, graph = deployment
        ids = self._dup_ids(graph)
        target = graph.attribute(5, "Name")
        hits = graph.field_eq_batch(ids, "Name", target, cross_check=True)
        assert hits.tolist() == [
            graph.attribute(int(i), "Name") == target for i in ids]

    def test_degree_batch_with_duplicates(self, deployment):
        _, graph = deployment
        ids = self._dup_ids(graph)
        degrees = graph.degree_batch(ids, cross_check=True)
        assert degrees.tolist() == [len(graph.outlinks(int(i)))
                                    for i in ids]

    def test_dedup_counter_and_routing_volume(self, deployment):
        cloud, graph = deployment
        dedup = cloud.obs.counter("query.batch.cells_deduped")
        routed = cloud.obs.counter("memcloud.bulk.get.cells")
        ids = np.asarray([graph.node_ids[0]] * 50 + graph.node_ids[:10],
                         dtype=np.int64)
        before_dedup = dedup.value
        before_routed = routed.value
        graph.outlinks_batch(ids)
        dropped = len(ids) - len(np.unique(ids))
        assert dedup.value == before_dedup + dropped
        # Only the unique ids reach hashing/routing and the trunks.
        assert routed.value - before_routed == len(np.unique(ids))

    def test_all_same_id(self, deployment):
        _, graph = deployment
        node = graph.node_ids[3]
        ids = np.asarray([node] * 25, dtype=np.int64)
        indptr, flat = graph.outlinks_batch(ids, cross_check=True)
        expected = graph.outlinks(node)
        assert indptr.tolist() == [len(expected) * i for i in range(26)]
        assert flat.tolist() == expected * 25


class TestMutationEpoch:
    """Every structural mutation path advances the cloud mutation epoch,
    so epoch-stamped cache entries can never be served stale."""

    def _fresh(self, machines=3):
        cloud = MemoryCloud(ClusterConfig(machines=machines, trunk_bits=4),
                            MetricsRegistry())
        graph = build_rmat_named_graph(cloud, scale=6)
        return cloud, graph

    def test_each_mutation_kind_bumps_epoch(self):
        cloud, graph = self._fresh()
        node = graph.node_ids[0]
        peer = graph.node_ids[1]

        def put_blob(g):
            g.cloud.put(max(g.node_ids) + 1000, b"raw-cell")

        def remove_blob(g):
            g.cloud.remove(max(g.node_ids) + 1000)

        def in_place_list_write(g):
            with g.use_node(node) as cell:
                friends = cell.get("Friends")
                if len(friends):
                    friends[0] = friends[0]  # same value, bytes rewritten

        def splice_attribute(g):
            with g.use_node(peer) as cell:
                cell.Name = "Renamed"

        def defrag(g):
            for trunk in g.cloud.trunks.values():
                trunk.defragment()

        def layout_migration(g):
            from repro.graph import LayoutReencoder
            from repro.tsl.layout import DEFAULT_LAYOUT_POLICY, \
                RAW_ONLY_POLICY
            # Roll codec cells back to raw (the adaptive-built graph has
            # some); if a previous run already did, migrate forward again.
            report = LayoutReencoder(g, policy=RAW_ONLY_POLICY).run_pass()
            if not report.migrated:
                report = LayoutReencoder(
                    g, policy=DEFAULT_LAYOUT_POLICY).run_pass()
            assert report.migrated >= 1, "no cell had layout drift"

        mutations = [
            ("add_edge", lambda g: g.add_edge(node, max(g.node_ids) + 1)),
            ("add_node", lambda g: g.add_node(max(g.node_ids) + 1,
                                              Name="New")),
            ("put", put_blob),
            ("remove", remove_blob),
            ("in_place_list_write", in_place_list_write),
            ("splice_attribute", splice_attribute),
            ("layout_migration", layout_migration),
            ("defragment", defrag),
        ]
        for label, mutate in mutations:
            before = cloud.mutation_epoch()
            mutate(graph)
            after = cloud.mutation_epoch()
            assert after > before, f"{label} did not bump mutation_epoch"

    def test_random_mutation_sequences_are_monotonic(self):
        from repro.graph import LayoutReencoder
        from repro.tsl.layout import DEFAULT_LAYOUT_POLICY, RAW_ONLY_POLICY
        cloud, graph = self._fresh()
        rng = np.random.default_rng(17)
        nodes = graph.node_ids[:64]
        last = cloud.mutation_epoch()
        toward_raw = True
        for step in range(60):
            kind = int(rng.integers(0, 5))
            if kind == 0:
                graph.add_edge(int(rng.choice(nodes)),
                               int(rng.choice(nodes)))
            elif kind == 1:
                with graph.use_node(int(rng.choice(nodes))) as cell:
                    friends = cell.get("Friends")
                    if len(friends):
                        friends[0] = int(rng.choice(nodes))
                    else:
                        cell.Name = f"n{step}"
            elif kind == 2:
                graph.cloud.put(int(rng.choice(nodes)),
                                graph.cloud.get(int(rng.choice(nodes))))
            elif kind == 3:
                # Layout migration as a mutation kind: swing the whole
                # graph between raw and adaptive so each pass has work.
                policy = RAW_ONLY_POLICY if toward_raw \
                    else DEFAULT_LAYOUT_POLICY
                toward_raw = not toward_raw
                report = LayoutReencoder(graph, policy=policy).run_pass()
                if not report.migrated:
                    # Nothing drifted this direction: epoch must still
                    # advance for the assertion, via a plain rewrite.
                    node = int(rng.choice(nodes))
                    graph.cloud.put(node, graph.cloud.get(node))
            else:
                with graph.use_node(int(rng.choice(nodes))) as cell:
                    cell.Name = f"renamed-{step}"
            current = cloud.mutation_epoch()
            assert current > last
            last = current

    def test_reads_do_not_bump_epoch(self):
        cloud, graph = self._fresh()
        before = cloud.mutation_epoch()
        graph.outlinks_batch(np.asarray(graph.node_ids[:32],
                                        dtype=np.int64))
        graph.read_field_batch(np.asarray(graph.node_ids[:16],
                                          dtype=np.int64), "Name")
        with graph.use_node(graph.node_ids[0]) as cell:
            _ = cell.Name
            _ = cell.get("Friends").to_list()
        assert cloud.mutation_epoch() == before

    def test_stale_hub_entry_never_served(self):
        from repro.serve import EpochLruCache
        cloud, graph = self._fresh()
        cache = EpochLruCache("hub", capacity=8, registry=cloud.obs)
        node = graph.node_ids[0]
        epoch = cloud.mutation_epoch()
        cache.put(node, epoch, list(graph.outlinks(node)))
        assert cache.get(node, cloud.mutation_epoch()) is not None
        rng = np.random.default_rng(3)
        for step in range(10):
            graph.add_edge(node, int(rng.choice(graph.node_ids)))
            # After ANY mutation the stamped entry must be unreachable.
            assert cache.get(node, cloud.mutation_epoch()) is None
            cache.put(node, cloud.mutation_epoch(),
                      list(graph.outlinks(node)))
        assert cache.invalidated >= 1
        served = cache.get(node, cloud.mutation_epoch())
        assert served == graph.outlinks(node)

    def test_epoch_vector_tracks_only_owning_trunk(self):
        cloud, graph = self._fresh()
        node = int(graph.node_ids[0])
        owner = int(cloud.trunks_of_array([node])[0])
        before = cloud.epoch_vector()
        assert sum(before) == cloud.mutation_epoch()
        graph.add_edge(node, int(graph.node_ids[1]))
        after = cloud.epoch_vector()
        changed = {t for t in range(len(after)) if after[t] != before[t]}
        assert owner in changed
        # An edge write touches at most the two endpoint cells' trunks
        # (plus the new node's on growth) — never the whole vector.
        assert len(changed) < len(after)

    def test_footprint_entry_survives_unrelated_trunk_write(self):
        from repro.serve import EpochLruCache
        cloud, graph = self._fresh()
        cache = EpochLruCache("hub", capacity=8,
                              registry=MetricsRegistry())
        node = int(graph.node_ids[0])
        owner = int(cloud.trunks_of_array([node])[0])
        cache.put(("outlinks", node), cloud.epoch_vector(),
                  list(graph.outlinks(node)), footprint=(owner,))
        assert cache.footprint_of(("outlinks", node)) == {owner}
        # Write to a node owned by a DIFFERENT trunk: the entry lives.
        other = next(n for n in map(int, graph.node_ids)
                     if int(cloud.trunks_of_array([n])[0]) != owner)
        peer = next(n for n in map(int, graph.node_ids)
                    if int(cloud.trunks_of_array([n])[0]) != owner
                    and n != other)
        graph.add_edge(other, peer)
        assert cache.get(("outlinks", node),
                         cloud.epoch_vector()) is not None
        # Write to the owning trunk: the entry dies.
        graph.add_edge(node, other)
        assert cache.get(("outlinks", node), cloud.epoch_vector()) is None
        assert cache.invalidated == 1

    def test_footprint_stamp_never_validates_against_scalar(self):
        from repro.serve import EpochLruCache
        cloud, graph = self._fresh()
        cache = EpochLruCache("t", capacity=4, registry=MetricsRegistry())
        node = int(graph.node_ids[0])
        owner = int(cloud.trunks_of_array([node])[0])
        cache.put(("outlinks", node), cloud.epoch_vector(), "row",
                  footprint=(owner,))
        assert cache.get(("outlinks", node),
                         cloud.mutation_epoch()) is None


class TestVisitedTracker:
    def test_mask_grows_and_counts(self):
        from repro.algorithms.people_search import _VisitedTracker
        tracker = _VisitedTracker(0)
        ids = np.asarray([1, 5000, 1, 0], dtype=np.int64)
        assert tracker.unseen(ids).tolist() == [True, True, True, False]
        tracker.add(np.asarray([1, 5000], dtype=np.int64))
        assert tracker.unseen(ids).tolist() == [False, False, False, False]
        assert tracker.count == 3

    def test_switches_to_sorted_on_huge_ids(self):
        from repro.algorithms.people_search import _VisitedTracker
        tracker = _VisitedTracker(3)
        tracker.add(np.asarray([9], dtype=np.int64))
        huge = np.asarray([2**50, 3, 9, 2**50 + 1], dtype=np.int64)
        assert tracker.unseen(huge).tolist() == [True, False, False, True]
        assert tracker._mask is None  # permanently in sorted mode
        tracker.add(np.asarray([2**50], dtype=np.int64))
        assert tracker.unseen(huge).tolist() == [False, False, False, True]
        assert tracker.count == 3

    def test_people_search_on_sparse_huge_ids(self):
        """End-to-end batch == scalar on a graph whose node ids overflow
        any dense visited mask (the sorted-array fallback path)."""
        cloud = MemoryCloud(ClusterConfig(machines=3, trunk_bits=5),
                            MetricsRegistry())
        base = 2**52
        ids = [base + 17 * k for k in range(40)]
        names = sample_names(len(ids), seed=9)
        builder = GraphBuilder(cloud, social_graph_schema())
        for node_id, name in zip(ids, names):
            builder.add_node(node_id, Name=name)
        rng = np.random.default_rng(4)
        edges = {(ids[int(a)], ids[int(b)])
                 for a, b in rng.integers(0, len(ids), size=(160, 2))
                 if a != b}
        builder.add_edges(sorted(edges))
        graph = builder.finalize()
        target = names[7]
        batched = people_search(graph, ids[0], target, hops=3,
                                network=SimNetwork(), batch=True,
                                cross_check=True)
        scalar = people_search(graph, ids[0], target, hops=3,
                               network=SimNetwork(), batch=False)
        assert batched.matches == scalar.matches
        assert batched.visited == scalar.visited
        assert batched.messages == scalar.messages
        assert batched.hop_times == scalar.hop_times
