"""Tests: TFS durability across process restarts (disk-backed mode)."""


from repro.config import ClusterConfig, MemoryParams
from repro.memcloud import MemoryCloud, persistence
from repro.tfs import TrinityFileSystem


class TestDiskBackedTfs:
    def test_blocks_survive_reopen(self, tmp_path):
        tfs = TrinityFileSystem(datanodes=3, replication=2,
                                block_size=64, disk_root=tmp_path)
        payload = bytes(range(256)) * 2
        tfs.write("/data/a", payload)
        tfs.write("/data/b", b"second file")

        reopened = TrinityFileSystem(datanodes=3, replication=2,
                                     block_size=64, disk_root=tmp_path)
        assert reopened.read("/data/a") == payload
        assert reopened.read("/data/b") == b"second file"
        assert reopened.list_files("/data/") == ["/data/a", "/data/b"]

    def test_overwrite_survives_reopen(self, tmp_path):
        tfs = TrinityFileSystem(datanodes=2, replication=1,
                                disk_root=tmp_path)
        tfs.write("/f", b"v1")
        tfs.write("/f", b"v2-longer-content")
        reopened = TrinityFileSystem(datanodes=2, replication=1,
                                     disk_root=tmp_path)
        assert reopened.read("/f") == b"v2-longer-content"
        assert reopened.stat("/f").version == 2

    def test_delete_removes_disk_blocks(self, tmp_path):
        tfs = TrinityFileSystem(datanodes=2, replication=2,
                                disk_root=tmp_path)
        tfs.write("/gone", b"x" * 100)
        tfs.delete("/gone")
        reopened = TrinityFileSystem(datanodes=2, replication=2,
                                     disk_root=tmp_path)
        assert not reopened.exists("/gone")
        # No stray block files left behind.
        assert not list(tmp_path.glob("node-*/*.blk"))

    def test_new_writes_after_reopen_do_not_collide(self, tmp_path):
        tfs = TrinityFileSystem(datanodes=2, replication=1,
                                disk_root=tmp_path)
        tfs.write("/a", b"first")
        reopened = TrinityFileSystem(datanodes=2, replication=1,
                                     disk_root=tmp_path)
        reopened.write("/b", b"fresh block ids")
        assert reopened.read("/a") == b"first"
        assert reopened.read("/b") == b"fresh block ids"

    def test_whole_memory_cloud_survives_restart(self, tmp_path):
        """End to end: trunk images written before 'shutdown' restore a
        brand-new cloud in a brand-new 'process'."""
        config = ClusterConfig(machines=3, trunk_bits=4,
                               memory=MemoryParams(trunk_size=256 * 1024))
        cloud = MemoryCloud(config)
        reference = {uid: bytes([uid % 256]) * (uid % 40)
                     for uid in range(300)}
        for uid, value in reference.items():
            cloud.put(uid, value)
        tfs = TrinityFileSystem(datanodes=3, replication=2,
                                disk_root=tmp_path)
        persistence.backup_all(cloud, tfs)

        del cloud, tfs  # "process exit"

        tfs2 = TrinityFileSystem(datanodes=3, replication=2,
                                 disk_root=tmp_path)
        cloud2 = MemoryCloud(config)
        for trunk_id in cloud2.trunks:
            persistence.restore_trunk(cloud2, trunk_id, tfs2)
        for uid, value in reference.items():
            assert cloud2.get(uid) == value
