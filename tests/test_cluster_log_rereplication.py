"""Buffered-log holder crashes must not void the replication guarantee.

These are deterministic regressions distilled from hypothesis-found
traces: the buffered log promises that every acknowledged write survives
``replication`` simultaneous losses, and that has to hold per *record* —
holder sets drift across crash/recover/restart cycles, so counting live
holders per origin is not enough.
"""

import pytest

from repro.cluster import TrinityCluster
from repro.cluster.recovery import BufferedLog
from repro.config import ClusterConfig, MemoryParams


def small_cluster(machines=4):
    return TrinityCluster(ClusterConfig(
        machines=machines, trunk_bits=5,
        memory=MemoryParams(trunk_size=256 * 1024),
    ))


def crash(cluster, machine):
    cluster.fail_machine(machine)
    cluster.report_failure(machine)


class TestHolderCrashRecovery:
    def test_sequential_holder_crashes_then_origin_crash(self):
        # Writes land on machine 0; its ring holders are 1 and 2.  Crash
        # both holders, then the origin: without re-replication onto
        # fresh holders the log is empty and the write is lost.
        cluster = small_cluster()
        client = cluster.new_client()
        client.put_cell(77, b"survive")
        crash(cluster, 1)
        crash(cluster, 2)
        crash(cluster, 0)
        assert client.get_cell(77) == b"survive"

    def test_restarted_holder_rejoins_without_forking_copies(self):
        # The hypothesis trace that found the per-record flaw: holder 1
        # crashes and restarts twice around a second write, leaving the
        # copies divergent, then holders 2 and 0 die.  Every acknowledged
        # write must still be readable.
        cluster = small_cluster()
        client = cluster.new_client()
        client.put_cell(77, b"first")
        crash(cluster, 1)
        cluster.restart_machine(1)
        client.put_cell(0, b"second")
        crash(cluster, 1)
        cluster.restart_machine(1)
        crash(cluster, 2)
        crash(cluster, 0)
        assert client.get_cell(0) == b"second"
        assert client.get_cell(77) == b"first"

    def test_restart_restores_replication_before_next_crash(self):
        # With only two machines alive a write can recruit a single log
        # holder.  Restarting capacity must re-replicate immediately:
        # waiting for the next crash is one crash too late when that
        # crash takes the sole holder.
        cluster = small_cluster()
        client = cluster.new_client()
        crash(cluster, 3)
        crash(cluster, 0)
        client.put_cell(0, b"narrow")   # written while only {1,2} live
        cluster.restart_machine(0)
        cluster.restart_machine(3)
        crash(cluster, 1)               # sole original holder dies
        crash(cluster, 2)               # then the origin dies
        assert client.get_cell(0) == b"narrow"

    def test_recovery_restores_holder_count(self):
        cluster = small_cluster()
        client = cluster.new_client()
        client.put_cell(77, b"x")
        log = cluster.buffered_log
        holders = {h for h, by in log._buffers.items() if by.get(0)}
        assert len(holders) == cluster.config.replication
        victim = next(iter(holders))
        crash(cluster, victim)
        holders = {h for h, by in log._buffers.items() if by.get(0)}
        assert len(holders) == cluster.config.replication
        assert victim not in holders


class TestBufferedLogUnit:
    def test_append_targets_live_ring_holders(self):
        log = BufferedLog(machines=4, replication=2)
        log.append(0, 7, b"v", alive={0, 2, 3})
        holders = {h for h, by in log._buffers.items() if by.get(0)}
        assert holders == {2, 3}  # holder 1 is down, skipped

    def test_append_keeps_recruited_holders_current(self):
        # A holder recruited by rebalance must see later appends too,
        # otherwise its copy silently goes stale.
        log = BufferedLog(machines=4, replication=2)
        log.append(0, 1, b"a", alive={0, 1, 2, 3})
        log.drop_holder(1)
        log.rebalance(alive={0, 2, 3})
        log.append(0, 2, b"b", alive={0, 1, 2, 3})  # 1 is back
        for holder in (2, 3):
            held = {r.cell_id for r in log._buffers[holder][0]}
            assert held == {1, 2}

    def test_rebalance_repairs_partial_copies(self):
        # Two live holders but divergent contents: holder-counting says
        # "replicated", record-counting says record 2 has one copy.
        log = BufferedLog(machines=4, replication=2)
        log.append(0, 1, b"a", alive={0, 1, 2, 3})   # holders 1, 2
        log._buffers[1][0].pop()                      # holder 1 lost it
        log.append(0, 2, b"b", alive={0, 1, 2, 3})
        repaired = log.rebalance(alive={0, 1, 2, 3})
        assert repaired >= 1
        for holder in (1, 2):
            held = {r.sequence for r in log._buffers[holder][0]}
            assert held == {1, 2}

    def test_rebalance_noop_when_fully_replicated(self):
        log = BufferedLog(machines=4, replication=2)
        log.append(0, 1, b"a", alive={0, 1, 2, 3})
        assert log.rebalance(alive={0, 1, 2, 3}) == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
