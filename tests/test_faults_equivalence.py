"""Chaos equivalence: injected faults never change results, bit for bit.

Every workload here runs twice — fault-free, then under a seeded
``FaultPlan`` that crashes a machine mid-job, drops/duplicates/delays
messages and partitions the network — and the final vertex values must
be **bit-identical**.  Each faulted run also executes with
``cross_check=True``, so the per-vertex reference path replays the same
chaos and must agree with the vectorized path superstep by superstep.

The CI fault matrix re-runs this module over a grid of seeds and cluster
sizes via the ``FAULTS_SEED`` / ``FAULTS_MACHINES`` environment
variables.
"""

import os

import numpy as np
import pytest

from repro.algorithms import BfsProgram, PageRankProgram, SsspProgram
from repro.algorithms.wcc import WccProgram
from repro.compute import BspEngine, CheckpointManager
from repro.config import ClusterConfig
from repro.faults import FaultPlan
from repro.generators import rmat_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud
from repro.net import SimNetwork
from repro.obs import MetricsRegistry
from repro.tfs import TrinityFileSystem

SEED = int(os.environ.get("FAULTS_SEED", "7"))
MACHINES = int(os.environ.get("FAULTS_MACHINES", "4"))


@pytest.fixture(scope="module")
def topology() -> CsrTopology:
    edges = rmat_edges(scale=9, avg_degree=8, seed=42)
    cloud = MemoryCloud(ClusterConfig(machines=MACHINES, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges.tolist())
    return CsrTopology(builder.finalize(), include_inlinks=True)


def chaos_plan(**overrides) -> FaultPlan:
    base = dict(
        seed=SEED,
        crashes=((2, SEED % MACHINES),),
        drop_rate=0.08,
        duplicate_rate=0.05,
        delay_rate=0.05,
        partitions=((3, 5, frozenset({(SEED + 1) % MACHINES})),),
    )
    base.update(overrides)
    return FaultPlan(**base)


def run(topology, program, faults=None, max_supersteps=50):
    registry = MetricsRegistry()
    engine = BspEngine(
        topology,
        network=SimNetwork(registry=registry),
        cross_check=faults is not None,
        faults=faults,
        checkpoints=(CheckpointManager(TrinityFileSystem(), every=2)
                     if faults is not None else None),
    )
    result = engine.run(program, max_supersteps=max_supersteps)
    return result, registry


def assert_bit_identical(baseline, chaos):
    base = np.asarray(baseline.values)
    faulted = np.asarray(chaos.values)
    assert base.dtype == faulted.dtype
    assert np.array_equal(base, faulted)


def test_pagerank_bit_identical_under_chaos(topology):
    baseline, _ = run(topology, PageRankProgram(iterations=10))
    chaos, registry = run(topology, PageRankProgram(iterations=10),
                          faults=chaos_plan())
    assert_bit_identical(baseline, chaos)
    # The acceptance criteria of this subsystem: the crash actually
    # fired, the transport actually retried, and nothing changed.
    assert chaos.restarts >= 1
    assert registry.counter("faults.crash.total").value >= 1
    assert registry.counter("rpc.retry.total").value > 0
    assert registry.counter("bsp.restart.total").value >= 1


def test_bfs_bit_identical_under_chaos(topology):
    baseline, _ = run(topology, BfsProgram(root=0))
    chaos, registry = run(topology, BfsProgram(root=0),
                          faults=chaos_plan())
    assert_bit_identical(baseline, chaos)
    assert registry.counter("faults.crash.total").value >= 1


def test_sssp_bit_identical_under_chaos(topology):
    weights = np.random.default_rng(3).uniform(
        0.5, 4.0, size=len(topology.out_indices)
    )
    baseline, _ = run(topology, SsspProgram(root=0, edge_weights=weights))
    chaos, registry = run(topology,
                          SsspProgram(root=0, edge_weights=weights),
                          faults=chaos_plan())
    assert_bit_identical(baseline, chaos)
    assert registry.counter("faults.crash.total").value >= 1


def test_wcc_bit_identical_under_chaos(topology):
    baseline, _ = run(topology, WccProgram())
    chaos, registry = run(topology, WccProgram(), faults=chaos_plan())
    assert_bit_identical(baseline, chaos)
    assert registry.counter("faults.crash.total").value >= 1


def test_crash_without_checkpoints_restarts_from_scratch(topology):
    program = PageRankProgram(iterations=6)
    baseline, _ = run(topology, program)
    registry = MetricsRegistry()
    engine = BspEngine(
        topology, network=SimNetwork(registry=registry),
        cross_check=True,
        faults=FaultPlan(seed=SEED, crashes=((3, 0),)),
    )
    chaos = engine.run(PageRankProgram(iterations=6))
    assert_bit_identical(baseline, chaos)
    assert chaos.restarts == 1
    assert registry.counter("bsp.checkpoint.total").value == 0


def test_drops_only_change_time_not_values(topology):
    baseline, _ = run(topology, PageRankProgram(iterations=8))
    chaos, _ = run(topology, PageRankProgram(iterations=8),
                   faults=FaultPlan(seed=SEED, drop_rate=0.2))
    assert_bit_identical(baseline, chaos)
    assert chaos.restarts == 0
    # Retransmissions and backoffs are charged to the simulated clock.
    assert chaos.elapsed > baseline.elapsed


def test_partition_stalls_but_heals(topology):
    baseline, _ = run(topology, PageRankProgram(iterations=8))
    chaos, registry = run(
        topology, PageRankProgram(iterations=8),
        faults=FaultPlan(
            seed=SEED,
            # Cut off half the cluster so traffic always crosses the cut.
            partitions=((1, 4, frozenset(range(max(1, MACHINES // 2)))),),
        ),
    )
    assert_bit_identical(baseline, chaos)
    assert registry.counter("faults.partition.blocked.total").value > 0
    assert chaos.elapsed > baseline.elapsed


def test_chaos_run_is_reproducible(topology):
    first, _ = run(topology, PageRankProgram(iterations=8),
                   faults=chaos_plan())
    second, _ = run(topology, PageRankProgram(iterations=8),
                    faults=chaos_plan())
    assert_bit_identical(first, second)
    assert first.restarts == second.restarts
    assert [r.elapsed for r in first.supersteps] == \
        [r.elapsed for r in second.supersteps]
