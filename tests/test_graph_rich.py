"""Tests for StructEdge and HyperEdge graphs (Section 4.1)."""

import pytest

from repro.errors import QueryError
from repro.graph.rich import (
    HyperGraphBuilder,
    RichGraphBuilder,
)


class TestRichGraph:
    @pytest.fixture
    def graph(self, cloud):
        builder = RichGraphBuilder(cloud)
        builder.add_node(1, "Alice")
        builder.add_node(2, "Bob")
        builder.add_node(3, "Carol")
        builder.add_edge(1, 2, kind="knows", weight=0.9)
        builder.add_edge(1, 3, kind="works-with", weight=0.5)
        builder.add_edge(2, 3, kind="knows", weight=0.2)
        return builder.finalize()

    def test_names(self, graph):
        assert graph.name(1) == "Alice"
        assert graph.name(3) == "Carol"

    def test_relations_carry_rich_data(self, graph):
        relations = graph.relations(1)
        assert len(relations) == 2
        kinds = {r.kind for r in relations}
        assert kinds == {"knows", "works-with"}
        for relation in relations:
            assert 1 in (relation.source, relation.target)

    def test_edge_cells_are_real_cells(self, graph):
        relation = graph.relations(1)[0]
        assert graph.cloud.contains(relation.cell_id)

    def test_neighbors_by_kind(self, graph):
        assert graph.neighbors(1) == [2, 3]
        assert graph.neighbors(1, kind="knows") == [2]
        assert graph.neighbors(3, kind="knows") == [2]

    def test_edge_weight(self, graph):
        assert graph.edge_weight(1, 2) == pytest.approx(0.9)
        assert graph.edge_weight(3, 2) == pytest.approx(0.2)
        with pytest.raises(QueryError):
            graph.edge_weight(1, 99)

    def test_reweight_in_place(self, graph):
        relation = next(r for r in graph.relations(1) if r.kind == "knows")
        graph.reweight(relation.cell_id, 0.42)
        assert graph.edge_weight(1, 2) == pytest.approx(0.42)

    def test_node_id_range_guard(self, cloud):
        builder = RichGraphBuilder(cloud)
        with pytest.raises(QueryError, match="reserved"):
            builder.add_node(1 << 62)

    def test_finalize_once(self, cloud):
        builder = RichGraphBuilder(cloud)
        builder.add_edge(1, 2)
        builder.finalize()
        with pytest.raises(QueryError):
            builder.finalize()


class TestHyperGraph:
    @pytest.fixture
    def hypergraph(self, cloud):
        builder = HyperGraphBuilder(cloud)
        builder.add_member(1, "Ada")
        builder.add_member(2, "Bob")
        builder.add_member(3, "Cid")
        builder.add_member(4, "Dot")
        builder.add_group("paper-A", [1, 2, 3])
        builder.add_group("paper-B", [3, 4])
        return builder.finalize()

    def test_membership_both_directions(self, hypergraph):
        group_a = hypergraph.group_ids[0]
        assert hypergraph.members_of(group_a) == [1, 2, 3]
        assert hypergraph.label_of(group_a) == "paper-A"
        assert hypergraph.groups_of(3) == hypergraph.group_ids

    def test_co_members(self, hypergraph):
        assert hypergraph.co_members(1) == [2, 3]
        assert hypergraph.co_members(3) == [1, 2, 4]
        assert hypergraph.co_members(4) == [3]

    def test_two_section_expansion(self, hypergraph):
        edges = hypergraph.two_section_edges()
        assert edges == [(1, 2), (1, 3), (2, 3), (3, 4)]

    def test_two_section_feeds_analytics(self, hypergraph, cloud):
        """The clique expansion plugs into the ordinary analytics stack."""
        from repro.config import ClusterConfig
        from repro.memcloud import MemoryCloud
        from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
        from repro.algorithms import wcc

        plain_cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=3))
        builder = GraphBuilder(plain_cloud, plain_graph_schema(directed=False))
        builder.add_edges(hypergraph.two_section_edges())
        run = wcc(CsrTopology(builder.finalize()))
        assert run.component_count == 1  # papers A and B share author 3

    def test_empty_group_rejected(self, cloud):
        builder = HyperGraphBuilder(cloud)
        with pytest.raises(QueryError):
            builder.add_group("empty", [])

    def test_member_cells_in_cloud(self, hypergraph):
        for member in hypergraph.member_ids:
            assert hypergraph.cloud.contains(member)
        for group in hypergraph.group_ids:
            assert hypergraph.cloud.contains(group)
