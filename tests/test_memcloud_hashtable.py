"""Tests for the per-trunk open-addressing hash table.

Every test runs against both storage backends (Python lists and numpy
arrays); a dedicated class additionally proves that the two backends
produce bit-identical probe statistics under identical op sequences —
the property the trunk-count ablation and the bulk-path shadow
verification both rely on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memcloud.hashtable import (
    NumpyTrunkHashTable,
    TrunkHashTable,
    make_trunk_hashtable,
)

UID = st.integers(min_value=0, max_value=2**63 - 1)


@pytest.fixture(params=["list", "numpy"])
def storage(request):
    return request.param


def make_table(storage, initial_capacity=16):
    return make_trunk_hashtable(storage, initial_capacity)


class TestFactory:
    def test_list_backend(self):
        table = make_trunk_hashtable("list")
        assert type(table) is TrunkHashTable
        assert table.storage == "list"

    def test_numpy_backend(self):
        table = make_trunk_hashtable("numpy")
        assert type(table) is NumpyTrunkHashTable
        assert table.storage == "numpy"

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_trunk_hashtable("redis")


class TestBasics:
    def test_set_get(self, storage):
        table = make_table(storage)
        table.set(42, 7)
        assert table.get(42) == 7

    def test_missing_returns_default(self, storage):
        table = make_table(storage)
        assert table.get(1) is None
        assert table.get(1, -1) == -1

    def test_contains(self, storage):
        table = make_table(storage)
        table.set(5, 0)
        assert 5 in table
        assert 6 not in table

    def test_overwrite(self, storage):
        table = make_table(storage)
        table.set(5, 1)
        table.set(5, 2)
        assert table.get(5) == 2
        assert len(table) == 1

    def test_delete(self, storage):
        table = make_table(storage)
        table.set(5, 1)
        assert table.delete(5)
        assert 5 not in table
        assert len(table) == 0

    def test_delete_missing(self, storage):
        table = make_table(storage)
        assert not table.delete(5)

    def test_negative_value_rejected(self, storage):
        table = make_table(storage)
        with pytest.raises(ValueError):
            table.set(1, -1)

    def test_items_and_keys(self, storage):
        table = make_table(storage)
        expected = {i: i * 10 for i in range(20)}
        for key, value in expected.items():
            table.set(key, value)
        assert dict(table.items()) == expected
        assert sorted(table.keys()) == sorted(expected)


class TestGrowth:
    def test_grows_past_initial_capacity(self, storage):
        table = make_table(storage, initial_capacity=16)
        for i in range(1000):
            table.set(i, i)
        assert len(table) == 1000
        assert all(table.get(i) == i for i in range(1000))
        assert table.capacity >= 1024

    def test_tombstone_reuse_without_growth(self, storage):
        table = make_table(storage, initial_capacity=64)
        # Churn: insert/delete cycles should not balloon capacity.
        for round_ in range(50):
            for i in range(30):
                table.set(i, round_)
            for i in range(30):
                table.delete(i)
        assert table.capacity <= 256

    def test_probe_stats_exposed(self, storage):
        table = make_table(storage)
        for i in range(100):
            table.set(i, i)
        assert table.lookup_count >= 100
        assert table.mean_probe_length >= 1.0

    def test_fuller_table_probes_more(self, storage):
        # The paper's rationale for many trunks: conflict probability
        # grows with load.  Compare mean probes at low vs high load in a
        # fixed-capacity regime by disabling growth via small data.
        sparse = make_table(storage, initial_capacity=4096)
        for i in range(100):
            sparse.set(i, i)
        sparse.probe_count = sparse.lookup_count = 0
        for i in range(100):
            sparse.get(i)
        dense = make_table(storage, initial_capacity=4096)
        for i in range(2500):
            dense.set(i, i)
        dense.probe_count = dense.lookup_count = 0
        for i in range(2500):
            dense.get(i)
        assert dense.mean_probe_length >= sparse.mean_probe_length


class TestBulkPrimitives:
    def test_has_key_does_not_record(self, storage):
        table = make_table(storage)
        table.set(7, 0)
        lookups, probes = table.lookup_count, table.probe_count
        assert table.has_key(7)
        assert not table.has_key(8)
        assert table.lookup_count == lookups
        assert table.probe_count == probes

    def test_has_key_vs_contains(self, storage):
        table = make_table(storage)
        for i in range(50):
            table.set(i, i)
        table.delete(17)
        for key in range(60):
            assert table.has_key(key) == (key in table)

    def test_insert_fresh_matches_get_then_set_counters(self, storage):
        # insert_fresh claims to record exactly the statistics of the
        # scalar get-miss + set pair — verify against a replay.
        keys = [k * 7919 for k in range(200)]
        fused = make_table(storage)
        for i, key in enumerate(keys):
            fused.insert_fresh(key, i)
        replay = make_table(storage)
        for i, key in enumerate(keys):
            assert replay.get(key) is None
            replay.set(key, i)
        assert fused.lookup_count == replay.lookup_count
        assert fused.probe_count == replay.probe_count
        assert dict(fused.items()) == dict(replay.items())
        assert fused.capacity == replay.capacity

    def test_insert_fresh_rejects_negative_value(self, storage):
        table = make_table(storage)
        with pytest.raises(ValueError):
            table.insert_fresh(1, -1)

    def test_reserve_prevents_incremental_resizes(self, storage):
        table = make_table(storage)
        table.reserve(1000)
        capacity = table.capacity
        assert capacity >= 1024
        for i in range(1000):
            table.insert_fresh(i, i)
        assert table.capacity == capacity  # no resize happened

    def test_reserve_never_shrinks(self, storage):
        table = make_table(storage, initial_capacity=1024)
        table.reserve(10)
        assert table.capacity == 1024

    def test_reserve_keeps_contents_and_counters(self, storage):
        table = make_table(storage)
        for i in range(100):
            table.set(i, i)
        lookups, probes = table.lookup_count, table.probe_count
        table.reserve(5000)
        assert table.lookup_count == lookups
        assert table.probe_count == probes
        assert dict(table.items()) == {i: i for i in range(100)}

    def test_reserve_compacts_tombstones(self, storage):
        table = make_table(storage, initial_capacity=64)
        for i in range(30):
            table.set(i, i)
        for i in range(30):
            table.delete(i)
        table.set(99, 1)
        table.reserve(100)
        assert table._tombstones == 0
        assert dict(table.items()) == {99: 1}


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["set", "del"]),
                              st.integers(0, 50)), max_size=300))
    def test_matches_dict_semantics(self, ops):
        for storage in ("list", "numpy"):
            table = make_table(storage)
            reference: dict[int, int] = {}
            for i, (op, key) in enumerate(ops):
                if op == "set":
                    table.set(key, i)
                    reference[key] = i
                else:
                    assert table.delete(key) == (key in reference)
                    reference.pop(key, None)
            assert len(table) == len(reference)
            assert dict(table.items()) == reference
            for key in range(51):
                assert table.get(key) == reference.get(key)


class TestBackendEquivalence:
    """The two storage backends must be observationally identical."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["set", "del", "get", "fresh", "reserve"]),
        st.integers(0, 40)), max_size=250))
    def test_identical_counters_and_contents(self, ops):
        list_table = make_table("list")
        numpy_table = make_table("numpy")
        for i, (op, key) in enumerate(ops):
            if op == "set":
                list_table.set(key, i)
                numpy_table.set(key, i)
            elif op == "del":
                assert list_table.delete(key) == numpy_table.delete(key)
            elif op == "get":
                assert list_table.get(key) == numpy_table.get(key)
            elif op == "fresh":
                if list_table.has_key(key):
                    continue
                list_table.insert_fresh(key, i)
                numpy_table.insert_fresh(key, i)
            else:
                list_table.reserve(key * 8)
                numpy_table.reserve(key * 8)
        assert list_table.probe_count == numpy_table.probe_count
        assert list_table.lookup_count == numpy_table.lookup_count
        assert list_table.capacity == numpy_table.capacity
        assert dict(list_table.items()) == dict(numpy_table.items())

    def test_large_identical_sequence(self):
        list_table = make_table("list")
        numpy_table = make_table("numpy")
        for i in range(3000):
            key = (i * 2654435761) % (2**40)
            list_table.set(key, i)
            numpy_table.set(key, i)
            if i % 3 == 0:
                list_table.delete(key)
                numpy_table.delete(key)
        assert list_table.probe_count == numpy_table.probe_count
        assert list_table.lookup_count == numpy_table.lookup_count
        assert dict(list_table.items()) == dict(numpy_table.items())
