"""Tests for the per-trunk open-addressing hash table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memcloud.hashtable import TrunkHashTable

UID = st.integers(min_value=0, max_value=2**63 - 1)


class TestBasics:
    def test_set_get(self):
        table = TrunkHashTable()
        table.set(42, 7)
        assert table.get(42) == 7

    def test_missing_returns_default(self):
        table = TrunkHashTable()
        assert table.get(1) is None
        assert table.get(1, -1) == -1

    def test_contains(self):
        table = TrunkHashTable()
        table.set(5, 0)
        assert 5 in table
        assert 6 not in table

    def test_overwrite(self):
        table = TrunkHashTable()
        table.set(5, 1)
        table.set(5, 2)
        assert table.get(5) == 2
        assert len(table) == 1

    def test_delete(self):
        table = TrunkHashTable()
        table.set(5, 1)
        assert table.delete(5)
        assert 5 not in table
        assert len(table) == 0

    def test_delete_missing(self):
        table = TrunkHashTable()
        assert not table.delete(5)

    def test_negative_value_rejected(self):
        table = TrunkHashTable()
        with pytest.raises(ValueError):
            table.set(1, -1)

    def test_items_and_keys(self):
        table = TrunkHashTable()
        expected = {i: i * 10 for i in range(20)}
        for key, value in expected.items():
            table.set(key, value)
        assert dict(table.items()) == expected
        assert sorted(table.keys()) == sorted(expected)


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        table = TrunkHashTable(initial_capacity=16)
        for i in range(1000):
            table.set(i, i)
        assert len(table) == 1000
        assert all(table.get(i) == i for i in range(1000))
        assert table.capacity >= 1024

    def test_tombstone_reuse_without_growth(self):
        table = TrunkHashTable(initial_capacity=64)
        # Churn: insert/delete cycles should not balloon capacity.
        for round_ in range(50):
            for i in range(30):
                table.set(i, round_)
            for i in range(30):
                table.delete(i)
        assert table.capacity <= 256

    def test_probe_stats_exposed(self):
        table = TrunkHashTable()
        for i in range(100):
            table.set(i, i)
        assert table.lookup_count >= 100
        assert table.mean_probe_length >= 1.0

    def test_fuller_table_probes_more(self):
        # The paper's rationale for many trunks: conflict probability
        # grows with load.  Compare mean probes at low vs high load in a
        # fixed-capacity regime by disabling growth via small data.
        sparse = TrunkHashTable(initial_capacity=4096)
        for i in range(100):
            sparse.set(i, i)
        sparse.probe_count = sparse.lookup_count = 0
        for i in range(100):
            sparse.get(i)
        dense = TrunkHashTable(initial_capacity=4096)
        for i in range(2500):
            dense.set(i, i)
        dense.probe_count = dense.lookup_count = 0
        for i in range(2500):
            dense.get(i)
        assert dense.mean_probe_length >= sparse.mean_probe_length


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["set", "del"]),
                              st.integers(0, 50)), max_size=300))
    def test_matches_dict_semantics(self, ops):
        table = TrunkHashTable()
        reference: dict[int, int] = {}
        for i, (op, key) in enumerate(ops):
            if op == "set":
                table.set(key, i)
                reference[key] = i
            else:
                assert table.delete(key) == (key in reference)
                reference.pop(key, None)
        assert len(table) == len(reference)
        assert dict(table.items()) == reference
        for key in range(51):
            assert table.get(key) == reference.get(key)
