"""Tests for the TSL runtime type system and blob layouts."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaMismatchError, TslTypeError
from repro.tsl.types import (
    BOOL, BYTE, DOUBLE, FLOAT, INT, LONG, SHORT, STRING,
    BitArrayType, ListType, StructType,
)


class TestPrimitives:
    @pytest.mark.parametrize("tsl_type,value", [
        (BYTE, 200), (BOOL, True), (SHORT, -1234), (INT, -2**31),
        (LONG, 2**62), (FLOAT, 1.5), (DOUBLE, 3.141592653589793),
    ])
    def test_roundtrip(self, tsl_type, value):
        blob = tsl_type.encode(value)
        assert len(blob) == tsl_type.fixed_size
        decoded, offset = tsl_type.decode(blob, 0)
        assert decoded == pytest.approx(value)
        assert offset == tsl_type.fixed_size

    def test_out_of_range_rejected(self):
        with pytest.raises(SchemaMismatchError):
            BYTE.encode(300)
        with pytest.raises(SchemaMismatchError):
            INT.encode(2**40)

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaMismatchError):
            LONG.encode("not a number")

    def test_write_fixed_in_place(self):
        buf = bytearray(8)
        LONG.write_fixed(buf, 0, 99)
        assert LONG.decode(buf, 0)[0] == 99

    def test_decode_short_buffer(self):
        with pytest.raises(SchemaMismatchError):
            DOUBLE.decode(b"\x00\x00", 0)

    def test_defaults_are_zero(self):
        assert INT.default() == 0
        assert DOUBLE.default() == 0.0
        assert BOOL.default() is False


class TestString:
    @given(st.text(max_size=200))
    def test_roundtrip(self, text):
        blob = STRING.encode(text)
        decoded, end = STRING.decode(blob, 0)
        assert decoded == text
        assert end == len(blob)
        assert STRING.skip(blob, 0) == end

    def test_utf8(self):
        blob = STRING.encode("héllo 世界")
        assert STRING.decode(blob, 0)[0] == "héllo 世界"

    def test_not_fixed(self):
        assert STRING.fixed_size is None
        with pytest.raises(TslTypeError):
            STRING.write_fixed(bytearray(8), 0, "x")

    def test_non_string_rejected(self):
        with pytest.raises(SchemaMismatchError):
            STRING.encode(42)

    def test_truncated_blob(self):
        blob = STRING.encode("abcdef")
        with pytest.raises(SchemaMismatchError):
            STRING.decode(blob[:3], 0)


class TestList:
    @given(st.lists(st.integers(-2**62, 2**62), max_size=50))
    def test_roundtrip_longs(self, values):
        list_type = ListType(LONG)
        blob = list_type.encode(values)
        decoded, end = list_type.decode(blob, 0)
        assert decoded == values
        assert end == len(blob)
        assert list_type.skip(blob, 0) == end

    @given(st.lists(st.text(max_size=20), max_size=20))
    def test_roundtrip_strings(self, values):
        list_type = ListType(STRING)
        blob = list_type.encode(values)
        assert list_type.decode(blob, 0)[0] == values
        assert list_type.skip(blob, 0) == len(blob)

    def test_nested_lists(self):
        matrix_type = ListType(ListType(INT))
        matrix = [[1, 2], [], [3]]
        blob = matrix_type.encode(matrix)
        assert matrix_type.decode(blob, 0)[0] == matrix

    def test_non_list_rejected(self):
        with pytest.raises(SchemaMismatchError):
            ListType(INT).encode(5)

    def test_name(self):
        assert ListType(LONG).name == "List<long>"


class TestBitArray:
    @given(st.lists(st.booleans(), max_size=100))
    def test_roundtrip(self, bits):
        bit_type = BitArrayType()
        blob = bit_type.encode(bits)
        assert bit_type.decode(blob, 0)[0] == bits
        assert bit_type.skip(blob, 0) == len(blob)

    def test_packing_density(self):
        blob = BitArrayType().encode([True] * 64)
        assert len(blob) == 1 + 8  # varint count + 8 packed bytes


class TestStruct:
    def make_person(self) -> StructType:
        return StructType("Person", [
            ("Id", LONG), ("Age", INT), ("Name", STRING),
            ("Friends", ListType(LONG)),
        ])

    def test_roundtrip(self):
        person = self.make_person()
        record = {"Id": 7, "Age": 30, "Name": "Ada", "Friends": [1, 2]}
        blob = person.encode(record)
        assert person.decode(blob, 0)[0] == record

    def test_partial_record_uses_defaults(self):
        person = self.make_person()
        blob = person.encode({"Id": 7})
        decoded = person.decode(blob, 0)[0]
        assert decoded == {"Id": 7, "Age": 0, "Name": "", "Friends": []}

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaMismatchError, match="unknown fields"):
            self.make_person().encode({"Nope": 1})

    def test_fixed_size_struct(self):
        point = StructType("Point", [("X", DOUBLE), ("Y", DOUBLE)])
        assert point.fixed_size == 16
        buf = bytearray(16)
        point.write_fixed(buf, 0, {"X": 1.0, "Y": 2.0})
        assert point.decode(buf, 0)[0] == {"X": 1.0, "Y": 2.0}

    def test_variable_struct_not_fixed(self):
        assert self.make_person().fixed_size is None

    def test_field_offset_walks_variable_fields(self):
        person = self.make_person()
        record = {"Id": 1, "Age": 2, "Name": "long name here", "Friends": [5]}
        blob = person.encode(record)
        offset = person.field_offset(blob, "Friends")
        friends_type = person.field_type("Friends")
        assert friends_type.decode(blob, offset)[0] == [5]

    def test_field_offset_unknown_field(self):
        person = self.make_person()
        blob = person.encode(person.default())
        with pytest.raises(TslTypeError):
            person.field_offset(blob, "Ghost")

    def test_nested_struct_roundtrip(self):
        inner = StructType("Inner", [("A", INT)])
        outer = StructType("Outer", [("Pre", STRING), ("In", inner)])
        blob = outer.encode({"Pre": "xy", "In": {"A": 9}})
        assert outer.decode(blob, 0)[0] == {"Pre": "xy", "In": {"A": 9}}

    @given(st.lists(st.tuples(st.integers(-2**31, 2**31 - 1),
                              st.text(max_size=10)), max_size=15))
    def test_list_of_structs(self, rows):
        row_type = StructType("Row", [("K", INT), ("V", STRING)])
        table_type = ListType(row_type)
        records = [{"K": k, "V": v} for k, v in rows]
        blob = table_type.encode(records)
        assert table_type.decode(blob, 0)[0] == records
