"""Tests for repro.utils.varint — including the pinned cross-test.

``utils/varint.py`` is the single LEB128 implementation in the tree:
the vectorized batch forms (``read_varints``/``encode_varints``) and
the scalar codec must agree byte for byte, and ``tsl/batch.py``'s
``_read_varints`` must be a thin wrapper that maps
:class:`VarintBatchError` onto its scalar-fallback signal rather than a
second implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tsl import batch as tsl_batch
from repro.utils.varint import (
    VarintBatchError,
    decode_varint,
    encode_varint,
    encode_varints,
    read_varints,
    varint_lengths,
    zigzag_decode,
    zigzag_encode,
)

U64 = st.integers(min_value=0, max_value=2 ** 64 - 1)
I64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)

# Known-answer vectors: value -> LEB128 bytes.  These pin the wire
# format itself, not just scalar/vector agreement.
PINNED = [
    (0, b"\x00"),
    (1, b"\x01"),
    (127, b"\x7f"),
    (128, b"\x80\x01"),
    (300, b"\xac\x02"),
    (16383, b"\xff\x7f"),
    (16384, b"\x80\x80\x01"),
    (2 ** 32 - 1, b"\xff\xff\xff\xff\x0f"),
    (2 ** 63 - 1, b"\xff\xff\xff\xff\xff\xff\xff\xff\x7f"),
    (2 ** 64 - 1, b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
]


class TestEncode:
    def test_zero_is_one_byte(self):
        assert encode_varint(0) == b"\x00"

    def test_small_values_single_byte(self):
        for value in range(128):
            assert len(encode_varint(value)) == 1

    def test_128_takes_two_bytes(self):
        assert encode_varint(128) == b"\x80\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_64_bit_max(self):
        value = 2**64 - 1
        assert len(encode_varint(value)) == 10


class TestDecode:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.lists(st.integers(min_value=0, max_value=2**40),
                    min_size=1, max_size=20))
    def test_roundtrip_stream(self, values):
        buf = b"".join(encode_varint(v) for v in values)
        offset = 0
        out = []
        for _ in values:
            value, offset = decode_varint(buf, offset)
            out.append(value)
        assert out == values
        assert offset == len(buf)

    def test_decode_with_offset(self):
        buf = b"\xff" + encode_varint(300)
        value, offset = decode_varint(buf, 1)
        assert value == 300
        assert offset == len(buf)

    def test_truncated_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(ValueError, match="64 bits"):
            decode_varint(b"\x80" * 10 + b"\x01")

    def test_works_on_bytearray_and_memoryview(self):
        encoded = bytearray(encode_varint(77))
        assert decode_varint(encoded)[0] == 77
        assert decode_varint(memoryview(encoded))[0] == 77


class TestPinnedVectors:
    @pytest.mark.parametrize("value,expected", PINNED)
    def test_scalar_encode(self, value, expected):
        assert encode_varint(value) == expected

    @pytest.mark.parametrize("value,expected", PINNED)
    def test_scalar_decode(self, value, expected):
        assert decode_varint(expected, 0) == (value, len(expected))

    def test_vector_encode_matches_pins(self):
        values = np.array([v for v, _ in PINNED], dtype=np.uint64)
        stream, lengths = encode_varints(values)
        assert stream.tobytes() == b"".join(e for _, e in PINNED)
        assert lengths.tolist() == [len(e) for _, e in PINNED]

    def test_vector_decode_matches_pins(self):
        """read_varints agrees with the pins for values below 2**63
        (int64-representable; larger ones defer to the scalar path)."""
        small = [(v, e) for v, e in PINNED if v < 2 ** 63]
        blob = b"".join(e for _, e in small)
        buf = np.frombuffer(blob, dtype=np.uint8)
        starts = np.cumsum([0] + [len(e) for _, e in small[:-1]])
        limits = np.full(len(small), len(blob), dtype=np.int64)
        values, out = read_varints(buf, np.asarray(starts, dtype=np.int64),
                                   limits)
        assert values.tolist() == [v for v, _ in small]
        assert out.tolist() == np.cumsum(
            [len(e) for _, e in small]).tolist()


class TestScalarVectorAgreement:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(U64, min_size=1, max_size=64))
    def test_encode_agreement(self, values):
        stream, lengths = encode_varints(np.asarray(values, dtype=np.uint64))
        assert stream.tobytes() == b"".join(
            encode_varint(v) for v in values)
        assert lengths.tolist() == [len(encode_varint(v)) for v in values]

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 63 - 1),
                    min_size=1, max_size=64))
    def test_decode_agreement(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        buf = np.frombuffer(blob, dtype=np.uint8)
        starts = np.zeros(len(values), dtype=np.int64)
        sizes = [len(encode_varint(v)) for v in values]
        np.cumsum(sizes[:-1], out=starts[1:])
        limits = np.full(len(values), len(blob), dtype=np.int64)
        decoded, out = read_varints(buf, starts, limits)
        assert decoded.tolist() == values
        scalar = []
        pos = 0
        while pos < len(blob):
            value, pos = decode_varint(blob, pos)
            scalar.append(value)
        assert decoded.tolist() == scalar

    def test_lengths_match_scalar(self):
        values = np.array([0, 1, 127, 128, 2 ** 62, 2 ** 64 - 1],
                          dtype=np.uint64)
        assert varint_lengths(values).tolist() == \
            [len(encode_varint(int(v))) for v in values]


class TestBatchWrapperDelegates:
    """tsl/batch._read_varints is a wrapper, not a reimplementation."""

    def test_same_values_on_valid_input(self):
        blob = b"".join(encode_varint(v) for v in [5, 300, 0, 2 ** 40])
        buf = np.frombuffer(blob, dtype=np.uint8)
        starts = np.array([0, 1, 3, 4], dtype=np.int64)
        limits = np.full(4, len(blob), dtype=np.int64)
        via_utils = read_varints(buf, starts, limits)
        via_batch = tsl_batch._read_varints(buf, starts, limits)
        assert via_batch[0].tolist() == via_utils[0].tolist()
        assert via_batch[1].tolist() == via_utils[1].tolist()

    def test_truncated_maps_to_scalar_fallback(self):
        buf = np.frombuffer(b"\x80", dtype=np.uint8)  # continuation, no end
        starts = np.array([0], dtype=np.int64)
        limits = np.array([1], dtype=np.int64)
        with pytest.raises(VarintBatchError):
            read_varints(buf, starts, limits)
        with pytest.raises(tsl_batch._ScalarFallback):
            tsl_batch._read_varints(buf, starts, limits)

    def test_tenth_byte_maps_to_scalar_fallback(self):
        blob = encode_varint(2 ** 64 - 1)  # ten bytes
        buf = np.frombuffer(blob, dtype=np.uint8)
        starts = np.array([0], dtype=np.int64)
        limits = np.array([len(blob)], dtype=np.int64)
        with pytest.raises(VarintBatchError):
            read_varints(buf, starts, limits)
        with pytest.raises(tsl_batch._ScalarFallback):
            tsl_batch._read_varints(buf, starts, limits)


class TestZigzag:
    @settings(max_examples=80, deadline=None)
    @given(I64)
    def test_round_trip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_small_magnitudes_stay_small(self):
        # The property the delta layout relies on: |d| <= 63 fits one byte.
        for delta in range(-63, 64):
            assert len(encode_varint(zigzag_encode(delta))) == 1

    def test_pinned_codes(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == \
            [0, 1, 2, 3, 4]
        assert zigzag_encode(-(2 ** 63)) == 2 ** 64 - 1
