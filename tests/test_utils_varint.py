"""Tests for repro.utils.varint."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.varint import decode_varint, encode_varint


class TestEncode:
    def test_zero_is_one_byte(self):
        assert encode_varint(0) == b"\x00"

    def test_small_values_single_byte(self):
        for value in range(128):
            assert len(encode_varint(value)) == 1

    def test_128_takes_two_bytes(self):
        assert encode_varint(128) == b"\x80\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_64_bit_max(self):
        value = 2**64 - 1
        assert len(encode_varint(value)) == 10


class TestDecode:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.lists(st.integers(min_value=0, max_value=2**40),
                    min_size=1, max_size=20))
    def test_roundtrip_stream(self, values):
        buf = b"".join(encode_varint(v) for v in values)
        offset = 0
        out = []
        for _ in values:
            value, offset = decode_varint(buf, offset)
            out.append(value)
        assert out == values
        assert offset == len(buf)

    def test_decode_with_offset(self):
        buf = b"\xff" + encode_varint(300)
        value, offset = decode_varint(buf, 1)
        assert value == 300
        assert offset == len(buf)

    def test_truncated_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(ValueError, match="64 bits"):
            decode_varint(b"\x80" * 10 + b"\x01")

    def test_works_on_bytearray_and_memoryview(self):
        encoded = bytearray(encode_varint(77))
        assert decode_varint(encoded)[0] == 77
        assert decode_varint(memoryview(encoded))[0] == 77
