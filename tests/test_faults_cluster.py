"""Cluster-level fault injection: crashes detected by heartbeat, RPC
retries under drops, partition timeouts, TFS replica corruption."""

import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.cluster import TrinityCluster
from repro.errors import MachineDownError, RecoveryError
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry


def make_cluster(plan=None, machines=4):
    registry = MetricsRegistry()
    cluster = TrinityCluster(
        ClusterConfig(machines=machines, trunk_bits=5,
                      memory=MemoryParams(trunk_size=256 * 1024)),
        registry=registry, faults=plan,
    )
    return cluster, registry


class TestRunChaos:
    def test_requires_a_plan(self):
        cluster, _ = make_cluster()
        with pytest.raises(RecoveryError):
            cluster.run_chaos()

    def test_crash_detected_and_recovered_without_data_loss(self):
        plan = FaultPlan(seed=11, crashes=((3, 1),))
        cluster, registry = make_cluster(plan)
        client = cluster.new_client()
        payloads = {uid: bytes([uid]) * 8 for uid in range(60)}
        for uid, value in payloads.items():
            client.put_cell(uid, value)
        cluster.backup_to_tfs()
        for uid, value in {u: bytes([u + 1]) * 5
                           for u in range(20)}.items():
            client.put_cell(uid, value)          # post-backup online writes
            payloads[uid] = value

        recovered = cluster.run_chaos(max_ticks=10)

        assert recovered == [1]
        assert not cluster.slaves[1].alive
        assert registry.counter("faults.crash.total").value == 1
        assert cluster.recovery.recoveries == 1
        # Committed state survived: TFS images plus buffered-log replay.
        for uid, value in payloads.items():
            assert client.get_cell(uid) == value

    def test_leader_crash_triggers_reelection(self):
        cluster, _ = make_cluster()
        leader = cluster.leader_id
        plan = FaultPlan(seed=1, crashes=((2, leader),))
        cluster, _ = make_cluster(plan)
        cluster.run_chaos(max_ticks=8)
        assert cluster.leader_id != leader
        assert cluster.slaves[cluster.leader_id].alive

    def test_crash_schedule_is_consume_once(self):
        plan = FaultPlan(seed=2, crashes=((2, 0),))
        cluster, _ = make_cluster(plan)
        assert cluster.run_chaos(max_ticks=20) == [0]
        # A second sweep finds nothing left to fire.
        assert cluster.run_chaos(max_ticks=5) == []

    def test_refuses_to_kill_the_last_machine(self):
        plan = FaultPlan(seed=3, crashes=((1, 0), (2, 1)))
        cluster, _ = make_cluster(plan, machines=2)
        recovered = cluster.run_chaos(max_ticks=10)
        # Machine 0 dies; machine 1 is the last one standing and is
        # spared, so the cluster still serves.
        assert recovered == [0]
        assert cluster.alive_machines() == [1]


class TestRpcFaults:
    def test_drops_are_retried_and_metered(self):
        plan = FaultPlan(seed=5, drop_rate=0.2)
        cluster, registry = make_cluster(plan)
        client = cluster.new_client()
        for uid in range(80):
            client.put_cell(uid, bytes([uid]) * 4)
        for uid in range(80):
            assert client.get_cell(uid) == bytes([uid]) * 4
        assert registry.counter("rpc.retry.total").value > 0
        assert registry.counter("faults.drop.total").value > 0
        # Backoff time was charged to the simulated clock.
        assert cluster.network.clock.now > 0

    def test_partition_times_out_remote_rpc(self):
        # Every machine is cut off from the clients' side of the fabric.
        plan = FaultPlan(seed=6, partitions=((0, 1 << 30, {0, 1, 2, 3}),),
                         max_attempts=3)
        cluster, registry = make_cluster(plan)
        client = cluster.new_client()
        with pytest.raises(MachineDownError):
            client.put_cell(1, b"x")
        assert registry.counter("rpc.timeout.total").value > 0


class TestTfsCorruption:
    def test_corrupt_replica_fails_over(self):
        plan = FaultPlan(seed=8, corrupt_rate=1.0)
        cluster, registry = make_cluster(plan)
        client = cluster.new_client()
        for uid in range(30):
            client.put_cell(uid, bytes([uid]) * 16)
        cluster.backup_to_tfs()
        # Every block read rejects its first replica and falls over to
        # the second; with replication 2 nothing is lost.
        assert cluster.restore_from_tfs() > 0
        assert registry.counter("faults.corrupt.total").value > 0
        for uid in range(30):
            assert client.get_cell(uid) == bytes([uid]) * 16

    def test_corruption_survives_machine_recovery(self):
        plan = FaultPlan(seed=9, crashes=((3, 2),), corrupt_rate=0.5)
        cluster, _ = make_cluster(plan)
        client = cluster.new_client()
        payloads = {uid: bytes([uid, uid]) * 6 for uid in range(50)}
        for uid, value in payloads.items():
            client.put_cell(uid, value)
        cluster.backup_to_tfs()
        assert cluster.run_chaos(max_ticks=10) == [2]
        for uid, value in payloads.items():
            assert client.get_cell(uid) == value
