"""Property tests pinning the batch column decoders to the scalar path.

For any struct and any batch of records: encode each record with the
scalar TSL encoder, decode columns with
:class:`repro.tsl.batch.BatchStructDecoder`, and the results must equal
per-blob scalar decodes — including empty lists, varint count
boundaries (127/128 elements), and extreme element values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaMismatchError
from repro.tsl import (
    BOOL,
    BYTE,
    DOUBLE,
    INT,
    LONG,
    SHORT,
    STRING,
    ListType,
    StructType,
)
from repro.tsl.batch import batch_decoder_for

I64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
I32 = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
I16 = st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1)
I8 = st.integers(min_value=-128, max_value=127)

PERSON = StructType("Person", [
    ("Name", STRING),
    ("Age", INT),
    ("Friends", ListType(LONG)),
    ("Scores", ListType(DOUBLE)),
])

RECORDS = st.lists(
    st.fixed_dictionaries({
        "Name": st.text(max_size=12),
        "Age": I32,
        "Friends": st.lists(I64, max_size=20),
        "Scores": st.lists(
            st.floats(allow_nan=False, width=64), max_size=6),
    }),
    min_size=1, max_size=30,
)


def scalar_decode(struct_type, blob, field_name):
    field_type = struct_type.field_type(field_name)
    offset = struct_type.field_offset(blob, field_name)
    value, _ = field_type.decode(blob, offset)
    return value


class TestColumnRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(RECORDS)
    def test_all_columns_match_scalar(self, records):
        decoder = batch_decoder_for(PERSON)
        blobs = [PERSON.encode(r) for r in records]
        for field_name in PERSON.field_names():
            column = decoder.decode_column(blobs, field_name)
            assert column == [scalar_decode(PERSON, b, field_name)
                              for b in blobs]

    @settings(max_examples=60, deadline=None)
    @given(RECORDS)
    def test_csr_matches_scalar(self, records):
        decoder = batch_decoder_for(PERSON)
        blobs = [PERSON.encode(r) for r in records]
        indptr, flat = decoder.decode_list_csr(blobs, "Friends")
        assert indptr[0] == 0 and indptr[-1] == len(flat)
        for i, blob in enumerate(blobs):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == \
                scalar_decode(PERSON, blob, "Friends")

    @settings(max_examples=60, deadline=None)
    @given(RECORDS)
    def test_header_counts_match_scalar(self, records):
        decoder = batch_decoder_for(PERSON)
        blobs = [PERSON.encode(r) for r in records]
        counts = decoder.field_counts(blobs, "Friends")
        assert counts.tolist() == [len(r["Friends"]) for r in records]


class TestBoundaries:
    @pytest.mark.parametrize("count", [0, 1, 126, 127, 128, 129, 300])
    def test_varint_count_boundaries(self, count):
        """List counts around the one-byte varint limit."""
        decoder = batch_decoder_for(PERSON)
        record = {"Name": "x" * 130, "Age": 1,
                  "Friends": list(range(count)), "Scores": []}
        blobs = [PERSON.encode(record)] * 3
        indptr, flat = decoder.decode_list_csr(blobs, "Friends")
        assert indptr.tolist() == [count * i for i in range(4)]
        assert flat[:count].tolist() == list(range(count))
        assert decoder.field_counts(blobs, "Friends").tolist() == [count] * 3

    def test_int64_extremes_survive(self):
        decoder = batch_decoder_for(PERSON)
        extremes = [-(2 ** 63), -1, 0, 1, 2 ** 63 - 1]
        blob = PERSON.encode({"Name": "", "Age": 0,
                              "Friends": extremes, "Scores": []})
        _, flat = decoder.decode_list_csr([blob], "Friends")
        assert flat.tolist() == extremes

    def test_empty_batch(self):
        decoder = batch_decoder_for(PERSON)
        indptr, flat = decoder.decode_list_csr([], "Friends")
        assert indptr.tolist() == [0]
        assert len(flat) == 0
        assert decoder.decode_column([], "Name") == []
        assert decoder.field_counts([], "Friends").tolist() == []

    def test_narrow_element_dtypes(self):
        narrow = StructType("Narrow", [
            ("Bytes", ListType(BYTE)),
            ("Shorts", ListType(SHORT)),
            ("Flags", ListType(BOOL)),
        ])
        decoder = batch_decoder_for(narrow)
        record = {"Bytes": [0, 127, 255], "Shorts": [-(2 ** 15), 2 ** 15 - 1],
                  "Flags": [True, False, True]}
        blobs = [narrow.encode(record)] * 2
        for field_name in narrow.field_names():
            column = decoder.decode_column(blobs, field_name)
            assert column == [scalar_decode(narrow, b, field_name)
                              for b in blobs]

    def test_non_list_field_has_no_counts(self):
        decoder = batch_decoder_for(PERSON)
        blob = PERSON.encode({"Name": "a", "Age": 1,
                              "Friends": [], "Scores": []})
        with pytest.raises(SchemaMismatchError):
            decoder.field_counts([blob], "Age")

    def test_truncated_blob_raises(self):
        decoder = batch_decoder_for(PERSON)
        blob = PERSON.encode({"Name": "abc", "Age": 1,
                              "Friends": [1, 2, 3], "Scores": []})
        with pytest.raises(SchemaMismatchError):
            decoder.decode_list_csr([blob[:-5]], "Friends")
