"""Property tests pinning the batch column decoders to the scalar path.

For any struct and any batch of records: encode each record with the
scalar TSL encoder, decode columns with
:class:`repro.tsl.batch.BatchStructDecoder`, and the results must equal
per-blob scalar decodes — including empty lists, varint count
boundaries (127/128 elements), and extreme element values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaMismatchError
from repro.tsl import (
    BOOL,
    BYTE,
    DOUBLE,
    INT,
    LONG,
    SHORT,
    STRING,
    ListType,
    StructType,
)
from repro.tsl.batch import batch_decoder_for

I64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
I32 = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
I16 = st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1)
I8 = st.integers(min_value=-128, max_value=127)

PERSON = StructType("Person", [
    ("Name", STRING),
    ("Age", INT),
    ("Friends", ListType(LONG)),
    ("Scores", ListType(DOUBLE)),
])

RECORDS = st.lists(
    st.fixed_dictionaries({
        "Name": st.text(max_size=12),
        "Age": I32,
        "Friends": st.lists(I64, max_size=20),
        "Scores": st.lists(
            st.floats(allow_nan=False, width=64), max_size=6),
    }),
    min_size=1, max_size=30,
)


def scalar_decode(struct_type, blob, field_name):
    field_type = struct_type.field_type(field_name)
    offset = struct_type.field_offset(blob, field_name)
    value, _ = field_type.decode(blob, offset)
    return value


class TestColumnRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(RECORDS)
    def test_all_columns_match_scalar(self, records):
        decoder = batch_decoder_for(PERSON)
        blobs = [PERSON.encode(r) for r in records]
        for field_name in PERSON.field_names():
            column = decoder.decode_column(blobs, field_name)
            assert column == [scalar_decode(PERSON, b, field_name)
                              for b in blobs]

    @settings(max_examples=60, deadline=None)
    @given(RECORDS)
    def test_csr_matches_scalar(self, records):
        decoder = batch_decoder_for(PERSON)
        blobs = [PERSON.encode(r) for r in records]
        indptr, flat = decoder.decode_list_csr(blobs, "Friends")
        assert indptr[0] == 0 and indptr[-1] == len(flat)
        for i, blob in enumerate(blobs):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == \
                scalar_decode(PERSON, blob, "Friends")

    @settings(max_examples=60, deadline=None)
    @given(RECORDS)
    def test_header_counts_match_scalar(self, records):
        decoder = batch_decoder_for(PERSON)
        blobs = [PERSON.encode(r) for r in records]
        counts = decoder.field_counts(blobs, "Friends")
        assert counts.tolist() == [len(r["Friends"]) for r in records]


class TestBoundaries:
    @pytest.mark.parametrize("count", [0, 1, 126, 127, 128, 129, 300])
    def test_varint_count_boundaries(self, count):
        """List counts around the one-byte varint limit."""
        decoder = batch_decoder_for(PERSON)
        record = {"Name": "x" * 130, "Age": 1,
                  "Friends": list(range(count)), "Scores": []}
        blobs = [PERSON.encode(record)] * 3
        indptr, flat = decoder.decode_list_csr(blobs, "Friends")
        assert indptr.tolist() == [count * i for i in range(4)]
        assert flat[:count].tolist() == list(range(count))
        assert decoder.field_counts(blobs, "Friends").tolist() == [count] * 3

    def test_int64_extremes_survive(self):
        decoder = batch_decoder_for(PERSON)
        extremes = [-(2 ** 63), -1, 0, 1, 2 ** 63 - 1]
        blob = PERSON.encode({"Name": "", "Age": 0,
                              "Friends": extremes, "Scores": []})
        _, flat = decoder.decode_list_csr([blob], "Friends")
        assert flat.tolist() == extremes

    def test_empty_batch(self):
        decoder = batch_decoder_for(PERSON)
        indptr, flat = decoder.decode_list_csr([], "Friends")
        assert indptr.tolist() == [0]
        assert len(flat) == 0
        assert decoder.decode_column([], "Name") == []
        assert decoder.field_counts([], "Friends").tolist() == []

    def test_narrow_element_dtypes(self):
        narrow = StructType("Narrow", [
            ("Bytes", ListType(BYTE)),
            ("Shorts", ListType(SHORT)),
            ("Flags", ListType(BOOL)),
        ])
        decoder = batch_decoder_for(narrow)
        record = {"Bytes": [0, 127, 255], "Shorts": [-(2 ** 15), 2 ** 15 - 1],
                  "Flags": [True, False, True]}
        blobs = [narrow.encode(record)] * 2
        for field_name in narrow.field_names():
            column = decoder.decode_column(blobs, field_name)
            assert column == [scalar_decode(narrow, b, field_name)
                              for b in blobs]

    def test_non_list_field_has_no_counts(self):
        decoder = batch_decoder_for(PERSON)
        blob = PERSON.encode({"Name": "a", "Age": 1,
                              "Friends": [], "Scores": []})
        with pytest.raises(SchemaMismatchError):
            decoder.field_counts([blob], "Age")

    def test_truncated_blob_raises(self):
        decoder = batch_decoder_for(PERSON)
        blob = PERSON.encode({"Name": "abc", "Age": 1,
                              "Friends": [1, 2, 3], "Scores": []})
        with pytest.raises(SchemaMismatchError):
            decoder.decode_list_csr([blob[:-5]], "Friends")


# ---------------------------------------------------------------------------
# Adjacency layouts: the batch decoders over mixed raw / delta-varint /
# bitmap cells must match the scalar path byte for byte.
# ---------------------------------------------------------------------------

from repro.config import ClusterConfig, MemoryParams  # noqa: E402
from repro.graph import GraphBuilder, plain_graph_schema  # noqa: E402
from repro.memcloud import MemoryCloud  # noqa: E402
from repro.tsl import (  # noqa: E402
    LAYOUT_BITMAP,
    LAYOUT_DELTA_VARINT,
    LAYOUT_RAW,
    AdjacencyListType,
    LayoutPolicy,
)
from repro.utils.varint import decode_varint  # noqa: E402

# Thresholds low enough that hypothesis-sized lists actually exercise the
# codecs instead of short-circuiting to raw.
LOW_POLICY = LayoutPolicy(delta_min_degree=2, bitmap_min_degree=2)

ADJ = StructType("Node", [
    ("Name", STRING),
    ("Out", AdjacencyListType(policy=LOW_POLICY)),
])

# Three shapes that steer the chooser toward each codec: arbitrary i64
# (raw), non-negative arrival order (delta-eligible), strictly increasing
# (bitmap-eligible).  Mixed per record inside one batch.
_ARBITRARY = st.lists(I64, max_size=24)
_ARRIVAL = st.lists(st.integers(min_value=0, max_value=2 ** 40), max_size=24)
_ASCENDING = st.lists(
    st.integers(min_value=0, max_value=5000),
    max_size=24, unique=True).map(sorted)

ADJ_RECORDS = st.lists(
    st.fixed_dictionaries({
        "Name": st.text(max_size=8),
        "Out": st.one_of(_ARBITRARY, _ARRIVAL, _ASCENDING),
    }),
    min_size=1, max_size=25,
)


def stored_tags(blobs):
    tags = set()
    for blob in blobs:
        offset = ADJ.field_offset(blob, "Out")
        header, _ = decode_varint(blob, offset)
        tags.add(header & 3)
    return tags


class TestAdjacencyColumnRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(ADJ_RECORDS)
    def test_csr_matches_scalar_across_layouts(self, records):
        decoder = batch_decoder_for(ADJ)
        blobs = [ADJ.encode(r) for r in records]
        indptr, flat = decoder.decode_list_csr(blobs, "Out")
        assert indptr[0] == 0 and indptr[-1] == len(flat)
        for i, blob in enumerate(blobs):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == \
                scalar_decode(ADJ, blob, "Out")

    @settings(max_examples=80, deadline=None)
    @given(ADJ_RECORDS)
    def test_counts_and_column_match_scalar(self, records):
        decoder = batch_decoder_for(ADJ)
        blobs = [ADJ.encode(r) for r in records]
        assert decoder.field_counts(blobs, "Out").tolist() == \
            [len(scalar_decode(ADJ, b, "Out")) for b in blobs]
        assert decoder.decode_column(blobs, "Out") == \
            [scalar_decode(ADJ, b, "Out") for b in blobs]

    def test_one_batch_really_mixes_all_three_layouts(self):
        """Guard the test itself: a hand-built batch holds all 3 tags
        and still decodes identically through the columnar path."""
        records = [
            {"Name": "raw", "Out": [-5, 3]},
            {"Name": "delta", "Out": [900, 14, 900, 2 ** 40]},
            {"Name": "bitmap", "Out": list(range(64, 96))},
            {"Name": "empty", "Out": []},
        ]
        blobs = [ADJ.encode(r) for r in records]
        assert stored_tags(blobs) == {LAYOUT_RAW, LAYOUT_DELTA_VARINT,
                                      LAYOUT_BITMAP}
        decoder = batch_decoder_for(ADJ)
        indptr, flat = decoder.decode_list_csr(blobs, "Out")
        for i, record in enumerate(records):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == record["Out"]
        assert decoder.field_counts(blobs, "Out").tolist() == \
            [len(r["Out"]) for r in records]


class TestAdjacencyCanonicalErrors:
    """Corrupt codec payloads raise the same SchemaMismatchError from the
    batch path as from the scalar path — never a wrong answer."""

    def _corrupt_cases(self):
        adj = ADJ.field_type("Out")
        delta = adj.encode_with_layout(list(range(16)), LAYOUT_DELTA_VARINT)
        bitmap = adj.encode_with_layout(list(range(8, 72)), LAYOUT_BITMAP)
        cleared = bytearray(bitmap)
        cleared[-1] &= 0x7F  # popcount no longer matches the count header
        return [
            delta[:-2],                         # truncated delta stream
            bitmap[:-1],                        # truncated bitset
            bytes(cleared),                     # popcount mismatch
            bytes([(1 << 2) | 3]) + b"\x00" * 8,  # reserved tag 3
        ]

    def _blob_with_out(self, out_bytes):
        good = ADJ.encode({"Name": "x", "Out": []})
        offset = ADJ.field_offset(good, "Out")
        return good[:offset] + out_bytes

    @pytest.mark.parametrize("case", range(4))
    def test_batch_and_scalar_agree_on_corruption(self, case):
        bad = self._blob_with_out(self._corrupt_cases()[case])
        with pytest.raises(SchemaMismatchError):
            scalar_decode(ADJ, bad, "Out")
        decoder = batch_decoder_for(ADJ)
        with pytest.raises(SchemaMismatchError):
            decoder.decode_list_csr([bad], "Out")


class TestAdjacencyThroughStorageTiers:
    """End to end: bulk-load under an adaptive policy, then read through
    the Graph batch surface with cross_check on, per storage tier."""

    @pytest.mark.parametrize("storage", ["resident", "paged"])
    @pytest.mark.parametrize("policy", ["adaptive", "raw"])
    def test_cross_checked_reads(self, storage, policy):
        rng = np.random.default_rng(17)
        cloud = MemoryCloud(ClusterConfig(machines=2, memory=MemoryParams(
            storage=storage, layout_policy=policy)))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        expected = {}
        for src in range(40):
            if src % 3 == 0:
                out = sorted(set(rng.integers(0, 400, 60).tolist()))
            elif src % 3 == 1:
                out = rng.integers(0, 2 ** 40, 20).tolist()
            else:
                out = rng.integers(0, 40, 3).tolist()
            expected[src] = [int(v) for v in out]
            for dst in expected[src]:
                builder.add_edge(src, dst)
        graph = builder.finalize(cross_check=True)
        node_ids = sorted(expected)
        indptr, flat = graph.read_field_csr(node_ids, "Outlinks",
                                            cross_check=True)
        for i, uid in enumerate(node_ids):
            assert flat[indptr[i]:indptr[i + 1]].tolist() == expected[uid]
        assert graph.degree_batch(node_ids, cross_check=True).tolist() == \
            [len(expected[uid]) for uid in node_ids]

    @pytest.mark.parametrize("storage", ["resident", "paged"])
    def test_adaptive_and_raw_clouds_agree(self, storage):
        """Same edges, both policies, both tiers: identical answers."""
        rng = np.random.default_rng(23)
        edges = [(int(s), int(d)) for s, d in
                 zip(rng.integers(0, 30, 400), rng.integers(0, 3000, 400))]
        results = []
        for policy in ("adaptive", "raw"):
            cloud = MemoryCloud(ClusterConfig(machines=2, memory=MemoryParams(
                storage=storage, layout_policy=policy)))
            builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
            for src, dst in edges:
                builder.add_edge(src, dst)
            graph = builder.finalize(cross_check=True)
            node_ids = sorted(graph.node_ids)
            indptr, flat = graph.read_field_csr(node_ids, "Outlinks",
                                                cross_check=True)
            results.append((node_ids, indptr.tolist(), flat.tolist()))
        assert results[0] == results[1]
