"""Tests for online queries: people search and subgraph matching."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.algorithms import (
    generate_query_dfs,
    generate_query_random,
    match_subgraph,
    people_search,
)
from repro.algorithms.subgraph import (
    LabelIndex, Query, assign_labels, decompose_stwigs,
)
from repro.errors import QueryError
from repro.generators.social import build_social_graph
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud


@pytest.fixture(scope="module")
def social_graph():
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    return build_social_graph(cloud, 1200, avg_degree=10, seed=3)


@pytest.fixture(scope="module")
def labeled_graph():
    from repro.generators import powerlaw_edges
    edges = powerlaw_edges(800, avg_degree=8, seed=9)
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
    builder.add_edges(edges.tolist())
    graph = builder.finalize()
    topo = CsrTopology(graph)
    labels = assign_labels(topo.n, num_labels=12, seed=4)
    return topo, labels


class TestPeopleSearch:
    def reference_matches(self, graph, start, name, hops):
        """Brute-force BFS reference."""
        seen = {start}
        frontier = [start]
        matches = set()
        for _ in range(hops):
            fresh = []
            for node in frontier:
                for friend in graph.outlinks(node):
                    if friend not in seen:
                        seen.add(friend)
                        fresh.append(friend)
                        if graph.attribute(friend, "Name") == name:
                            matches.add(friend)
            frontier = fresh
        return sorted(matches)

    def test_matches_reference(self, social_graph):
        result = people_search(social_graph, 0, "David", hops=3)
        assert result.matches == self.reference_matches(
            social_graph, 0, "David", 3
        )

    def test_start_excluded_even_if_named(self, social_graph):
        name = social_graph.attribute(0, "Name")
        result = people_search(social_graph, 0, name, hops=2)
        assert 0 not in result.matches

    def test_more_hops_superset(self, social_graph):
        two_hop = people_search(social_graph, 0, "David", hops=2)
        three_hop = people_search(social_graph, 0, "David", hops=3)
        assert set(two_hop.matches) <= set(three_hop.matches)
        assert two_hop.visited <= three_hop.visited

    def test_three_hops_slower_than_two(self, social_graph):
        two_hop = people_search(social_graph, 0, "David", hops=2)
        three_hop = people_search(social_graph, 0, "David", hops=3)
        assert three_hop.elapsed > two_hop.elapsed

    def test_headline_latency_shape(self, social_graph):
        """Section 5.1: 3-hop exploration on 8 machines < 100 ms."""
        result = people_search(social_graph, 0, "David", hops=3)
        assert result.elapsed < 0.1

    def test_hop_accounting(self, social_graph):
        result = people_search(social_graph, 0, "David", hops=3)
        assert len(result.hop_times) <= 3
        assert result.messages > 0
        assert result.visited > 0

    def test_requires_name_attribute(self, cloud):
        builder = GraphBuilder(cloud, plain_graph_schema())
        builder.add_edge(0, 1)
        graph = builder.finalize()
        with pytest.raises(QueryError, match="Name"):
            people_search(graph, 0, "David")

    def test_bad_hops(self, social_graph):
        with pytest.raises(QueryError):
            people_search(social_graph, 0, "David", hops=0)


class TestQueryGeneration:
    def test_dfs_query_connected_and_sized(self, labeled_graph):
        topo, labels = labeled_graph
        query = generate_query_dfs(topo, labels, size=8, seed=1)
        assert query.size == 8
        assert len(query.edges) >= 7  # at least a spanning tree
        query.validate()

    def test_random_query_connected_and_sized(self, labeled_graph):
        topo, labels = labeled_graph
        query = generate_query_random(topo, labels, size=8, seed=1)
        assert query.size == 8
        query.validate()

    def test_generated_queries_always_match(self, labeled_graph):
        topo, labels = labeled_graph
        for seed in range(5):
            for generator in (generate_query_dfs, generate_query_random):
                query = generator(topo, labels, size=5, seed=seed)
                result = match_subgraph(topo, labels, query)
                assert result.match_count >= 1, (generator.__name__, seed)

    def test_query_validation(self):
        with pytest.raises(QueryError):
            Query(labels=(), edges=()).validate()
        with pytest.raises(QueryError):
            Query(labels=(1, 2), edges=((0, 0),)).validate()
        with pytest.raises(QueryError):
            Query(labels=(1, 2), edges=((0, 5),)).validate()


class TestStwigDecomposition:
    def test_covers_all_edges(self):
        query = Query(labels=(0, 1, 2, 3),
                      edges=((0, 1), (1, 2), (2, 3), (0, 3)))
        stwigs = decompose_stwigs(query)
        covered = set()
        for stwig in stwigs:
            for leaf in stwig.leaves:
                covered.add(frozenset((stwig.root, leaf)))
        assert covered == {frozenset(e) for e in query.edges}

    def test_covers_all_nodes(self):
        query = Query(labels=(0, 1, 2), edges=((0, 1),))
        stwigs = decompose_stwigs(query)
        nodes = set()
        for stwig in stwigs:
            nodes.add(stwig.root)
            nodes.update(stwig.leaves)
        assert nodes == {0, 1, 2}

    def test_rare_labels_preferred_as_roots(self):
        query = Query(labels=(5, 5, 9), edges=((0, 1), (1, 2)))
        frequency = {5: 1000, 9: 1}
        stwigs = decompose_stwigs(query, frequency)
        assert stwigs[0].root == 2  # the rare-label node


class TestSubgraphMatching:
    def test_embeddings_are_valid(self, labeled_graph):
        topo, labels = labeled_graph
        query = generate_query_dfs(topo, labels, size=6, seed=2)
        result = match_subgraph(topo, labels, query)
        neighbor_sets = {}
        for embedding in result.embeddings:
            # Injective
            assert len(set(embedding)) == query.size
            # Label-preserving
            assert tuple(int(labels[v]) for v in embedding) == query.labels
            # Edge-preserving
            for u, v in query.edges:
                du, dv = embedding[u], embedding[v]
                if du not in neighbor_sets:
                    neighbor_sets[du] = set(
                        int(x) for x in topo.out_neighbors(du)
                    )
                assert dv in neighbor_sets[du]

    def test_matches_bruteforce_on_tiny_graph(self):
        """Exhaustive check against networkx VF2 on a 30-node graph."""
        networkx = pytest.importorskip("networkx")
        from repro.generators import powerlaw_edges
        edges = powerlaw_edges(30, avg_degree=4, seed=1)
        cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=3))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edges(edges.tolist())
        topo = CsrTopology(builder.finalize())
        labels = assign_labels(topo.n, num_labels=3, seed=2)
        query = generate_query_dfs(topo, labels, size=4, seed=3)

        result = match_subgraph(topo, labels, query,
                                max_embeddings=10**6)
        data = networkx.Graph()
        data.add_nodes_from(range(topo.n))
        for i in range(topo.n):
            for j in topo.out_neighbors(i):
                data.add_edge(i, int(j))
        pattern = networkx.Graph()
        pattern.add_nodes_from(range(query.size))
        pattern.add_edges_from(query.edges)
        matcher = networkx.algorithms.isomorphism.GraphMatcher(
            data, pattern,
            node_match=lambda d, p: True,
        )
        expected = set()
        for mapping in matcher.subgraph_monomorphisms_iter():
            inverse = {v: k for k, v in mapping.items()}
            if all(int(labels[inverse[q]]) == query.labels[q]
                   for q in range(query.size)):
                expected.add(tuple(inverse[q] for q in range(query.size)))
        assert set(result.embeddings) == expected

    def test_truncation_flag(self, labeled_graph):
        topo, labels = labeled_graph
        query = generate_query_dfs(topo, labels, size=3, seed=5)
        result = match_subgraph(topo, labels, query, max_embeddings=1)
        if result.match_count == 1:
            assert result.truncated or result.match_count == 1

    def test_accounting_populated(self, labeled_graph):
        topo, labels = labeled_graph
        query = generate_query_dfs(topo, labels, size=5, seed=6)
        result = match_subgraph(topo, labels, query)
        assert result.elapsed > 0
        assert result.candidates_examined > 0

    def test_no_match_for_impossible_label(self, labeled_graph):
        topo, labels = labeled_graph
        query = Query(labels=(99, 99), edges=((0, 1),))
        result = match_subgraph(topo, labels, query)
        assert result.match_count == 0


class TestLabelIndex:
    def test_partitions_nodes_by_label(self, labeled_graph):
        topo, labels = labeled_graph
        index = LabelIndex(topo, labels)
        total = sum(len(index.candidates(label))
                    for label in np.unique(labels))
        assert total == topo.n
        for label in np.unique(labels):
            for node in index.candidates(int(label)):
                assert labels[node] == label

    def test_unknown_label_empty(self, labeled_graph):
        topo, labels = labeled_graph
        assert len(LabelIndex(topo, labels).candidates(10**6)) == 0

    def test_misaligned_labels_rejected(self, labeled_graph):
        topo, _ = labeled_graph
        with pytest.raises(QueryError):
            LabelIndex(topo, np.zeros(3, dtype=np.int64))
