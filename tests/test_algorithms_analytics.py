"""Tests for offline analytics: PageRank, BFS, SSSP, WCC.

Cross-validates three ways: vectorised runner vs networkx reference vs
the vertex-centric BSP engine.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BfsProgram, PageRankProgram, SsspProgram, WccProgram,
    bfs, pagerank, sssp, wcc,
)
from repro.algorithms._traffic import TrafficModel
from repro.compute import BspEngine
from repro.errors import ComputeError


class TestPageRank:
    def test_ranks_sum_to_one(self, rmat_topology):
        run = pagerank(rmat_topology, iterations=15)
        assert run.ranks.sum() == pytest.approx(1.0, abs=1e-9)
        assert (run.ranks > 0).all()

    def test_matches_networkx(self, rmat_topology, rmat_networkx):
        networkx = pytest.importorskip("networkx")
        run = pagerank(rmat_topology, iterations=80)
        reference = networkx.pagerank(rmat_networkx, alpha=0.85,
                                      max_iter=200, tol=1e-12,
                                      weight="multiplicity")
        ours = run.ranks
        theirs = np.array([reference[i] for i in range(rmat_topology.n)])
        assert np.abs(ours - theirs).max() < 1e-6

    def test_vertex_engine_agrees_with_vectorised(self, rmat_topology):
        vectorised = pagerank(rmat_topology, iterations=10)
        engine = BspEngine(rmat_topology)
        program = PageRankProgram(iterations=10)
        result = engine.run(program, max_supersteps=12)
        engine_ranks = np.array(result.values)
        assert np.abs(engine_ranks - vectorised.ranks).max() < 1e-9

    def test_iteration_times_recorded(self, rmat_topology):
        run = pagerank(rmat_topology, iterations=7)
        assert len(run.iteration_times) == 7
        assert run.time_per_iteration > 0
        assert run.elapsed == pytest.approx(sum(run.iteration_times))

    def test_constant_traffic_per_iteration(self, rmat_topology):
        run = pagerank(rmat_topology, iterations=5)
        # Full-broadcast pattern: every iteration costs the same.
        assert max(run.iteration_times) == pytest.approx(
            min(run.iteration_times)
        )

    def test_dangling_mass_redistributed(self, cloud):
        from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edge(0, 1)  # 1 is dangling
        graph = builder.finalize()
        topo = CsrTopology(graph)
        run = pagerank(topo, iterations=50)
        assert run.ranks.sum() == pytest.approx(1.0)
        assert run.ranks[1] > run.ranks[0]  # 1 receives 0's rank

    def test_bad_iterations(self, rmat_topology):
        with pytest.raises(ComputeError):
            pagerank(rmat_topology, iterations=0)

    def test_hub_buffering_cheaper(self, rmat_topology):
        fast = pagerank(rmat_topology, iterations=3, hub_buffering=True)
        slow = pagerank(rmat_topology, iterations=3, hub_buffering=False)
        assert fast.elapsed <= slow.elapsed
        assert np.abs(fast.ranks - slow.ranks).max() < 1e-12


class TestBfs:
    def test_matches_networkx(self, rmat_topology, rmat_networkx):
        networkx = pytest.importorskip("networkx")
        run = bfs(rmat_topology, 0)
        reference = networkx.single_source_shortest_path_length(
            rmat_networkx, 0
        )
        for vertex in range(rmat_topology.n):
            assert run.levels[vertex] == reference.get(vertex, -1)

    def test_vertex_engine_agrees(self, rmat_topology):
        vectorised = bfs(rmat_topology, 0)
        engine = BspEngine(rmat_topology)
        result = engine.run(BfsProgram(0), max_supersteps=60)
        assert np.array_equal(np.array(result.values), vectorised.levels)

    def test_root_level_zero(self, rmat_topology):
        run = bfs(rmat_topology, 5)
        assert run.levels[5] == 0

    def test_depth_and_reach(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        assert run.depth == run.levels.max()
        assert run.reached == (run.levels >= 0).sum()

    def test_level_times_match_levels(self, rmat_topology):
        run = bfs(rmat_topology, 0)
        assert len(run.level_times) >= run.depth

    def test_invalid_root(self, rmat_topology):
        with pytest.raises(ComputeError):
            bfs(rmat_topology, rmat_topology.n)

    def test_isolated_root(self, cloud):
        from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_node(0)
        builder.add_edge(1, 2)
        graph = builder.finalize()
        topo = CsrTopology(graph)
        run = bfs(topo, topo.index_of[0])
        assert run.reached == 1


class TestSssp:
    def test_unit_weights_equal_bfs(self, rmat_topology):
        bfs_run = bfs(rmat_topology, 0)
        sssp_run = sssp(rmat_topology, 0)
        distances = np.where(np.isfinite(sssp_run.distances),
                             sssp_run.distances, -1)
        assert np.array_equal(distances.astype(np.int64), bfs_run.levels)

    def test_weighted_matches_networkx(self, rmat_topology, rmat_networkx):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(5)
        weights = rng.uniform(0.5, 2.0, size=rmat_topology.num_edges)
        run = sssp(rmat_topology, 0, edge_weights=weights)
        weighted = rmat_networkx.copy()
        edge_index = 0
        for src in range(rmat_topology.n):
            for dst in rmat_topology.out_neighbors(src):
                # networkx collapses parallel edges: keep the minimum.
                dst = int(dst)
                w = weights[edge_index]
                edge_index += 1
                if weighted.has_edge(src, dst):
                    w = min(w, weighted[src][dst].get("weight", np.inf))
                weighted.add_edge(src, dst, weight=w)
        reference = networkx.single_source_dijkstra_path_length(
            weighted, 0
        )
        for vertex, expected in reference.items():
            assert run.distances[vertex] == pytest.approx(expected)

    def test_vertex_engine_agrees(self, rmat_topology):
        engine = BspEngine(rmat_topology)
        result = engine.run(SsspProgram(0), max_supersteps=80)
        vectorised = sssp(rmat_topology, 0)
        assert np.allclose(
            np.array(result.values), vectorised.distances, equal_nan=False,
        )

    def test_negative_weights_rejected(self, rmat_topology):
        weights = np.full(rmat_topology.num_edges, -1.0)
        with pytest.raises(ComputeError):
            sssp(rmat_topology, 0, edge_weights=weights)

    def test_misaligned_weights_rejected(self, rmat_topology):
        with pytest.raises(ComputeError):
            sssp(rmat_topology, 0, edge_weights=np.ones(3))


class TestWcc:
    def test_matches_networkx(self, rmat_topology, rmat_networkx):
        networkx = pytest.importorskip("networkx")
        run = wcc(rmat_topology)
        assert run.component_count == (
            networkx.number_weakly_connected_components(rmat_networkx)
        )
        # Same partition, not just same count.
        for component in networkx.weakly_connected_components(rmat_networkx):
            labels = {run.labels[v] for v in component}
            assert len(labels) == 1

    def test_vertex_engine_agrees_on_undirected(self, undirected_topology):
        run = wcc(undirected_topology)
        engine = BspEngine(undirected_topology)
        result = engine.run(WccProgram(), max_supersteps=80)
        # On an undirected (symmetrised) topology the vertex program's
        # out-neighbor propagation equals weak connectivity.
        engine_labels = np.array(result.values)
        # Identical partitions up to label choice:
        mapping = {}
        for ours, theirs in zip(run.labels, engine_labels):
            assert mapping.setdefault(int(ours), int(theirs)) == int(theirs)

    def test_label_is_component_minimum(self, undirected_topology):
        run = wcc(undirected_topology)
        for label in np.unique(run.labels):
            members = np.nonzero(run.labels == label)[0]
            assert label == members.min()

    def test_singleton_components(self, cloud):
        from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        for node in range(5):
            builder.add_node(node)
        graph = builder.finalize()
        run = wcc(CsrTopology(graph))
        assert run.component_count == 5


class TestTrafficModel:
    def test_full_broadcast_counts_every_edge_at_most_once(self,
                                                           rmat_topology):
        model = TrafficModel(rmat_topology, hub_buffering=False)
        counts = model.full_broadcast_traffic()
        assert counts.sum() == rmat_topology.num_edges

    def test_hub_buffering_reduces_counts(self, rmat_topology):
        plain = TrafficModel(rmat_topology, hub_buffering=False)
        buffered = TrafficModel(rmat_topology, hub_buffering=True,
                                hub_fraction=0.02)
        assert (buffered.full_broadcast_traffic().sum()
                < plain.full_broadcast_traffic().sum())

    def test_frontier_traffic_subset_of_full(self, rmat_topology):
        model = TrafficModel(rmat_topology, hub_buffering=False)
        frontier = np.zeros(rmat_topology.n, dtype=bool)
        frontier[:50] = True
        partial = model.frontier_traffic(frontier)
        full = model.full_broadcast_traffic()
        assert (partial <= full).all()

    def test_agrees_with_bsp_engine_accounting(self, rmat_topology):
        """The analytic traffic model and the message-routing engine must
        count the same number of wire messages for a full broadcast."""
        from repro.compute import VertexProgram

        class Broadcast(VertexProgram):
            restrictive = True
            uniform_messages = True

            def compute(self, ctx, vertex, messages):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors(1.0)
                ctx.vote_to_halt()

        engine = BspEngine(rmat_topology, hub_buffering=True,
                           hub_fraction=0.02)
        result = engine.run(Broadcast(), max_supersteps=3)
        model = TrafficModel(rmat_topology, hub_buffering=True,
                             hub_fraction=0.02)
        counts = model.full_broadcast_traffic().reshape(
            rmat_topology.machine_count, rmat_topology.machine_count
        )
        remote = int(counts.sum() - np.trace(counts))
        assert result.supersteps[0].remote_transfers == remote

    def test_remote_fraction_in_unit_range(self, rmat_topology):
        model = TrafficModel(rmat_topology)
        assert 0.0 < model.remote_fraction() < 1.0
