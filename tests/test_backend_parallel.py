"""Backend equivalence: real worker processes, bit-identical results.

The shared-memory execution backend runs superstep kernels (and the bulk
loader's encode+store) in forked worker processes over OS shared memory.
Everything observable must match the in-process backend **bit for bit**:
vertex values, per-superstep reports (including simulated elapsed time),
aggregators, engine metrics, stored cell bytes, and trunk accounting.
Every shared-memory BSP run here also sets ``cross_check=True``, so the
scalar reference engine replays each superstep and must agree too.

The suite covers four workloads (PageRank, BFS, SSSP, WCC) across
{in_process, shared_memory} x {1, 2, 4} workers, the parallel bulk load,
and checkpoint-restart under an injected fault plan — proving the plan's
draws replay deterministically when real workers are killed and
re-forked at a rollback.
"""

import numpy as np
import pytest

from repro.algorithms import BfsProgram, PageRankProgram, SsspProgram
from repro.algorithms.wcc import WccProgram
from repro.compute import BspEngine, CheckpointManager
from repro.config import ClusterConfig
from repro.faults import FaultPlan
from repro.generators import rmat_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud
from repro.memcloud.arena import shared_arena_factory
from repro.net import SimNetwork
from repro.obs import MetricsRegistry
from repro.tfs import TrinityFileSystem

MACHINES = 4
WORKER_COUNTS = (1, 2, 4)

PROGRAMS = {
    "pagerank": lambda: PageRankProgram(iterations=6),
    "bfs": lambda: BfsProgram(root=0),
    "sssp": lambda: SsspProgram(root=0),
    "wcc": lambda: WccProgram(),
}


@pytest.fixture(scope="module")
def topology() -> CsrTopology:
    edges = rmat_edges(scale=9, avg_degree=8, seed=11)
    cloud = MemoryCloud(ClusterConfig(machines=MACHINES, trunk_bits=6))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges)
    return CsrTopology(builder.finalize(), include_inlinks=True)


def run(topology, program, backend="in_process", workers=None,
        cross_check=False, faults=None, checkpoints=None):
    registry = MetricsRegistry()
    engine = BspEngine(
        topology,
        network=SimNetwork(registry=registry),
        cross_check=cross_check,
        faults=faults,
        checkpoints=checkpoints,
        backend=backend,
        workers=workers,
    )
    result = engine.run(program, max_supersteps=40)
    return result, registry


def assert_equivalent(baseline, candidate):
    """Bit-identical values, reports, and aggregators."""
    base = np.asarray(baseline.values)
    cand = np.asarray(candidate.values)
    assert base.dtype == cand.dtype
    assert np.array_equal(base, cand)
    assert baseline.superstep_count == candidate.superstep_count
    for ours, theirs in zip(baseline.supersteps, candidate.supersteps):
        assert ours == theirs  # dataclass equality: elapsed included
    assert baseline.aggregators == candidate.aggregators
    assert baseline.restarts == candidate.restarts


@pytest.fixture(scope="module")
def baselines(topology):
    """One in-process reference run per workload."""
    return {name: run(topology, make())[0]
            for name, make in PROGRAMS.items()}


@pytest.mark.parametrize("workload", sorted(PROGRAMS))
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_shared_memory_bit_identical(topology, baselines, workload,
                                     workers):
    result, _ = run(topology, PROGRAMS[workload](),
                    backend="shared_memory", workers=workers,
                    cross_check=True)
    assert_equivalent(baselines[workload], result)


def _bsp_metric_series(registry):
    """The engine's metric series, minus real wall-clock histograms."""
    return {
        name: entry
        for name, entry in registry.snapshot().items()
        if name.startswith("bsp.") and not name.endswith("wall_seconds")
    }


def test_superstep_metrics_backend_invariant(topology):
    """Worker-side metric deltas fold in at barriers: ``bsp.superstep.*``
    (and the rest of the engine series) match the in-process run."""
    _, reg_inproc = run(topology, PageRankProgram(iterations=4))
    result, reg_shm = run(topology, PageRankProgram(iterations=4),
                          backend="shared_memory", workers=2)
    assert _bsp_metric_series(reg_inproc) == _bsp_metric_series(reg_shm)
    assert reg_shm.snapshot()["bsp.superstep.total"]["series"][0][
        "value"] == result.superstep_count


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=13,
        crashes=((2, 1), (5, 3)),
        drop_rate=0.08,
        duplicate_rate=0.05,
        delay_rate=0.05,
        partitions=((3, 5, frozenset({2})),),
    )


def test_checkpoint_restart_under_faults_backend_invariant(topology):
    """Crashes force rollbacks; the worker pool is killed and re-forked
    from the restored image, and the fault plan's draws — keyed by round,
    machine pair, and attempt — must replay identically, so both
    backends restart the same number of times and agree bit for bit."""
    results = {}
    for backend, workers in (("in_process", None), ("shared_memory", 2)):
        results[backend], _ = run(
            topology, PageRankProgram(iterations=6),
            backend=backend, workers=workers, cross_check=True,
            faults=chaos_plan(),
            checkpoints=CheckpointManager(TrinityFileSystem(), every=2),
        )
    assert results["in_process"].restarts >= 2
    assert_equivalent(results["in_process"], results["shared_memory"])


def test_faulted_matches_fault_free(topology, baselines):
    """Injected chaos costs simulated time but never changes values."""
    result, _ = run(topology, PageRankProgram(iterations=6),
                    backend="shared_memory", workers=4, cross_check=True,
                    faults=chaos_plan(),
                    checkpoints=CheckpointManager(TrinityFileSystem(),
                                                  every=2))
    assert np.array_equal(np.asarray(result.values),
                          np.asarray(baselines["pagerank"].values))


# -- parallel bulk load ------------------------------------------------------


def _build(cloud, backend, workers=None, cross_check=True):
    edges = rmat_edges(scale=10, avg_degree=8, seed=23)
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges)
    builder.add_node(10_000_001)
    return builder.finalize(cross_check=cross_check, backend=backend,
                            workers=workers)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bulk_load_parallel_bit_identical(workers):
    config = ClusterConfig(machines=MACHINES, trunk_bits=6)
    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    cloud_a = MemoryCloud(config, registry=reg_a)
    graph_a = _build(cloud_a, "in_process")
    cloud_b = MemoryCloud(config, registry=reg_b,
                          arena_factory=shared_arena_factory())
    try:
        graph_b = _build(cloud_b, "shared_memory", workers=workers)
        assert graph_a.node_ids == graph_b.node_ids
        node_ids = graph_a.node_ids
        assert cloud_a.bulk_get(node_ids) == cloud_b.bulk_get(node_ids)
        for trunk_a, trunk_b in zip(cloud_a.trunks.values(),
                                    cloud_b.trunks.values()):
            assert trunk_a.stats() == trunk_b.stats()
        # The adopt path replays the in-process probe accounting too.
        for name in ("memcloud.bulk.put.cells", "memcloud.bulk.put.batches"):
            assert reg_a.counter(name).value == reg_b.counter(name).value
    finally:
        cloud_b.release_arenas()


def test_bulk_load_parallel_needs_shared_arenas():
    """Without shared arenas the workers' writes would be fork-private;
    the builder silently falls back to the in-process path."""
    cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=4))
    graph = _build(cloud, "shared_memory", workers=2, cross_check=False)
    reference = MemoryCloud(ClusterConfig(machines=2, trunk_bits=4))
    _build(reference, "in_process", cross_check=False)
    ids = graph.node_ids
    assert cloud.bulk_get(ids) == reference.bulk_get(ids)


def test_bulk_load_parallel_requires_pristine_trunks():
    """A pre-existing cell means adopt-from-offset-zero would clobber it;
    eligibility fails and the load goes through the normal bulk path."""
    cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=4),
                        arena_factory=shared_arena_factory())
    try:
        cloud.put(20_000_099, b"resident")
        graph = _build(cloud, "shared_memory", workers=2,
                       cross_check=False)
        assert cloud.get(20_000_099) == b"resident"
        assert graph.outlinks(graph.node_ids[0]) is not None
    finally:
        cloud.release_arenas()
