"""Equivalence suite for the batched memory-cloud data path.

The contract under test: ``bulk_put``/``bulk_get`` are *semantically
identical* to a scalar ``put``/``get`` loop — same stored bytes, same
trunk accounting (live/garbage/committed bytes, wraps, defrag counters),
and, when ``presize=False``, bit-identical hash-table probe counters.
The properties run interleaved overwrites, removes, trunk wraps, and a
defragmentation pass after bulk load.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, MemoryParams
from repro.errors import AddressingError
from repro.memcloud import BulkPathDivergence, MemoryCloud
from repro.obs import MetricsRegistry

UID = st.integers(min_value=0, max_value=2**63 - 1)
SMALL_UID = st.integers(min_value=0, max_value=23)
PAYLOAD = st.binary(max_size=48)


def make_cloud(trunk_bits=3, cross_check=False, storage="list",
               trunk_size=4 * 1024 * 1024, page_size=4096):
    config = ClusterConfig(
        machines=2, trunk_bits=trunk_bits,
        memory=MemoryParams(trunk_size=trunk_size, page_size=page_size,
                            hashtable_storage=storage),
    )
    return MemoryCloud(config, MetricsRegistry(), cross_check=cross_check)


def assert_clouds_identical(bulk, scalar, probes=True):
    """Full structural comparison of two clouds built from the same ops."""
    for trunk_id, trunk in bulk.trunks.items():
        other = scalar.trunks[trunk_id]
        assert dict(trunk.dump_cells()) == dict(other.dump_cells())
        assert trunk.stats() == other.stats()
        if probes:
            assert trunk._index.probe_count == other._index.probe_count
            assert trunk._index.lookup_count == other._index.lookup_count


class TestBulkPutBasics:
    def test_roundtrip(self):
        cloud = make_cloud()
        uids = [10, 20, 30]
        payloads = [b"a", b"bb", b"ccc"]
        cloud.bulk_put(uids, payloads)
        assert cloud.bulk_get(uids) == payloads
        assert [cloud.get(u) for u in uids] == payloads

    def test_empty_batch_is_noop(self):
        cloud = make_cloud()
        cloud.bulk_put([], [])
        assert cloud.bulk_get([]) == []
        assert len(cloud) == 0

    def test_length_mismatch(self):
        cloud = make_cloud()
        with pytest.raises(ValueError):
            cloud.bulk_put([1, 2], [b"x"])

    def test_numpy_uid_array(self):
        cloud = make_cloud()
        uids = np.asarray([5, 6, 7], dtype=np.uint64)
        cloud.bulk_put(uids, [b"x", b"y", b"z"])
        assert cloud.get(6) == b"y"

    def test_duplicate_uids_keep_last_write(self):
        # Scalar loop semantics: the later put overwrites the earlier.
        cloud = make_cloud()
        cloud.bulk_put([1, 2, 1], [b"first", b"other", b"second"])
        assert cloud.get(1) == b"second"
        assert cloud.get(2) == b"other"

    def test_overwrite_existing(self):
        cloud = make_cloud()
        cloud.bulk_put([1, 2], [b"a", b"b"])
        cloud.bulk_put([2, 3], [b"B", b"c"])
        assert cloud.bulk_get([1, 2, 3]) == [b"a", b"B", b"c"]

    def test_bulk_get_preserves_input_order(self):
        cloud = make_cloud(trunk_bits=4)
        uids = list(range(100, 200))
        payloads = [bytes([i % 256]) * (i % 7) for i in range(100)]
        cloud.bulk_put(uids, payloads)
        shuffled = uids[::-1]
        assert cloud.bulk_get(shuffled) == payloads[::-1]

    def test_metrics_series(self):
        cloud = make_cloud()
        cloud.bulk_put(list(range(50)), [b"x"] * 50)
        cloud.bulk_get(list(range(50)))
        from repro.obs import MetricsReport
        snapshot = MetricsReport.from_registry(cloud.obs).snapshot

        def value(name):
            return snapshot[name]["series"][0]["value"]

        assert value("memcloud.bulk.put.cells") == 50
        assert value("memcloud.bulk.get.cells") == 50
        assert value("memcloud.bulk.put.batches") >= 1
        assert (snapshot["memcloud.bulk.put.seconds"]["series"][0]["count"]
                == 1)


class TestScalarEquivalence:
    """Direct two-cloud comparison, no shadow involved."""

    def _load(self, batches, storage, presize):
        bulk = make_cloud(storage=storage)
        scalar = make_cloud(storage=storage)
        for uids, payloads in batches:
            bulk.bulk_put(uids, payloads, presize=presize)
            for uid, payload in zip(uids, payloads):
                scalar.put(uid, payload)
        return bulk, scalar

    @pytest.mark.parametrize("storage", ["list", "numpy"])
    def test_exact_probes_without_presize(self, storage):
        rng = np.random.default_rng(7)
        uids = np.unique(rng.integers(0, 2**62, size=1500)).tolist()
        payloads = [bytes(rng.integers(0, 256, size=int(s), dtype=np.uint8))
                    for s in rng.integers(0, 64, size=len(uids))]
        batches = [(uids[i:i + 256], payloads[i:i + 256])
                   for i in range(0, len(uids), 256)]
        bulk, scalar = self._load(batches, storage, presize=False)
        assert_clouds_identical(bulk, scalar, probes=True)

    @pytest.mark.parametrize("storage", ["list", "numpy"])
    def test_contents_with_presize(self, storage):
        rng = np.random.default_rng(11)
        uids = np.unique(rng.integers(0, 2**62, size=1500)).tolist()
        payloads = [b"p" * int(s) for s in rng.integers(0, 64, len(uids))]
        bulk, scalar = self._load([(uids, payloads)], storage, presize=True)
        # Pre-sizing changes probe lengths, never contents or accounting.
        assert_clouds_identical(bulk, scalar, probes=False)

    def test_bulk_get_counts_like_scalar_gets(self):
        uids = list(range(0, 400, 3))
        payloads = [b"v"] * len(uids)
        bulk, scalar = self._load([(uids, payloads)], "list", presize=False)
        for uid in uids:
            scalar.get(uid)
        bulk.bulk_get(uids)
        assert_clouds_identical(bulk, scalar, probes=True)

    def test_wrap_inside_bulk_batch(self):
        # A trunk small enough that one batch crosses the arena end: the
        # straight-line fast path takes the fitting prefix and the scalar
        # fallback wraps, exactly like a put loop.
        kwargs = dict(trunk_bits=2, trunk_size=4096, page_size=256)
        bulk = make_cloud(**kwargs)
        scalar = make_cloud(**kwargs)
        # FIFO churn in batches: remove the oldest window, bulk-load the
        # next — garbage sits right behind the committed tail, so the
        # circular allocator wraps instead of defragmenting.
        window = 16
        payload_for = (lambda uid: bytes([uid % 256]) * 150)
        for cloud in (bulk, scalar):
            for uid in range(window):
                cloud.put(uid, payload_for(uid))
        for start in range(window, 600, window):
            batch = list(range(start, start + window))
            for cloud in (bulk, scalar):
                for uid in batch:
                    cloud.remove(uid - window)
            bulk.bulk_put(batch, [payload_for(u) for u in batch],
                          presize=False)
            for uid in batch:
                scalar.put(uid, payload_for(uid))
        assert_clouds_identical(bulk, scalar, probes=True)
        assert any(t.stats().wraps for t in bulk.trunks.values())

    def test_defrag_after_bulk_load(self):
        bulk = make_cloud(trunk_bits=2)
        scalar = make_cloud(trunk_bits=2)
        uids = list(range(300))
        payloads = [bytes([i % 256]) * (i % 90) for i in uids]
        bulk.bulk_put(uids, payloads, presize=False)
        for uid, payload in zip(uids, payloads):
            scalar.put(uid, payload)
        for cloud in (bulk, scalar):
            for uid in uids[::3]:
                cloud.remove(uid)
            cloud.defragment_all()
        assert_clouds_identical(bulk, scalar, probes=True)
        live = [u for u in uids if u % 3]
        assert bulk.bulk_get(live) == [scalar.get(u) for u in live]


class TestCrossCheckShadow:
    def test_shadow_verifies_bulk_ops(self):
        cloud = make_cloud(cross_check=True)
        uids = list(range(500))
        payloads = [bytes([i % 256]) * (i % 33) for i in uids]
        cloud.bulk_put(uids, payloads, presize=False)  # verifies internally
        cloud.bulk_put(uids[::5], [b"overwrite"] * len(uids[::5]),
                       presize=False)
        for uid in uids[::7]:
            cloud.remove(uid)
        cloud.defragment_all()
        cloud.verify_shadow()

    def test_presize_disables_probe_comparison_only(self):
        cloud = make_cloud(cross_check=True)
        cloud.bulk_put(list(range(2000)), [b"x"] * 2000, presize=True)
        assert not cloud._shadow_probes_comparable
        cloud.verify_shadow()  # bytes + accounting still must match

    def test_divergence_detected(self):
        cloud = make_cloud(cross_check=True)
        cloud.bulk_put([1, 2, 3], [b"a", b"b", b"c"], presize=False)
        # Tamper with the real world behind the shadow's back.
        cloud.trunk_for(2).put(2, b"corrupted")
        with pytest.raises(BulkPathDivergence):
            cloud.verify_shadow()

    def test_missing_cell_detected(self):
        cloud = make_cloud(cross_check=True)
        cloud.bulk_put([1, 2, 3], [b"a", b"b", b"c"], presize=False)
        cloud.trunk_for(3).remove(3)
        with pytest.raises(BulkPathDivergence):
            cloud.verify_shadow()

    def test_verify_requires_cross_check(self):
        with pytest.raises(AddressingError):
            make_cloud().verify_shadow()

    def test_divergence_is_assertion_error(self):
        assert issubclass(BulkPathDivergence, AssertionError)


# One hypothesis "program": an interleaved list of operations.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), SMALL_UID, PAYLOAD),
        st.tuples(st.just("remove"), SMALL_UID),
        st.tuples(st.just("bulk"),
                  st.lists(st.tuples(SMALL_UID, PAYLOAD), max_size=12)),
        st.tuples(st.just("defrag")),
    ),
    max_size=40,
)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_interleaved_program_equivalence(self, ops):
        """Replay one program through the bulk and scalar paths.

        A tiny trunk (one page of slack) forces wraps and defrag activity;
        presize=False keeps even the probe counters comparable.
        """
        kwargs = dict(trunk_bits=2, trunk_size=2048, page_size=128)
        bulk = make_cloud(**kwargs)
        scalar = make_cloud(**kwargs)
        reference: dict[int, bytes] = {}
        for op in ops:
            if op[0] == "put":
                _, uid, payload = op
                bulk.put(uid, payload)
                scalar.put(uid, payload)
                reference[uid] = payload
            elif op[0] == "remove":
                uid = op[1]
                if uid in reference:
                    bulk.remove(uid)
                    scalar.remove(uid)
                    del reference[uid]
            elif op[0] == "bulk":
                pairs = op[1]
                if not pairs:
                    continue
                uids = [uid for uid, _ in pairs]
                payloads = [payload for _, payload in pairs]
                bulk.bulk_put(uids, payloads, presize=False)
                for uid, payload in pairs:
                    scalar.put(uid, payload)
                    reference[uid] = payload
            else:
                bulk.defragment_all()
                scalar.defragment_all()
        assert_clouds_identical(bulk, scalar, probes=True)
        assert len(bulk) == len(reference)
        for uid, payload in reference.items():
            assert bulk.get(uid) == payload
        live = sorted(reference)
        assert bulk.bulk_get(live) == [reference[u] for u in live]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(UID, PAYLOAD), min_size=1, max_size=60))
    def test_cross_check_shadow_accepts_any_batch(self, pairs):
        cloud = make_cloud(cross_check=True)
        uids = [uid for uid, _ in pairs]
        payloads = [payload for _, payload in pairs]
        cloud.bulk_put(uids, payloads, presize=False)
        cloud.defragment_all()
        cloud.verify_shadow()
        reference = dict(pairs)
        for uid in reference:
            assert cloud.get(uid) == reference[uid]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(SMALL_UID, PAYLOAD), min_size=1, max_size=40))
    def test_numpy_storage_matches_list_storage(self, pairs):
        uids = [uid for uid, _ in pairs]
        payloads = [payload for _, payload in pairs]
        clouds = {}
        for storage in ("list", "numpy"):
            cloud = make_cloud(storage=storage)
            cloud.bulk_put(uids, payloads, presize=False)
            cloud.bulk_get(sorted(set(uids)))
            clouds[storage] = cloud
        assert_clouds_identical(clouds["list"], clouds["numpy"], probes=True)


class TestBulkGetSpansAndPacked:
    """The zero-copy read forms must agree byte-for-byte with bulk_get."""

    def _loaded_cloud(self, storage="numpy"):
        cloud = make_cloud(storage=storage)
        rng = np.random.default_rng(7)
        uids = rng.choice(2**40, size=200, replace=False).astype(np.int64)
        payloads = [bytes([i % 251]) * (i % 37) for i in range(len(uids))]
        cloud.bulk_put(uids.tolist(), payloads)
        return cloud, uids, payloads

    def test_packed_roundtrip(self):
        cloud, uids, payloads = self._loaded_cloud()
        buf, bounds = cloud.bulk_get_packed(uids)
        cuts = bounds.tolist()
        got = [buf[cuts[i]:cuts[i + 1]].tobytes() for i in range(len(uids))]
        assert got == payloads

    def test_spans_roundtrip(self):
        for storage in ("list", "numpy"):
            cloud, uids, payloads = self._loaded_cloud(storage)
            out = [None] * len(uids)
            for arena, starts, limits, idx in cloud.bulk_get_spans(uids):
                for j, i in enumerate(idx.tolist()):
                    out[i] = arena[starts[j]:limits[j]].tobytes()
            assert out == payloads

    def test_spans_track_mutations(self):
        """Overwrites and removes must invalidate the span caches."""
        cloud, uids, payloads = self._loaded_cloud()
        cloud.bulk_get_spans(uids)  # populate every trunk's span cache
        for i in range(0, len(uids), 3):
            payloads[i] = b"x" * (64 + i)
            cloud.put(int(uids[i]), payloads[i])
        cloud.remove(int(uids[1]))
        keep = np.asarray([u for j, u in enumerate(uids.tolist())
                           if j != 1], dtype=np.int64)
        expected = [p for j, p in enumerate(payloads) if j != 1]
        out = [None] * len(keep)
        for arena, starts, limits, idx in cloud.bulk_get_spans(keep):
            for j, i in enumerate(idx.tolist()):
                out[i] = arena[starts[j]:limits[j]].tobytes()
        assert out == expected

    def test_spans_missing_uid_raises(self):
        from repro.errors import CellNotFoundError
        cloud, uids, _ = self._loaded_cloud()
        missing = np.concatenate([uids[:3], [np.int64(2**41 + 5)]])
        with pytest.raises(CellNotFoundError):
            cloud.bulk_get_spans(missing)

    def test_spans_stale_after_defrag(self):
        """Defrag between span fetch and decode must raise, not garble.

        A defragmentation pass relocates cells inside the arena, so span
        offsets fetched before the pass may now point at other cells'
        bytes.  Every span group carries the trunk's structural epoch at
        fetch time; the post-decode freshness check turns the interleaved
        relocation into a canonical ``StaleSpanError``.
        """
        from repro.errors import StaleSpanError
        cloud, uids, payloads = self._loaded_cloud()
        groups = cloud.bulk_get_spans(uids)
        for group in groups:
            group.assert_fresh()  # nothing moved yet: decode is safe
        for trunk in cloud.trunks.values():
            assert trunk.defragment()
        stale = [group for group in groups if group.stale]
        assert stale, "defragment must advance the structural epoch"
        with pytest.raises(StaleSpanError):
            for group in groups:
                group.assert_fresh()
        # A re-fetch observes the post-defrag layout and decodes cleanly.
        out = [None] * len(uids)
        for arena, starts, limits, idx in cloud.bulk_get_spans(uids):
            for j, i in enumerate(idx.tolist()):
                out[i] = arena[starts[j]:limits[j]].tobytes()
        assert out == payloads
