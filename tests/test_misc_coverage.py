"""Edge-case coverage across subsystems (paths no other suite hits)."""

import pytest

from repro.config import ClusterConfig
from repro.cluster import TrinityCluster
from repro.errors import (
    AddressingError,
    CellNotFoundError,
    MachineDownError,
    QueryError,
)
from repro.memcloud import MemoryCloud
from repro.memcloud.addressing import AddressingTable
from repro.tsl.accessor import use_cell
from repro.tsl import compile_tsl


class TestAccessorEdgeCases:
    @pytest.fixture
    def cell(self, cloud):
        schema = compile_tsl(
            "cell struct C { long Id; List<long> Xs; List<string> Ss; }"
        )
        cell_type = schema.cell("C")
        cloud.put(1, cell_type.encode({"Id": 1, "Xs": [1, 2], "Ss": ["a"]}))
        return cloud, cell_type

    def test_list_accessor_repr_and_eq(self, cell):
        cloud, cell_type = cell
        with use_cell(cloud, 1, cell_type) as accessor:
            xs = accessor.Xs
            assert "ListAccessor" in repr(xs)
            assert xs == [1, 2]
            assert xs != [2, 1]
            assert (xs == 42) is False
            other = accessor.get("Xs")
            assert xs == other

    def test_accessor_on_missing_cell(self, cell):
        cloud, cell_type = cell
        with pytest.raises(CellNotFoundError):
            with use_cell(cloud, 999, cell_type):
                pass

    def test_cell_id_property(self, cell):
        cloud, cell_type = cell
        with use_cell(cloud, 1, cell_type) as accessor:
            assert accessor.cell_id == 1

    def test_dunder_attribute_raises(self, cell):
        """Dunder lookups never fall through to blob field access."""
        cloud, cell_type = cell
        with use_cell(cloud, 1, cell_type) as accessor:
            with pytest.raises(AttributeError):
                accessor.__fictional_dunder__


class TestAddressingEdgeCases:
    def test_machines_listing(self):
        table = AddressingTable(4, [3, 9])
        assert table.machines() == [3, 9]

    def test_repr(self):
        table = AddressingTable(4, range(2))
        text = repr(table)
        assert "16 slots" in text and "2 machines" in text

    def test_eq_against_other_types(self):
        table = AddressingTable(4, range(2))
        assert table != "not a table"

    def test_cloud_stats_for_machine_without_trunks(self):
        cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=3))
        cloud.addressing.remove_machine(1, [0])
        with pytest.raises(AddressingError):
            cloud.machine_stats(1)


class TestClusterEdgeCases:
    def test_proxy_down_raises(self):
        cluster = TrinityCluster(ClusterConfig(machines=2, proxies=1))
        proxy = cluster.proxies[0]
        proxy.register_protocol("p", lambda m, d: b"")
        proxy.alive = False
        with pytest.raises(MachineDownError):
            proxy.scatter_gather("p", b"")

    def test_scatter_gather_skips_dead_slaves(self):
        cluster = TrinityCluster(ClusterConfig(machines=3, proxies=1))
        for slave in cluster.slaves.values():
            slave.register_protocol("n", lambda m, d: b"ok")
        cluster.slaves[1].fail()
        replies = cluster.proxies[0].scatter_gather("n", b"")
        assert len(replies) == 2

    def test_client_put_retries_after_recovery(self, cluster, rng):
        client = cluster.new_client()
        client.put_cell(5, b"before")
        cluster.backup_to_tfs()
        owner = cluster.cloud.machine_of(5)
        cluster.fail_machine(owner)
        # put triggers detection + recovery + retry transparently
        client.put_cell(5, b"after")
        assert client.get_cell(5) == b"after"
        assert client.retries >= 1

    def test_heartbeat_threshold_validated(self, cluster):
        from repro.cluster.heartbeat import HeartbeatMonitor
        with pytest.raises(ValueError):
            HeartbeatMonitor(cluster, miss_threshold=0)

    def test_buffered_log_holders_skip_origin(self):
        from repro.cluster.recovery import BufferedLog
        log = BufferedLog(machines=4, replication=2)
        for origin in range(4):
            holders = log.holders_for(origin)
            assert origin not in holders
            assert len(holders) == 2

    def test_buffered_log_single_machine_cluster(self):
        from repro.cluster.recovery import BufferedLog
        log = BufferedLog(machines=1, replication=2)
        assert log.holders_for(0) == []


class TestGraphApiEdgeCases:
    def test_read_field_unknown(self, cloud):
        from repro.graph import GraphBuilder, plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema())
        builder.add_edge(0, 1)
        graph = builder.finalize()
        with pytest.raises(QueryError, match="no field"):
            graph.read_field(0, "Ghost")

    def test_undirected_inlinks_equal_outlinks(self, cloud):
        from repro.graph import GraphBuilder, plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
        builder.add_edge(0, 1)
        graph = builder.finalize()
        assert graph.inlinks(0) == graph.outlinks(0)

    def test_nodes_on_machine(self, cloud):
        from repro.graph import GraphBuilder, plain_graph_schema
        builder = GraphBuilder(cloud, plain_graph_schema())
        builder.add_edges([(i, i + 1) for i in range(20)])
        graph = builder.finalize()
        total = sum(
            len(graph.nodes_on(m)) for m in range(cloud.config.machines)
        )
        assert total == graph.num_nodes


class TestMemcloudPinEdgeCases:
    def test_pin_missing_cell(self, cloud):
        with pytest.raises(CellNotFoundError):
            with cloud.pin(424242):
                pass

    def test_len_empty_cloud(self, cloud):
        assert len(cloud) == 0
        assert 1 not in cloud
