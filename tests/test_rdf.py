"""Tests for the RDF store, SPARQL subset and LUBM generator."""

import pytest

from repro.config import ClusterConfig
from repro.errors import QueryError
from repro.memcloud import MemoryCloud
from repro.rdf import (
    LUBM_QUERIES,
    RdfStore,
    execute_sparql,
    generate_lubm,
    parse_sparql,
)


@pytest.fixture
def tiny_store(cloud):
    store = RdfStore(cloud)
    store.add_triple("alice", "knows", "bob")
    store.add_triple("alice", "knows", "carol")
    store.add_triple("bob", "knows", "carol")
    store.add_triple("alice", "rdf:type", "Person")
    store.add_triple("bob", "rdf:type", "Person")
    store.add_triple("carol", "rdf:type", "Robot")
    store.finalize()
    return store


@pytest.fixture(scope="module")
def lubm_store():
    cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=6))
    store = RdfStore(cloud)
    generate_lubm(store, universities=2, seed=0)
    store.finalize()
    return store


class TestStore:
    def test_triple_count(self, tiny_store):
        assert tiny_store.triple_count == 6

    def test_out_and_incoming(self, tiny_store):
        alice = tiny_store.resource_id("alice")
        carol = tiny_store.resource_id("carol")
        bob = tiny_store.resource_id("bob")
        assert sorted(tiny_store.out(alice, "knows")) == sorted([
            bob, carol,
        ])
        assert sorted(tiny_store.incoming(carol, "knows")) == sorted([
            tiny_store.resource_id("alice"), bob,
        ])

    def test_unknown_predicate_empty(self, tiny_store):
        alice = tiny_store.resource_id("alice")
        assert tiny_store.out(alice, "hates") == []

    def test_subjects_of(self, tiny_store):
        subjects = tiny_store.subjects_of("rdf:type", "Person")
        names = sorted(tiny_store.iri_of(s) for s in subjects)
        assert names == ["alice", "bob"]

    def test_unknown_resource_raises(self, tiny_store):
        with pytest.raises(QueryError):
            tiny_store.resource_id("mallory")

    def test_degree(self, tiny_store):
        alice = tiny_store.resource_id("alice")
        # out: knows x2 + type x1; in: none.
        assert tiny_store.degree(alice) == 3

    def test_add_after_finalize_rejected(self, tiny_store):
        with pytest.raises(QueryError, match="finalized"):
            tiny_store.add_triple("x", "y", "z")

    def test_cells_really_in_cloud(self, tiny_store):
        alice = tiny_store.resource_id("alice")
        assert tiny_store.cloud.contains(alice)
        # Blob decodes through the TSL schema.
        blob = tiny_store.cloud.get(alice)
        cell, _ = tiny_store.schema.cell("Resource").decode(blob, 0)
        assert cell["Iri"] == "alice"


class TestSparqlParser:
    def test_basic_parse(self):
        query = parse_sparql(
            "SELECT ?x WHERE { ?x knows bob . ?x rdf:type Person }"
        )
        assert query.select == ("?x",)
        assert len(query.patterns) == 2
        assert query.patterns[0].predicate == "knows"

    def test_angle_brackets_stripped(self):
        query = parse_sparql("SELECT ?x WHERE { ?x knows <bob> }")
        assert query.patterns[0].obj == "bob"

    def test_multi_select(self):
        query = parse_sparql("SELECT ?a ?b WHERE { ?a knows ?b }")
        assert query.select == ("?a", "?b")

    @pytest.mark.parametrize("bad", [
        "WHERE { ?x knows bob }",
        "SELECT ?x { ?x knows bob }",
        "SELECT x WHERE { ?x knows bob }",
        "SELECT ?x WHERE ?x knows bob",
        "SELECT ?x WHERE { ?x knows }",
        "SELECT ?x WHERE { }",
        "SELECT ?y WHERE { ?x knows bob }",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_sparql(bad)


class TestSparqlExecution:
    def test_single_pattern(self, tiny_store):
        result = execute_sparql(
            tiny_store, "SELECT ?x WHERE { ?x rdf:type Person }"
        )
        assert result.rows == [("alice",), ("bob",)]

    def test_join_two_patterns(self, tiny_store):
        result = execute_sparql(
            tiny_store,
            "SELECT ?x WHERE { ?x knows carol . ?x rdf:type Person }",
        )
        assert result.rows == [("alice",), ("bob",)]

    def test_forward_chain(self, tiny_store):
        result = execute_sparql(
            tiny_store,
            "SELECT ?z WHERE { alice knows ?y . ?y knows ?z }",
        )
        assert result.rows == [("carol",)]

    def test_two_variable_projection(self, tiny_store):
        result = execute_sparql(
            tiny_store, "SELECT ?a ?b WHERE { ?a knows ?b }"
        )
        assert ("alice", "bob") in result.rows
        assert len(result.rows) == 3

    def test_constant_constant_check(self, tiny_store):
        result = execute_sparql(
            tiny_store, "SELECT ?x WHERE { ?x knows bob . alice knows bob }"
        )
        assert result.rows  # the constant pattern holds, so ?x survives

    def test_no_match(self, tiny_store):
        result = execute_sparql(
            tiny_store, "SELECT ?x WHERE { ?x knows alice }"
        )
        assert result.rows == []

    def test_fully_unbound_pattern_scans(self, tiny_store):
        result = execute_sparql(tiny_store,
                                "SELECT ?a ?b WHERE { ?a ghost ?b }")
        assert result.rows == []

    def test_row_cap(self, tiny_store):
        with pytest.raises(QueryError, match="exceeded"):
            execute_sparql(tiny_store, "SELECT ?a ?b WHERE { ?a knows ?b }",
                           max_rows=1)

    def test_accounting(self, tiny_store):
        result = execute_sparql(
            tiny_store, "SELECT ?x WHERE { ?x rdf:type Person }"
        )
        assert result.elapsed > 0
        assert result.bindings_examined >= 1


class TestLubm:
    def test_scale_knobs(self, lubm_store):
        assert lubm_store.triple_count > 2000
        assert lubm_store.resource_count > 500

    def test_all_four_queries_return_rows(self, lubm_store):
        for name, text in LUBM_QUERIES.items():
            result = execute_sparql(lubm_store, text)
            assert result.rows, name

    def test_q1_semantics(self, lubm_store):
        result = execute_sparql(lubm_store, LUBM_QUERIES["Q1"])
        course = lubm_store.resource_id("Course0_of_Dept0_of_Univ0")
        grad = lubm_store.resource_id("GraduateStudent")
        for (iri,) in result.rows:
            student = lubm_store.resource_id(iri)
            assert course in lubm_store.out(student, "takesCourse")
            assert grad in lubm_store.out(student, "rdf:type")

    def test_q5_membership_semantics(self, lubm_store):
        result = execute_sparql(lubm_store, LUBM_QUERIES["Q5"])
        undergrad = lubm_store.resource_id("UndergraduateStudent")
        for student_iri, dept_iri in result.rows[:20]:
            student = lubm_store.resource_id(student_iri)
            dept = lubm_store.resource_id(dept_iri)
            assert undergrad in lubm_store.out(student, "rdf:type")
            assert dept in lubm_store.out(student, "memberOf")

    def test_q7_triangle_semantics(self, lubm_store):
        result = execute_sparql(lubm_store, LUBM_QUERIES["Q7"])
        for student_iri, professor_iri in result.rows:
            student = lubm_store.resource_id(student_iri)
            professor = lubm_store.resource_id(professor_iri)
            assert professor in lubm_store.out(student, "advisor")
            taught = set(lubm_store.out(professor, "teacherOf"))
            taken = set(lubm_store.out(student, "takesCourse"))
            assert taught & taken

    def test_query_complexity_ordering(self, lubm_store):
        """Q7 (3-pattern chain) yields more rows and pays more rounds
        than the selective lookup Q1."""
        q1 = execute_sparql(lubm_store, LUBM_QUERIES["Q1"])
        q7 = execute_sparql(lubm_store, LUBM_QUERIES["Q7"])
        assert len(q7.rows) > len(q1.rows)
        assert len(q7.round_times) > len(q1.round_times)
