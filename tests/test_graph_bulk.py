"""Equivalence tests for the vectorized graph-loading path.

``GraphBuilder.add_edges`` (numpy) + ``finalize(bulk=True)`` must produce
a memory cloud bit-identical to the one built by a scalar ``add_edge``
loop + ``finalize(bulk=False)`` — same node blobs, same trunk contents.
The batch TSL encoder is additionally pinned against the scalar encoder
by a hypothesis property.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig
from repro.errors import QueryError, SchemaMismatchError
from repro.graph import GraphBuilder
from repro.graph.model import plain_graph_schema, social_graph_schema
from repro.memcloud import MemoryCloud
from repro.obs import MetricsRegistry
from repro.tsl import LONG, ListType, StructType, batch_encoder_for
from repro.tsl.batch import BatchStructEncoder

NODE = st.integers(min_value=0, max_value=40)
EDGES = st.lists(st.tuples(NODE, NODE), max_size=120)


def make_cloud():
    return MemoryCloud(ClusterConfig(machines=2, trunk_bits=3),
                       MetricsRegistry())


def build(edges, directed, bulk, cross_check=False, as_array=False):
    cloud = make_cloud()
    builder = GraphBuilder(cloud, plain_graph_schema(directed=directed))
    if as_array and edges:
        builder.add_edges(np.asarray(edges, dtype=np.int64))
    else:
        for src, dst in edges:
            builder.add_edge(src, dst)
    graph = builder.finalize(bulk=bulk, cross_check=cross_check)
    return cloud, graph


def cloud_cells(cloud):
    return {
        trunk_id: dict(trunk.dump_cells())
        for trunk_id, trunk in cloud.trunks.items()
    }


class TestAddEdgesEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(EDGES, st.booleans())
    def test_array_ingest_matches_scalar_loop(self, edges, directed):
        scalar_cloud, scalar_graph = build(edges, directed, bulk=False)
        array_cloud, array_graph = build(edges, directed, bulk=False,
                                         as_array=True)
        assert cloud_cells(scalar_cloud) == cloud_cells(array_cloud)
        assert scalar_graph.node_ids == array_graph.node_ids

    def test_self_loops(self):
        for directed in (True, False):
            edges = [(1, 1), (1, 2), (2, 2), (1, 1)]
            scalar_cloud, _ = build(edges, directed, bulk=False)
            array_cloud, _ = build(edges, directed, bulk=False,
                                   as_array=True)
            assert cloud_cells(scalar_cloud) == cloud_cells(array_cloud)

    def test_undirected_mirror_order(self):
        # The scalar loop appends dst to src's list *then* src to dst's:
        # an interleaved pattern the vectorized grouping must reproduce.
        edges = [(1, 2), (2, 1), (1, 3), (3, 2)]
        scalar_cloud, scalar_graph = build(edges, False, bulk=False)
        array_cloud, array_graph = build(edges, False, bulk=False,
                                         as_array=True)
        assert cloud_cells(scalar_cloud) == cloud_cells(array_cloud)
        for node in scalar_graph.node_ids:
            assert scalar_graph.outlinks(node) == array_graph.outlinks(node)

    def test_iterable_input_falls_back_to_scalar(self):
        cloud = make_cloud()
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges((pair for pair in [(1, 2), (2, 3)]))
        assert builder.edge_count == 2
        graph = builder.finalize()
        assert graph.outlinks(1) == [2]

    def test_bad_array_shape_rejected(self):
        builder = GraphBuilder(make_cloud(),
                               plain_graph_schema(directed=True))
        with pytest.raises(QueryError):
            builder.add_edges(np.zeros((3, 3), dtype=np.int64))

    def test_empty_inputs(self):
        builder = GraphBuilder(make_cloud(),
                               plain_graph_schema(directed=True))
        builder.add_edges([])
        builder.add_edges(np.empty((0, 2), dtype=np.int64))
        assert builder.edge_count == 0
        assert builder.node_count == 0


class TestEdgeCount:
    def test_running_counter(self):
        builder = GraphBuilder(make_cloud(),
                               plain_graph_schema(directed=True))
        builder.add_edge(1, 2)
        assert builder.edge_count == 1
        builder.add_edges(np.asarray([(2, 3), (3, 4)], dtype=np.int64))
        assert builder.edge_count == 3

    def test_undirected_counts_logical_edges(self):
        # One add_edge = one logical edge even though it lands in two
        # neighbor lists (the historical sum(len)//2 semantics).
        builder = GraphBuilder(make_cloud(),
                               plain_graph_schema(directed=False))
        builder.add_edge(1, 2)
        builder.add_edges(np.asarray([(2, 3)], dtype=np.int64))
        assert builder.edge_count == 2


class TestBulkFinalize:
    @settings(max_examples=40, deadline=None)
    @given(EDGES, st.booleans())
    def test_bulk_finalize_matches_scalar(self, edges, directed):
        scalar_cloud, _ = build(edges, directed, bulk=False)
        bulk_cloud, _ = build(edges, directed, bulk=True, as_array=True,
                              cross_check=True)
        assert cloud_cells(scalar_cloud) == cloud_cells(bulk_cloud)

    def test_bulk_graph_is_queryable(self):
        edges = [(1, 2), (1, 3), (2, 3), (4, 1)]
        _, graph = build(edges, True, bulk=True, as_array=True)
        assert graph.outlinks(1) == [2, 3]
        assert graph.inlinks(3) == [1, 2]

    def test_attributes_survive_bulk_path(self):
        for bulk in (False, True):
            cloud = make_cloud()
            builder = GraphBuilder(cloud, social_graph_schema())
            builder.add_node(1, Name="Alice")
            builder.add_node(2, Name="Bob")
            builder.add_edge(1, 2)
            graph = builder.finalize(bulk=bulk, cross_check=bulk)
            assert graph.attribute(1, "Name") == "Alice"
            assert graph.attribute(2, "Name") == "Bob"

    def test_scalar_and_bulk_attribute_blobs_identical(self):
        clouds = []
        for bulk in (False, True):
            cloud = make_cloud()
            builder = GraphBuilder(cloud, social_graph_schema())
            for i, name in enumerate(["Ada", "Guy", "三位一体", ""]):
                builder.add_node(i, Name=name)
            builder.add_edge(0, 1)
            builder.add_edge(2, 3)
            builder.finalize(bulk=bulk)
            clouds.append(cloud)
        assert cloud_cells(clouds[0]) == cloud_cells(clouds[1])

    def test_finalize_twice_rejected(self):
        builder = GraphBuilder(make_cloud(),
                               plain_graph_schema(directed=True))
        builder.add_edge(1, 2)
        builder.finalize()
        with pytest.raises(QueryError):
            builder.finalize()


LONG_LIST = st.lists(
    st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=30)


class TestBatchEncoder:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(LONG_LIST, LONG_LIST), max_size=20))
    def test_plain_schema_equivalence(self, rows):
        node_type = plain_graph_schema(directed=True).node_type
        records = [{"Outlinks": out, "Inlinks": in_} for out, in_ in rows]
        batch = batch_encoder_for(node_type).encode_many(records)
        assert batch == [node_type.encode(r) for r in records]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.text(max_size=12), LONG_LIST),
                    max_size=15))
    def test_social_schema_equivalence(self, rows):
        node_type = social_graph_schema().node_type
        records = [{"Name": name, "Friends": friends}
                   for name, friends in rows]
        batch = batch_encoder_for(node_type).encode_many(records)
        assert batch == [node_type.encode(r) for r in records]

    def test_missing_fields_take_defaults(self):
        node_type = plain_graph_schema(directed=True).node_type
        batch = batch_encoder_for(node_type).encode_many([{}])
        assert batch == [node_type.encode({"Outlinks": [], "Inlinks": []})]

    def test_unknown_field_raises_canonical_error(self):
        node_type = plain_graph_schema(directed=True).node_type
        with pytest.raises(SchemaMismatchError):
            batch_encoder_for(node_type).encode_many([{"Nope": []}])

    def test_out_of_range_element_raises_like_scalar(self):
        node_type = plain_graph_schema(directed=True).node_type
        record = {"Outlinks": [2**63], "Inlinks": []}
        with pytest.raises(SchemaMismatchError):
            node_type.encode(record)
        with pytest.raises(SchemaMismatchError):
            batch_encoder_for(node_type).encode_many([record])

    def test_nested_list_raises_like_scalar(self):
        node_type = plain_graph_schema(directed=True).node_type
        record = {"Outlinks": [[1, 2]], "Inlinks": []}
        with pytest.raises(SchemaMismatchError):
            node_type.encode(record)
        with pytest.raises(SchemaMismatchError):
            batch_encoder_for(node_type).encode_many([record])

    def test_float_elements_match_scalar_behaviour(self):
        node_type = plain_graph_schema(directed=True).node_type
        record = {"Outlinks": [3.7, -3.7], "Inlinks": []}
        batch = batch_encoder_for(node_type).encode_many([record])
        assert batch == [node_type.encode(record)]

    def test_empty_batch(self):
        node_type = plain_graph_schema(directed=True).node_type
        assert batch_encoder_for(node_type).encode_many([]) == []

    def test_encoder_cached_per_type(self):
        node_type = plain_graph_schema(directed=True).node_type
        assert batch_encoder_for(node_type) is batch_encoder_for(node_type)

    def test_fresh_type_gets_fresh_encoder(self):
        a = StructType("A", [("Xs", ListType(LONG))])
        b = StructType("A", [("Xs", ListType(LONG))])
        encoder_a = batch_encoder_for(a)
        encoder_b = batch_encoder_for(b)
        assert encoder_a.struct_type is a
        assert encoder_b.struct_type is b

    def test_direct_construction(self):
        node_type = plain_graph_schema(directed=True).node_type
        encoder = BatchStructEncoder(node_type)
        records = [{"Outlinks": [1], "Inlinks": [2, 3]}]
        assert encoder.encode_many(records) == [
            node_type.encode(records[0])]
