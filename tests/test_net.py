"""Tests for the network substrate: cost model, rounds, runtime."""

import pytest

from repro.config import NetworkParams
from repro.errors import MachineDownError, ProtocolError
from repro.net import Message, MessageRuntime, ParallelRound, SimNetwork
from repro.tsl import compile_tsl


class TestNetworkParams:
    def test_transfer_time_components(self):
        params = NetworkParams(latency=1e-4, bandwidth=1e8,
                               per_message_overhead=1e-6,
                               packing_enabled=False)
        # 1 message, 1e6 bytes: latency + bytes/bw + overhead
        assert params.transfer_time(10**6) == pytest.approx(
            1e-4 + 0.01 + 1e-6
        )

    def test_packing_shares_latency(self):
        packed = NetworkParams(packing_enabled=True)
        unpacked = NetworkParams(packing_enabled=False)
        size, messages = 1000, 100
        assert (packed.transfer_time(size, messages)
                < unpacked.transfer_time(size, messages))

    def test_packing_flushes_large_payloads(self):
        params = NetworkParams(packing_enabled=True, max_packed_bytes=1024)
        one_flush = params.transfer_time(512, 1)
        many_flushes = params.transfer_time(512 * 10, 1)
        assert many_flushes > one_flush

    def test_negative_size_rejected(self):
        with pytest.raises(Exception):
            NetworkParams().transfer_time(-1)


class TestSimNetwork:
    def test_remote_transfer_counts(self):
        net = SimNetwork()
        elapsed = net.transfer(0, 1, 100, messages=2)
        assert elapsed > 0
        assert net.counters.messages == 2
        assert net.counters.transfers == 1
        assert net.counters.payload_bytes == 100

    def test_local_transfer_skips_wire(self):
        net = SimNetwork()
        local = net.transfer(0, 0, 10**6)
        remote = net.transfer(0, 1, 10**6)
        assert local < remote
        assert net.counters.local_messages == 1
        assert net.counters.transfers == 1

    def test_clock_advances(self):
        net = SimNetwork()
        net.clock.advance(1.5)
        assert net.clock.now == 1.5
        with pytest.raises(ValueError):
            net.clock.advance(-1)

    def test_reset_counters(self):
        net = SimNetwork()
        net.transfer(0, 1, 10)
        net.reset_counters()
        assert net.counters.messages == 0


class TestParallelRound:
    def test_elapsed_is_slowest_machine(self):
        net = SimNetwork()
        round_ = ParallelRound(net)
        round_.add_compute(0, 0.5)
        round_.add_compute(1, 2.0)
        assert round_.finish() == pytest.approx(2.0)
        assert net.clock.now == pytest.approx(2.0)

    def test_parallelism_divides_compute(self):
        net = SimNetwork()
        round_ = ParallelRound(net)
        round_.add_compute(0, 8.0)
        assert round_.finish(parallelism=8) == pytest.approx(1.0)

    def test_serial_compute_not_divided(self):
        net = SimNetwork()
        round_ = ParallelRound(net)
        round_.add_serial_compute(0, 1.0)
        round_.add_compute(0, 8.0)
        assert round_.finish(parallelism=8) == pytest.approx(2.0)

    def test_messages_charged_per_link(self):
        net = SimNetwork()
        round_ = ParallelRound(net)
        round_.add_message(0, 1, 1000, count=10)
        elapsed = round_.finish()
        assert elapsed > 0
        assert net.counters.messages == 10

    def test_double_finish_rejected(self):
        round_ = ParallelRound(SimNetwork())
        round_.finish()
        with pytest.raises(RuntimeError):
            round_.finish()

    def test_machines_touched(self):
        round_ = ParallelRound(SimNetwork())
        round_.add_compute(0, 1.0)
        round_.add_message(2, 3, 10)
        assert round_.machines_touched == 2


class TestMessage:
    def test_size_includes_envelope(self):
        message = Message(0, 1, "p", b"12345")
        assert message.size == 5 + 24

    def test_reply_swaps_endpoints(self):
        request = Message(0, 1, "p", b"req")
        response = request.reply(b"resp")
        assert (response.src, response.dst) == (1, 0)
        assert response.correlation_id == request.correlation_id
        assert not response.is_request


class TestMessageRuntime:
    def test_sync_roundtrip_bytes(self):
        runtime = MessageRuntime()
        runtime.register_handler(1, "echo", lambda m, d: d + b"!")
        assert runtime.send_sync(0, 1, "echo", b"hi") == b"hi!"
        assert runtime.network.clock.now > 0

    def test_sync_with_tsl_schema(self):
        schema = compile_tsl("""
        struct M { string Text; }
        protocol Echo { Type: Syn; Request: M; Response: M; }
        """)
        runtime = MessageRuntime(schema=schema)
        runtime.register_handler(
            1, "Echo", lambda m, d: {"Text": d["Text"].upper()},
        )
        reply = runtime.send_sync(0, 1, "Echo", {"Text": "hello"})
        assert reply == {"Text": "HELLO"}

    def test_missing_handler_raises(self):
        runtime = MessageRuntime()
        with pytest.raises(ProtocolError, match="no handler"):
            runtime.send_sync(0, 1, "ghost", b"")

    def test_async_buffers_until_flush(self):
        runtime = MessageRuntime()
        received = []
        runtime.register_handler(1, "note", lambda m, d: received.append(d))
        runtime.send_async(0, 1, "note", b"a")
        runtime.send_async(0, 1, "note", b"b")
        assert received == []
        assert runtime.pending_async == 2
        elapsed = runtime.flush()
        assert received == [b"a", b"b"]
        assert elapsed > 0
        assert runtime.pending_async == 0

    def test_flush_packs_per_link(self):
        runtime = MessageRuntime()
        runtime.register_handler(1, "n", lambda m, d: None)
        runtime.register_handler(2, "n", lambda m, d: None)
        for _ in range(50):
            runtime.send_async(0, 1, "n", b"x")
            runtime.send_async(0, 2, "n", b"x")
        runtime.flush()
        # 100 logical messages but only a handful of physical transfers.
        assert runtime.network.counters.messages == 100
        assert runtime.network.counters.transfers <= 4

    def test_send_to_down_machine(self):
        runtime = MessageRuntime()
        runtime.register_handler(1, "p", lambda m, d: None)
        runtime.fail_machine(1)
        with pytest.raises(MachineDownError):
            runtime.send_sync(0, 1, "p", b"")
        with pytest.raises(MachineDownError):
            runtime.send_async(0, 1, "p", b"")
        runtime.recover_machine(1)
        runtime.send_sync(0, 1, "p", b"")

    def test_void_protocol_payload_validation(self):
        schema = compile_tsl("protocol Ping { Type: Syn; Request: void; }")
        runtime = MessageRuntime(schema=schema)
        runtime.register_handler(1, "Ping", lambda m, d: None)
        assert runtime.send_sync(0, 1, "Ping") is None
        with pytest.raises(ProtocolError, match="void"):
            runtime.send_sync(0, 1, "Ping", {"x": 1})

    def test_register_everywhere(self):
        runtime = MessageRuntime()
        runtime.register_everywhere(
            range(3), "who",
            lambda machine_id: (lambda m, d: machine_id.to_bytes(1, "little")),
        )
        assert runtime.send_sync(9, 2, "who", b"") == b"\x02"

    def test_unencodable_payload_rejected(self):
        runtime = MessageRuntime()
        runtime.register_handler(1, "p", lambda m, d: None)
        with pytest.raises(ProtocolError, match="cannot encode"):
            runtime.send_sync(0, 1, "p", {"dict": "without schema"})


class TestAsyncReplies:
    def test_callback_receives_reply(self):
        runtime = MessageRuntime()
        runtime.register_handler(1, "double", lambda m, d: d + d)
        received = []
        runtime.send_async(0, 1, "double", b"ab",
                           on_reply=received.append)
        assert received == []
        runtime.flush()
        assert received == [b"abab"]

    def test_callbacks_with_schema(self):
        schema = compile_tsl("""
        struct M { int X; }
        protocol Inc { Type: Asyn; Request: M; Response: M; }
        """)
        runtime = MessageRuntime(schema=schema)
        runtime.register_handler(
            2, "Inc", lambda m, d: {"X": d["X"] + 1},
        )
        out = []
        for value in range(5):
            runtime.send_async(0, 2, "Inc", {"X": value},
                               on_reply=lambda r: out.append(r["X"]))
        runtime.flush()
        assert out == [1, 2, 3, 4, 5]

    def test_fire_and_forget_has_no_reply_cost(self):
        runtime = MessageRuntime()
        runtime.register_handler(1, "note", lambda m, d: b"ignored")
        runtime.send_async(0, 1, "note", b"x")
        runtime.flush()
        transfers_without = runtime.network.counters.transfers
        runtime.send_async(0, 1, "note", b"x", on_reply=lambda r: None)
        runtime.flush()
        # The reply ride adds one extra transfer.
        assert runtime.network.counters.transfers == transfers_without + 2


class TestBroadcastSync:
    def test_gathers_replies_in_order(self):
        runtime = MessageRuntime()
        for machine in range(4):
            runtime.register_handler(
                machine, "who",
                lambda m, d, mid=machine: mid.to_bytes(1, "little"),
            )
        replies = runtime.broadcast_sync(9, range(4), "who", b"")
        assert replies == [b"\x00", b"\x01", b"\x02", b"\x03"]

    def test_down_machine_rejected(self):
        runtime = MessageRuntime()
        runtime.register_handler(0, "p", lambda m, d: b"")
        runtime.register_handler(1, "p", lambda m, d: b"")
        runtime.fail_machine(1)
        with pytest.raises(MachineDownError):
            runtime.broadcast_sync(9, [0, 1], "p", b"")

    def test_charges_two_rounds(self):
        runtime = MessageRuntime()
        for machine in range(3):
            runtime.register_handler(machine, "p", lambda m, d: b"r")
        before = runtime.network.clock.now
        runtime.broadcast_sync(9, range(3), "p", b"payload")
        assert runtime.network.clock.now > before
