"""Setup shim: enables legacy editable installs where the ``wheel``
package is unavailable (PEP 660 editable builds require it)."""
from setuptools import setup

setup()
