"""Benchmark-suite configuration.

The benchmarks live outside ``testpaths`` and only run via
``pytest benchmarks/ --benchmark-only``.
"""

import sys
import pathlib

# Make `_harness` importable regardless of rootdir layout.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
