"""Wall-clock benchmark: resident vs paged trunk storage.

Not a pytest benchmark (hence the underscore — the collector skips it):
this harness measures **real** wall-clock seconds loading a streamed
social graph (``repro.generators.stream_social_edges`` — the full edge
list never materialises) into two otherwise-identical clouds:

* resident — today's in-RAM ``BytesArena`` tier;
* paged — the mmap'd page-file tier with a page budget deliberately
  smaller than the graph's arena bytes, so the load and every query
  fault, evict and write back pages continuously.

After timing, a cross-check runs the same people-search queries on
both clouds and asserts bit-identical answers, then records the
``trunk.page.*`` counters that prove the paged run actually paged.
Results land in ``benchmarks/results/BENCH_paged.json``.

Usage::

    PYTHONPATH=src python benchmarks/_perf_paged.py            # full run
    PYTHONPATH=src python benchmarks/_perf_paged.py --smoke    # CI-sized

``--smoke`` also compares against the committed baseline JSON and
prints a GitHub Actions ``::warning::`` (never a failure) when the
paged slowdown regressed by more than 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms.people_search import people_search  # noqa: E402
from repro.config import ClusterConfig, MemoryParams      # noqa: E402
from repro.generators import stream_build_social_graph    # noqa: E402
from repro.memcloud import MemoryCloud                    # noqa: E402
from repro.net.simnet import SimNetwork                   # noqa: E402
from repro.obs import MetricsRegistry                     # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_paged.json"

MACHINES = 2
TRUNK_BITS = 4
SEED = 42
PAGE_SIZE = 4096
PAGE_BUDGET = 2          # 8 KiB resident per trunk: far below the graph
QUERY_SEEDS = (0, 1, 2, 3)


def make_memory(storage: str) -> MemoryParams:
    return MemoryParams(trunk_size=4 * 1024 * 1024, storage=storage,
                        storage_page_size=PAGE_SIZE,
                        page_budget=PAGE_BUDGET)


def load_streamed(storage: str, n: int, avg_degree: float):
    """Stream-load one cloud; returns (cloud, graph, edges, seconds)."""
    registry = MetricsRegistry()
    cloud = MemoryCloud(
        ClusterConfig(machines=MACHINES, trunk_bits=TRUNK_BITS,
                      memory=make_memory(storage)),
        registry,
    )
    start = time.perf_counter()
    graph, edge_count = stream_build_social_graph(
        cloud, n, avg_degree=avg_degree, seed=SEED)
    elapsed = time.perf_counter() - start
    return cloud, graph, edge_count, elapsed


def run_queries(graph) -> tuple[list, float]:
    """People-search sweep; returns (results, seconds)."""
    start = time.perf_counter()
    results = [people_search(graph, seed, "David", hops=3,
                             network=SimNetwork(), batch=True)
               for seed in QUERY_SEEDS]
    return results, time.perf_counter() - start


def page_metrics(cloud) -> dict:
    """Sum the trunk.page.* series the paged storage tier emitted."""
    snap = cloud.obs.snapshot()

    def total(name: str) -> int:
        series = snap.get(name, {}).get("series", [])
        return int(sum(s["value"] for s in series))

    return {
        "fault": total("trunk.page.fault.total"),
        "evict": total("trunk.page.evict.total"),
        "writeback": total("trunk.page.writeback.total"),
        "span_fallback": total("trunk.page.span_fallback.total"),
    }


def arena_footprint(cloud) -> dict:
    """Live arena bytes vs the bytes the page budget lets stay resident."""
    live = sum(t.stats().live_bytes for t in cloud.trunks.values())
    budget = len(cloud.trunks) * PAGE_BUDGET * PAGE_SIZE
    resident = sum(
        getattr(t.storage, "resident_pages", 0) * PAGE_SIZE
        for t in cloud.trunks.values())
    return {"live_bytes": int(live), "budget_bytes": int(budget),
            "resident_bytes": int(resident)}


def run_one_scale(n: int, avg_degree: float) -> dict:
    res_cloud, res_graph, res_edges, res_load = load_streamed(
        "resident", n, avg_degree)
    pag_cloud, pag_graph, pag_edges, pag_load = load_streamed(
        "paged", n, avg_degree)
    try:
        if res_edges != pag_edges:
            raise AssertionError(
                f"streamed edge counts diverge: {res_edges} vs {pag_edges}")

        res_results, res_query = run_queries(res_graph)
        pag_results, pag_query = run_queries(pag_graph)
        for seed, a, b in zip(QUERY_SEEDS, res_results, pag_results):
            if sorted(a.matches) != sorted(b.matches) or \
                    a.visited != b.visited:
                raise AssertionError(
                    f"seed {seed}: paged answer diverges from resident")

        footprint = arena_footprint(pag_cloud)
        if footprint["live_bytes"] <= PAGE_BUDGET * PAGE_SIZE:
            print(f"::warning::perf-paged: n={n} graph fits one trunk's "
                  f"page budget; sweep is not exercising eviction")
        metrics = page_metrics(pag_cloud)
        slowdown = ((pag_load + pag_query) / (res_load + res_query)
                    if res_load + res_query else float("inf"))
        return {
            "nodes": n,
            "edges": int(res_edges),
            "resident": {"load_seconds": res_load,
                         "query_seconds": res_query},
            "paged": {"load_seconds": pag_load,
                      "query_seconds": pag_query,
                      "page_metrics": metrics,
                      "footprint": footprint},
            "slowdown": slowdown,
            "cross_check": {"queries_compared": len(QUERY_SEEDS),
                            "identical": True},
        }
    finally:
        res_cloud.release_arenas()
        pag_cloud.release_arenas()


def run_bench(sizes: list[int], avg_degree: float) -> dict:
    bench = {
        "generator": {"kind": "streamed-chung-lu",
                      "avg_degree": avg_degree, "seed": SEED},
        "machines": MACHINES,
        "trunk_bits": TRUNK_BITS,
        "page_size": PAGE_SIZE,
        "page_budget": PAGE_BUDGET,
        "python": platform.python_version(),
        "results": {},
    }
    for n in sizes:
        entry = run_one_scale(n, avg_degree)
        bench["results"][f"n_{n}"] = entry
        m = entry["paged"]["page_metrics"]
        print(f"n {n:7d}  edges {entry['edges']:8d}   "
              f"resident {(entry['resident']['load_seconds'] + entry['resident']['query_seconds']) * 1e3:8.1f} ms   "
              f"paged {(entry['paged']['load_seconds'] + entry['paged']['query_seconds']) * 1e3:8.1f} ms   "
              f"slowdown {entry['slowdown']:5.2f}x   "
              f"faults {m['fault']:6d}  evicts {m['evict']:6d}  "
              f"writebacks {m['writeback']:6d}")
    return bench


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when paged slowdown regressed >2x vs baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        if entry["slowdown"] > base["slowdown"] * 2.0:
            print(f"::warning::perf-paged: {name} slowdown "
                  f"{entry['slowdown']:.2f}x is more than 2x above the "
                  f"committed baseline {base['slowdown']:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized graphs; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--nodes", type=int, default=None,
                        help="run a single graph size")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_paged.json)")
    args = parser.parse_args()

    if args.nodes is not None:
        sizes = [args.nodes]
    elif args.smoke:
        sizes = [4000]
    else:
        sizes = [4000, 8000, 20000]
    bench = run_bench(sizes=sizes, avg_degree=8.0)

    out = args.out or BENCH_PATH
    if args.smoke:
        # Compare against the committed baseline before overwriting it.
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
