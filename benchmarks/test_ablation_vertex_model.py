"""Ablation: restrictive vs general vertex-centric model (Section 5.3).

The restrictive model (vertices message a fixed set — their neighbors)
is what makes the communication pattern "predictable iteration after
iteration" and unlocks hub buffering + action-script scheduling.  This
ablation runs the same semantic computation (everyone pushes a value to
its out-neighbors) through both models and compares the charged wire
traffic; the general-model program sends the identical messages but,
being unpredictable, gets no hub optimisation.
"""

from repro.compute import BspEngine, VertexProgram
from repro.generators import powerlaw_edges

from _harness import build_topology, format_table, report


class RestrictivePush(VertexProgram):
    restrictive = True
    uniform_messages = True

    def compute(self, ctx, vertex, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1.0)
        ctx.vote_to_halt()


class GeneralPush(VertexProgram):
    restrictive = False       # same sends, declared unpredictable
    uniform_messages = False

    def compute(self, ctx, vertex, messages):
        if ctx.superstep == 0:
            for neighbor in ctx.out_neighbors():
                ctx.send(int(neighbor), 1.0)
        ctx.vote_to_halt()


def run_ablation():
    edges = powerlaw_edges(6_000, gamma=2.16, avg_degree=13, seed=2)
    topology = build_topology(edges, machines=8, directed=False,
                              trunk_bits=7)
    rows = []
    stats = {}
    for name, program in (("restrictive", RestrictivePush()),
                          ("general", GeneralPush())):
        engine = BspEngine(topology, hub_buffering=True, hub_fraction=0.01)
        result = engine.run(program, max_supersteps=3)
        first = result.supersteps[0]
        stats[name] = first
        rows.append((
            name, first.messages, first.remote_transfers,
            f"{first.elapsed * 1e3:.2f}",
        ))
    return rows, stats


def test_ablation_vertex_model(benchmark):
    rows, stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_vertex_model", format_table(
        ("model", "logical messages", "wire transfers", "superstep ms"),
        rows,
    ))
    # Identical logical traffic...
    assert stats["restrictive"].messages == stats["general"].messages
    # ...but the predictable pattern ships far fewer wire messages.
    assert (stats["restrictive"].remote_transfers
            < 0.8 * stats["general"].remote_transfers)
    assert stats["restrictive"].elapsed <= stats["general"].elapsed
