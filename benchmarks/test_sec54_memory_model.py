"""Section 5.4: the Type A / Type B memory-residence model.

The paper derives::

    S  = V(16 + k + l + m) + 8E
    S' = pS + (1 - p) V (16 + m)
    saved = (1 - p)(k + l)V + (1 - p) 8E

and computes that with k = l = m = 8 and p = 0.1, "for the Facebook
social graph, 78 GB memory space can be saved".  This bench reproduces
the table for several graph sizes, checks the headline number, and
cross-validates the analytic model against a measured residence plan on
a real topology.

The model prices adjacency at 8 bytes per edge — the raw fixed-width
layout.  Since the adaptive per-cell layouts (delta-varint, bitmap)
undercut that price, the bench also measures the actual stored
adjacency bytes per layout on a real R-MAT graph, raw vs adaptive, and
asserts the adaptive encoding never costs more than raw.
"""

from repro.compute import MemoryResidenceModel
from repro.compute.scheduler import BipartiteScheduler
from repro.compute.residence import plan_residence
from repro.config import ClusterConfig, MemoryParams
from repro.generators import rmat_edges
from repro.graph import GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud
from repro.tsl import (
    LAYOUT_BITMAP,
    LAYOUT_DELTA_VARINT,
    LAYOUT_RAW,
    AdjacencyListType,
)

from _harness import build_topology, format_table, gb, report

_LAYOUT_NAMES = {LAYOUT_RAW: "raw", LAYOUT_DELTA_VARINT: "delta-varint",
                 LAYOUT_BITMAP: "bitmap"}


def adjacency_layout_bytes(graph):
    """Measured stored adjacency bytes per layout tag: ``{name: bytes}``."""
    node_type = graph.graph_schema.node_type
    fields = [(name, tsl_type) for name, tsl_type in node_type.fields
              if isinstance(tsl_type, AdjacencyListType)]
    totals = dict.fromkeys(_LAYOUT_NAMES.values(), 0)
    counts = dict.fromkeys(_LAYOUT_NAMES.values(), 0)
    for uid in graph.node_ids:
        blob = graph.cloud.get(uid)
        for name, tsl_type in fields:
            offset = node_type.field_offset(blob, name)
            end = tsl_type.skip(blob, offset)
            layout = _LAYOUT_NAMES[tsl_type.stored_layout(blob, offset)]
            totals[layout] += end - offset
            counts[layout] += 1
    return totals, counts


def measure_layout_footprint(scale=12, avg_degree=13, seed=1):
    """Load the same R-MAT edges under the raw and the adaptive layout
    policy; returns per-policy ``(totals, counts)`` dicts."""
    edges = rmat_edges(scale=scale, avg_degree=avg_degree, seed=seed)
    measured = {}
    for policy in ("raw", "adaptive"):
        cloud = MemoryCloud(ClusterConfig(
            machines=4, trunk_bits=6,
            memory=MemoryParams(trunk_size=8 * 1024 * 1024,
                                layout_policy=policy)))
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges(edges.tolist())
        measured[policy] = adjacency_layout_bytes(builder.finalize())
    return measured

FACEBOOK_VERTICES = 800_000_000
FACEBOOK_EDGES = FACEBOOK_VERTICES * 13


def run_model():
    model = MemoryResidenceModel(k=8, l=8, m=8)
    rows = []
    for name, vertices, degree in (
        ("Facebook-scale", FACEBOOK_VERTICES, 13),
        ("1B-node R-MAT", 1_000_000_000, 13),
        ("256M web graph", 256_000_000, 16),
    ):
        edges = vertices * degree
        online = model.online_bytes(vertices, edges)
        offline = model.offline_bytes(vertices, edges, 0.1)
        saved = model.saved_bytes(vertices, edges, 0.1)
        rows.append((name, gb(online), gb(offline), gb(saved)))
    return model, rows


def test_sec54_memory_model(benchmark):
    model, rows = benchmark.pedantic(run_model, rounds=1, iterations=1)
    facebook_saved = model.saved_bytes(
        FACEBOOK_VERTICES, FACEBOOK_EDGES, 0.1
    )

    # Cross-validate against a measured residence plan: build a real
    # topology, schedule ~10% of machine 0's vertices, and compare the
    # measured Type A/B split with the analytic per-class prices.
    edges = rmat_edges(scale=12, avg_degree=13, seed=1)
    topology = build_topology(edges, machines=8, trunk_bits=7,
                              include_inlinks=True)
    scheduler = BipartiteScheduler(topology, num_partitions=10)
    plan = scheduler.plan_for_machine(0)
    # Partitions are balanced by in-edge volume, not vertex count, so
    # pick the one whose population is closest to the nominal 1/10 of
    # the machine as the representative scheduled slice.
    local = topology.nodes_of_machine(0)
    target = len(local) / 10
    scheduled = min(plan.partitions, key=lambda p: abs(len(p) - target))
    residence = plan_residence(topology, 0, scheduled, model)
    all_resident = plan_residence(topology, 0, local, model)

    lines = format_table(
        ("graph", "online S (GB)", "offline S' (GB)", "saved (GB)"), rows,
    )
    lines.append("")
    lines.append(
        f"paper headline: {facebook_saved / 1e9:.1f} GB saved for the "
        "Facebook graph (paper says 78 GB)"
    )
    lines.append(
        f"measured plan (machine 0, p={residence.type_a_fraction:.2f}): "
        f"{residence.resident_bytes / 1e3:.0f} KB resident vs "
        f"{all_resident.resident_bytes / 1e3:.0f} KB all-Type-A"
    )

    # Measured adjacency bytes per layout on a scale-12 R-MAT graph: the
    # 8E term above assumes raw; the adaptive policy undercuts it.
    measured = measure_layout_footprint()
    raw_total = sum(measured["raw"][0].values())
    adaptive_total = sum(measured["adaptive"][0].values())
    lines.append("")
    lines.append("measured adjacency bytes, scale-12 R-MAT (raw policy vs "
                 "adaptive per-cell layouts):")
    for policy in ("raw", "adaptive"):
        totals, counts = measured[policy]
        split = ", ".join(
            f"{layout}: {totals[layout]:,} B / {counts[layout]:,} lists"
            for layout in ("raw", "delta-varint", "bitmap"))
        lines.append(f"  {policy:<9} {split}")
    lines.append(
        f"  adaptive / raw = {adaptive_total / raw_total:.3f} "
        f"({raw_total - adaptive_total:,} bytes saved)"
    )
    report("sec54_memory_model", lines)

    # A raw-policy cloud stores everything raw; the adaptive one must
    # never cost more (the chooser is an exact-size argmin with raw as
    # a candidate).
    assert measured["raw"][0]["delta-varint"] == 0
    assert measured["raw"][0]["bitmap"] == 0
    assert adaptive_total <= raw_total

    # Headline within 20% (the paper's "Facebook graph" constants are
    # round numbers; see EXPERIMENTS.md).
    assert abs(facebook_saved - 78e9) / 78e9 < 0.20
    # Offline residence must save a large share of memory at p ~ 0.1.
    assert residence.resident_bytes < 0.5 * all_resident.resident_bytes
    # The measured Type A fraction is near the scheduled 1/10.
    assert 0.02 < residence.type_a_fraction < 0.3
