"""Figure 12(c): breadth-first search time vs graph size and machines.

Paper setting: same R-MAT data as Figure 12(b); BFS on 8/10/12/14
machines (Graph 500's kernel).  The headline table: for the 1B-node
graph, 128 s on 8 machines and 64.4 s on 14 machines.

Scaled setting: R-MAT scales 10-13.  Shapes: time rises with graph size
and falls (or at worst flattens) with machine count; BFS costs less per
run than the same graph's full PageRank sweep because only frontier
edges pay.
"""

import numpy as np

from repro.algorithms import bfs, pagerank
from repro.algorithms.validation import validate_bfs_levels
from repro.generators import rmat_edges
from repro.net import SimNetwork

from _harness import IPOIB, build_topology, format_table, report

SCALES = (10, 11, 12, 13)
MACHINES = (8, 10, 12, 14)
DEGREE = 13


def run_sweep():
    table = {}
    reach = {}
    for scale in SCALES:
        edges = rmat_edges(scale=scale, avg_degree=DEGREE, seed=scale)
        for machines in MACHINES:
            topology = build_topology(edges, machines, trunk_bits=7)
            root = int(np.argmax(topology.out_degrees()))
            run = bfs(topology, root, network=SimNetwork(IPOIB))
            validate_bfs_levels(topology, root, run.levels)
            table[(scale, machines)] = run.elapsed
            reach[scale] = run.reached
    return table, reach


def test_fig12c_bfs(benchmark):
    table, reach = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for scale in SCALES:
        rows.append((
            f"2^{scale} nodes",
            *(f"{table[(scale, m)] * 1e3:.2f}" for m in MACHINES),
            reach[scale],
        ))
    report("fig12c_bfs", format_table(
        ("graph", *(f"{m} machines (ms)" for m in MACHINES), "reached"),
        rows,
    ))
    # Shape 1: BFS time grows with graph size at every machine count.
    for machines in MACHINES:
        times = [table[(scale, machines)] for scale in SCALES]
        assert times[-1] > times[0]
    # Shape 2: on the largest graph, 14 machines beat 8 machines
    # (the paper's table shows 128 s -> 64 s over the same sweep).
    assert table[(SCALES[-1], 14)] <= table[(SCALES[-1], 8)]

    # Shape 3: one BFS is cheaper than a 5-iteration PageRank on the same
    # deployment — only frontier edges pay per level.
    edges = rmat_edges(scale=SCALES[-1], avg_degree=DEGREE, seed=SCALES[-1])
    topology = build_topology(edges, 8, trunk_bits=7)
    pr = pagerank(topology, iterations=5, network=SimNetwork(IPOIB))
    assert table[(SCALES[-1], 8)] < pr.elapsed
