"""Figure 8(b): distance-oracle accuracy vs number of landmarks.

Paper setting: estimation accuracy as the landmark count grows, for three
selection strategies.  Expected shape: **global betweenness** best,
**local betweenness** (each machine scores its own random sample — the
Section 5.5 "new paradigm") close behind, **largest degree** worst; all
curves rise with more landmarks.

Scaled setting: a 3000-node clustered social graph (ring-of-communities
layout so shortest paths funnel through bridges) over 4 machines.
"""

from repro.algorithms import evaluate_oracle
from repro.algorithms.landmarks import select_landmarks_with_cost
from repro.generators.social import community_edges

from _harness import build_topology, format_table, report

STRATEGIES = ("degree", "local-betweenness", "global-betweenness")
LANDMARK_COUNTS = (10, 20, 40, 80)


def run_sweep():
    edges = community_edges(3000, communities=24, avg_degree=10,
                            layout="ring", bridges_per_pair=2,
                            gamma=2.8, seed=11)
    topology = build_topology(edges, machines=4, directed=False)
    rows = []
    accuracy = {}
    costs = {}
    for count in LANDMARK_COUNTS:
        row = [count]
        for strategy in STRATEGIES:
            landmarks, cost = select_landmarks_with_cost(
                topology, count, strategy, samples=96, seed=1,
            )
            costs[strategy] = cost.elapsed()
            evaluation = evaluate_oracle(topology, landmarks, pairs=150,
                                         seed=9)
            accuracy[(count, strategy)] = evaluation.accuracy
            row.append(f"{evaluation.accuracy * 100:.1f}%")
        rows.append(tuple(row))
    return rows, accuracy, costs


def test_fig8b_landmark_strategies(benchmark):
    rows, accuracy, costs = benchmark.pedantic(run_sweep, rounds=1,
                                               iterations=1)
    lines = format_table(("landmarks",) + STRATEGIES, rows)
    lines.append("")
    lines.append(
        "selection cost (simulated): "
        + ", ".join(f"{s}: {costs[s] * 1e3:.2f} ms" for s in STRATEGIES)
    )
    lines.append(
        "(Section 5.5: local betweenness is parallel per machine, hence "
        "far cheaper than one global Brandes pass)"
    )
    report("fig8b_distance_oracle", lines)
    # The paper's cost claim: global betweenness is significantly more
    # costly than the per-machine local computation.
    assert costs["global-betweenness"] > 2 * costs["local-betweenness"]
    # Shape 1: more landmarks help every strategy.
    for strategy in STRATEGIES:
        first = accuracy[(LANDMARK_COUNTS[0], strategy)]
        last = accuracy[(LANDMARK_COUNTS[-1], strategy)]
        assert last >= first - 0.02
    # Shape 2: global betweenness beats largest-degree while landmarks
    # are scarce (the curves converge as accuracy saturates near 100%,
    # just as the paper's do at its right edge).
    for count in LANDMARK_COUNTS[:2]:
        assert (accuracy[(count, "global-betweenness")]
                >= accuracy[(count, "degree")] - 0.01)
    # Shape 3: local betweenness lands close to global at higher counts
    # (the paper's headline for the new paradigm).
    top = LANDMARK_COUNTS[-1]
    assert (accuracy[(top, "local-betweenness")]
            >= accuracy[(top, "global-betweenness")] - 0.03)
