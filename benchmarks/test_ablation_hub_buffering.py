"""Ablation: hub-vertex message buffering (Section 5.4).

The paper's estimate: on a scale-free graph with gamma = 2.16, buffering
messages from 1% of vertices (the hubs) serves 72.8% of message needs.
This ablation measures (a) the hub-coverage fraction on such a graph,
(b) the wire-message reduction PageRank gets from buffering, and (c) the
control case — an Erdos-Renyi graph, where buffering cannot help much
because no vertex dominates.
"""

from repro.algorithms import pagerank
from repro.algorithms._traffic import TrafficModel
from repro.compute.scheduler import BipartiteScheduler
from repro.generators import erdos_renyi_edges, powerlaw_edges

from _harness import build_topology, format_table, report


def run_ablation():
    rows = []
    metrics = {}
    for name, edges in (
        ("power-law g=2.16",
         powerlaw_edges(8_000, gamma=2.16, avg_degree=13, seed=1)),
        ("erdos-renyi",
         erdos_renyi_edges(8_000, avg_degree=13, directed=True, seed=1)),
    ):
        directed = name != "power-law g=2.16"
        topology = build_topology(edges, machines=8, directed=directed,
                                  trunk_bits=7, include_inlinks=directed)
        buffered = TrafficModel(topology, hub_buffering=True,
                                hub_fraction=0.01)
        plain = TrafficModel(topology, hub_buffering=False)
        wire_buffered = int(buffered.full_broadcast_traffic().sum())
        wire_plain = int(plain.full_broadcast_traffic().sum())
        saving = 1.0 - wire_buffered / wire_plain
        metrics[name] = saving
        rows.append((
            name, wire_plain, wire_buffered, f"{saving * 100:.1f}%",
        ))

    # Coverage: fraction of a machine's incoming message needs served by
    # buffering 1% hubs, measured by the scheduler (needs inlinks).
    edges = powerlaw_edges(8_000, gamma=2.16, avg_degree=13, seed=1)
    topo = build_topology(edges, machines=8, directed=True,
                          trunk_bits=7, include_inlinks=True)
    scheduler = BipartiteScheduler(topo, hub_fraction=0.01)
    coverage = scheduler.plan_for_machine(0).stats["hub_coverage"]
    return rows, metrics, coverage


def analytic_hub_coverage(gamma: float = 2.16, n: int = 800_000_000,
                          hub_fraction: float = 0.01) -> float:
    """Expected stub share of the top ``hub_fraction`` vertices for
    P(k) ~ k^-gamma with the natural cutoff k_max = n^(1/(gamma-1)).

    The paper's 72.8% is this quantity at web scale; at simulation scale
    (n ~ 1e4) the cutoff truncates the tail and the share is much lower,
    which is why the measured and analytic numbers are reported side by
    side."""
    import numpy as np
    k_max = n ** (1.0 / (gamma - 1.0))
    ks = np.arange(1, int(k_max) + 1, dtype=np.float64)
    pmf = ks ** -gamma
    pmf /= pmf.sum()
    # Threshold degree of the top hub_fraction of vertices.
    tail = np.cumsum(pmf[::-1])[::-1]
    threshold = int(np.argmax(tail <= hub_fraction))
    stubs = ks * pmf
    return float(stubs[threshold:].sum() / stubs.sum())


def test_ablation_hub_buffering(benchmark):
    rows, metrics, coverage = benchmark.pedantic(run_ablation, rounds=1,
                                                 iterations=1)
    lines = format_table(
        ("graph", "wire msgs (plain)", "wire msgs (hub-buffered)",
         "saving"),
        rows,
    )
    paper_scale = analytic_hub_coverage()
    sim_scale = analytic_hub_coverage(n=8_000)
    lines.append("")
    lines.append(
        f"1%-hub coverage of one machine's message needs: measured "
        f"{coverage * 100:.1f}% at n=8000 "
        f"(analytic at n=8000: {sim_scale * 100:.1f}%; analytic at the "
        f"paper's n=8e8: {paper_scale * 100:.1f}%; paper quotes 72.8%)"
    )
    report("ablation_hub_buffering", lines)

    # Hub buffering must save a large share on the scale-free graph...
    assert metrics["power-law g=2.16"] > 0.20
    # ...and much less on the degree-flat control.
    assert metrics["erdos-renyi"] < metrics["power-law g=2.16"] / 2
    # The measured hub coverage matches its own-scale analytic value...
    assert coverage > sim_scale - 0.15
    # ...and the analytic model at web scale is of the paper's order
    # (our stub-share metric is stricter than the paper's "fraction of
    # vertices reached", which credits a hub's whole neighborhood).
    assert paper_scale > 0.45
