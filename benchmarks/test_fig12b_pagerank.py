"""Figure 12(b): PageRank time per iteration vs graph size and machines.

Paper setting: R-MAT graphs, 64M-1024M nodes, average degree 13; one BSP
iteration timed on 8/10/12/14 machines; the 1B-node graph takes < 60 s
per iteration on 8 machines.

Scaled setting: R-MAT scales 10-13 (1k-8k nodes), same degree and machine
sweep, on the IPoIB-parameterised fabric.  Shapes to hold: time grows
~linearly with nodes, decreases with machines.  The analytic model is
then evaluated at the paper's actual 1B-node size to check the < 60 s
headline.
"""

from repro.algorithms import pagerank
from repro.algorithms.validation import validate_pagerank
from repro.config import ComputeParams, NetworkParams
from repro.generators import rmat_edges
from repro.net import SimNetwork

from _harness import IPOIB, build_topology, format_table, report

SCALES = (10, 11, 12, 13)
MACHINES = (8, 10, 12, 14)
DEGREE = 13
ITERATIONS = 5


def run_sweep():
    table = {}
    for scale in SCALES:
        edges = rmat_edges(scale=scale, avg_degree=DEGREE, seed=scale)
        for machines in MACHINES:
            topology = build_topology(edges, machines, trunk_bits=7)
            run = pagerank(topology, iterations=ITERATIONS,
                           network=SimNetwork(IPOIB))
            validate_pagerank(run.ranks)
            table[(scale, machines)] = run.time_per_iteration
    return table


def model_paper_scale(machines: int = 8) -> float:
    """Analytic per-iteration time at the paper's 1B-node scale.

    Applies the same cost model the simulation charges, at the paper's
    graph size: per-machine compute over hardware threads plus packed
    message traffic (hub buffering serving ~70% of needs, Section 5.4).
    """
    vertices = 1_000_000_000
    edges = 13 * vertices
    cost = ComputeParams()
    per_machine_vertices = vertices / machines
    per_machine_edges = edges / machines
    compute = (
        per_machine_vertices
        * (cost.vertex_compute_cost + cost.cell_access_cost)
        + per_machine_edges * cost.edge_scan_cost
    ) / cost.threads_per_machine
    remote_fraction = 1.0 - 1.0 / machines
    hub_saving = 0.7
    wire_messages = per_machine_edges * remote_fraction * (1 - hub_saving)
    comm = IPOIB.transfer_time(int(wire_messages * 16),
                               int(wire_messages))
    return compute + comm + cost.barrier_cost


def test_fig12b_pagerank(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for scale in SCALES:
        rows.append((
            f"2^{scale} nodes",
            *(f"{table[(scale, m)] * 1e3:.2f}" for m in MACHINES),
        ))
    headline = model_paper_scale(8)
    lines = format_table(
        ("graph", *(f"{m} machines (ms/iter)" for m in MACHINES)), rows,
    )
    lines.append("")
    lines.append(
        f"analytic model @ paper scale (1B nodes, 13B edges, 8 machines): "
        f"{headline:.1f} s/iteration (paper: ~51 s, < 60 s headline)"
    )
    report("fig12b_pagerank", lines)

    # Shape 1: larger graphs cost more at every machine count.
    for machines in MACHINES:
        times = [table[(scale, machines)] for scale in SCALES]
        assert times == sorted(times)
    # Shape 2: more machines never slower on the largest graph.
    largest = [table[(SCALES[-1], m)] for m in MACHINES]
    assert largest[-1] <= largest[0]
    # Headline: the paper's "one minute per iteration on 1B nodes with 8
    # machines" holds under the model.
    assert headline < 60.0
