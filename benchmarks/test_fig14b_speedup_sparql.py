"""Figure 14(b): parallel speedup of SPARQL queries on LUBM data.

Paper setting: four SPARQL queries on a LUBM dataset of 1.37e9 triples
served by the Trinity RDF engine; response time falls as machines are
added (2-16 swept here).

Scaled setting: the LUBM-like generator at ~30k triples, same four
query shapes (Q1 selective lookup, Q3/Q5 star joins, Q7 path join).
"""

from repro.config import ClusterConfig, MemoryParams
from repro.memcloud import MemoryCloud
from repro.net import SimNetwork
from repro.rdf import LUBM_QUERIES, RdfStore, execute_sparql, generate_lubm

from _harness import IPOIB, format_table, ms, report

MACHINE_SWEEP = (2, 4, 8, 16)


def build_store(machines: int) -> RdfStore:
    cloud = MemoryCloud(ClusterConfig(
        machines=machines, trunk_bits=7,
        memory=MemoryParams(trunk_size=16 * 1024 * 1024),
    ))
    store = RdfStore(cloud)
    generate_lubm(store, universities=6, departments_per_university=8,
                  students_per_department=200, seed=0)
    store.finalize()
    return store


def run_sweep():
    table = {}
    row_counts = {}
    for machines in MACHINE_SWEEP:
        store = build_store(machines)
        for name, text in LUBM_QUERIES.items():
            result = execute_sparql(store, text,
                                    network=SimNetwork(IPOIB))
            table[(name, machines)] = result.elapsed
            row_counts[name] = len(result.rows)
    return table, row_counts


def test_fig14b_sparql_speedup(benchmark):
    table, row_counts = benchmark.pedantic(run_sweep, rounds=1,
                                           iterations=1)
    rows = []
    for name in LUBM_QUERIES:
        rows.append((
            name, row_counts[name],
            *(ms(table[(name, m)]) for m in MACHINE_SWEEP),
        ))
    report("fig14b_speedup_sparql", format_table(
        ("query", "rows", *(f"{m} machines (ms)" for m in MACHINE_SWEEP)),
        rows,
    ))
    # Answers are machine-count independent (row_counts collected per
    # sweep step would have diverged otherwise) and non-empty.
    assert all(count > 0 for count in row_counts.values())
    # Shape: the join-heavy queries speed up with machines; Q7 (the
    # 3-pattern chain) must improve markedly from 2 to 16 machines.
    assert table[("Q7", 16)] < table[("Q7", 2)]
    assert table[("Q5", 16)] < table[("Q5", 2)]
    # Selective Q1 is already fast everywhere (the paper's Q1 curve is
    # nearly flat and lowest).
    for machines in MACHINE_SWEEP:
        assert table[("Q1", machines)] <= table[("Q7", machines)]
