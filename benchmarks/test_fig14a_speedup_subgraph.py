"""Figure 14(a): parallel speedup of subgraph matching.

Paper setting: subgraph-match queries on two real graphs — Wordnet
(~82k nodes) and the US patent citation network (~3.8M nodes) — with the
machine count swept; response time drops as machines are added.

Scaled setting: the real datasets are not redistributable offline, so two
synthetic stand-ins with matching degree profiles are used (documented in
DESIGN.md): "wordnet" = 8k nodes / avg degree 7 power-law, "patent" = 16k
nodes / avg degree 5.  Machines swept 2-16; the shape to reproduce is the
monotone drop in simulated response time.
"""

from repro.algorithms import generate_query_dfs, match_subgraph
from repro.algorithms.subgraph import LabelIndex, assign_labels
from repro.generators import powerlaw_edges
from repro.net import SimNetwork

from _harness import IPOIB, build_topology, format_table, ms, report

MACHINE_SWEEP = (2, 4, 8, 16)
DATASETS = {
    "wordnet-like": dict(n=8_000, avg_degree=7, labels=30),
    "patent-like": dict(n=16_000, avg_degree=5, labels=50),
}
QUERIES = 4


def run_sweep():
    table = {}
    for name, spec in DATASETS.items():
        edges = powerlaw_edges(spec["n"], avg_degree=spec["avg_degree"],
                               seed=len(name))
        for machines in MACHINE_SWEEP:
            topology = build_topology(edges, machines, directed=False,
                                      trunk_bits=7)
            labels = assign_labels(topology.n, spec["labels"], seed=2)
            index = LabelIndex(topology, labels)
            elapsed = 0.0
            for seed in range(QUERIES):
                query = generate_query_dfs(topology, labels, size=10,
                                           seed=seed)
                result = match_subgraph(topology, labels, query,
                                        index=index, max_embeddings=128,
                                        max_expansions=100_000,
                                        network=SimNetwork(IPOIB))
                assert result.match_count >= 1
                elapsed += result.elapsed / QUERIES
            table[(name, machines)] = elapsed
    return table


def test_fig14a_subgraph_speedup(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        rows.append((
            name, *(ms(table[(name, m)]) for m in MACHINE_SWEEP),
        ))
    report("fig14a_speedup_subgraph", format_table(
        ("dataset", *(f"{m} machines (ms)" for m in MACHINE_SWEEP)),
        rows,
    ))
    # Shape: adding machines reduces simulated response time; 16 machines
    # clearly beat 2 on both datasets.
    for name in DATASETS:
        assert table[(name, 16)] < table[(name, 2)]
        speedup = table[(name, 2)] / table[(name, 16)]
        assert speedup > 1.5
