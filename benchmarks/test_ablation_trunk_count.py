"""Ablation: memory-trunk count (Section 3).

"The reason we partition a machine's local memory space into multiple
memory trunks is twofold: 1) trunk level parallelism can be achieved
without any overhead of locking; 2) the performance of a single huge
hash table is suboptimal due to a higher probability of hashing
conflicts."  This ablation loads the same cells under different trunk
counts (2**p) and reports mean hash-probe length and the trunk-level
parallelism available.

It runs against both hash-table storage backends (``list`` and
``numpy``): the probing algorithm is storage-independent, so the claim —
and the measured probe lengths — must hold identically for both.
"""

import random

import pytest

from repro.config import ClusterConfig, MemoryParams
from repro.memcloud import MemoryCloud

from _harness import format_table, report

CELLS = 40_000
MACHINES = 4


def run_ablation(storage):
    rng = random.Random(7)
    payloads = [
        (rng.getrandbits(60), bytes(rng.getrandbits(8) for _ in range(24)))
        for _ in range(CELLS)
    ]
    rows = []
    probes = {}
    for trunk_bits in (3, 5, 7, 9):
        cloud = MemoryCloud(ClusterConfig(
            machines=MACHINES, trunk_bits=trunk_bits,
            memory=MemoryParams(trunk_size=16 * 1024 * 1024,
                                hashtable_storage=storage),
        ))
        for uid, value in payloads:
            cloud.put(uid, value)
        for uid, _ in payloads:
            cloud.get(uid)
        mean_probe = sum(
            t.mean_probe_length * len(t) for t in cloud.trunks.values()
        ) / CELLS
        probes[trunk_bits] = mean_probe
        per_trunk = CELLS / cloud.config.trunk_count
        rows.append((
            2 ** trunk_bits, f"{per_trunk:.0f}", f"{mean_probe:.3f}",
            cloud.config.trunk_count // MACHINES,
        ))
    return rows, probes


@pytest.mark.parametrize("storage", ["list", "numpy"])
def test_ablation_trunk_count(benchmark, storage):
    rows, probes = benchmark.pedantic(
        run_ablation, args=(storage,), rounds=1, iterations=1)
    report(f"ablation_trunk_count[{storage}]", format_table(
        ("trunks (2^p)", "cells/trunk", "mean probe length",
         "lock-free parallel units per machine"),
        rows,
    ))
    # Every configuration keeps probes short (the tables resize), but
    # more trunks must never be worse, and the parallelism units grow.
    assert probes[9] <= probes[3] + 0.05
    # Trunk-level parallelism: with 2^9 trunks each of 4 machines owns
    # 128 independently lockable units.
    assert rows[-1][3] == 2 ** 9 // MACHINES


def test_ablation_storage_backends_agree():
    # Identical op sequence -> the two backends must report identical
    # probe statistics (the equivalence the bulk path's pre-sized numpy
    # tables rely on for their accounting guarantees).
    _, list_probes = run_ablation("list")
    _, numpy_probes = run_ablation("numpy")
    assert list_probes == numpy_probes
