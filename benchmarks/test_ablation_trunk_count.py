"""Ablation: memory-trunk count (Section 3).

"The reason we partition a machine's local memory space into multiple
memory trunks is twofold: 1) trunk level parallelism can be achieved
without any overhead of locking; 2) the performance of a single huge
hash table is suboptimal due to a higher probability of hashing
conflicts."  This ablation loads the same cells under different trunk
counts (2**p) and reports mean hash-probe length and the trunk-level
parallelism available.
"""

import random

from repro.config import ClusterConfig, MemoryParams
from repro.memcloud import MemoryCloud

from _harness import format_table, report

CELLS = 40_000
MACHINES = 4


def run_ablation():
    rng = random.Random(7)
    payloads = [
        (rng.getrandbits(60), bytes(rng.getrandbits(8) for _ in range(24)))
        for _ in range(CELLS)
    ]
    rows = []
    probes = {}
    for trunk_bits in (3, 5, 7, 9):
        cloud = MemoryCloud(ClusterConfig(
            machines=MACHINES, trunk_bits=trunk_bits,
            memory=MemoryParams(trunk_size=16 * 1024 * 1024),
        ))
        for uid, value in payloads:
            cloud.put(uid, value)
        for uid, _ in payloads:
            cloud.get(uid)
        mean_probe = sum(
            t.mean_probe_length * len(t) for t in cloud.trunks.values()
        ) / CELLS
        probes[trunk_bits] = mean_probe
        per_trunk = CELLS / cloud.config.trunk_count
        rows.append((
            2 ** trunk_bits, f"{per_trunk:.0f}", f"{mean_probe:.3f}",
            cloud.config.trunk_count // MACHINES,
        ))
    return rows, probes


def test_ablation_trunk_count(benchmark):
    rows, probes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_trunk_count", format_table(
        ("trunks (2^p)", "cells/trunk", "mean probe length",
         "lock-free parallel units per machine"),
        rows,
    ))
    # Every configuration keeps probes short (the tables resize), but
    # more trunks must never be worse, and the parallelism units grow.
    assert probes[9] <= probes[3] + 0.05
    # Trunk-level parallelism: with 2^9 trunks each of 4 machines owns
    # 128 independently lockable units.
    assert rows[-1][3] == 2 ** 9 // MACHINES
