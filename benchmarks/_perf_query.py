"""Wall-clock benchmark: batched online traversal vs the scalar path.

Not a pytest benchmark (hence the underscore — the collector skips it):
this harness measures **real** wall-clock seconds, best-of-k, running
the online queries of Section 5 over a seeded named R-MAT social graph
two ways:

* scalar — one ``cloud.get`` plus one whole-cell decode per frontier
  node (``batch=False``);
* batch — per hop, one vectorized ownership pass plus one
  ``bulk_get``/CSR column decode per machine group (``batch=True``).

Workloads: 3-hop people search from a set of start nodes, and a
multi-hop TQL query.  Before timing, every workload runs once with
``cross_check=True`` — the batched path shadow-replays the scalar path
and raises on any divergence — so the timed numbers are known to
compute identical answers.  Results land in
``benchmarks/results/BENCH_query.json``.

Usage::

    PYTHONPATH=src python benchmarks/_perf_query.py            # full run
    PYTHONPATH=src python benchmarks/_perf_query.py --smoke    # CI-sized

``--smoke`` also compares against the committed baseline JSON and prints
a GitHub Actions ``::warning::`` (never a failure) when the measured
speedup regressed by more than 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from _harness import build_social_graph                    # noqa: E402
from repro.algorithms.people_search import people_search   # noqa: E402
from repro.net.simnet import SimNetwork                    # noqa: E402
from repro.tql.engine import execute_tql                   # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_query.json"

MACHINES = 4
TRUNK_BITS = 4  # 4 trunks per machine: keeps per-trunk batches large
SEED = 42
HOPS = 3
STARTS = [0, 3, 17, 101]
TQL_QUERY = ("MATCH (a = 0) -[Friends*1..3]-> (b {Name: 'David'}) "
             "RETURN b")


def build_graph(scale: int, avg_degree: float):
    return build_social_graph(scale, avg_degree, machines=MACHINES,
                              trunk_bits=TRUNK_BITS, seed=SEED)


def time_people_search(graph, batch: bool, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for node in STARTS:
            people_search(graph, node, "David", hops=HOPS,
                          network=SimNetwork(), batch=batch)
        best = min(best, time.perf_counter() - start)
    return best


def time_tql(graph, batch: bool, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        execute_tql(graph, TQL_QUERY, network=SimNetwork(), batch=batch)
        best = min(best, time.perf_counter() - start)
    return best


def cross_check(graph) -> dict:
    """Run every timed workload once with the scalar shadow replay on.

    ``cross_check=True`` raises BulkPathDivergence if the batched path
    ever disagrees with the scalar one — on matches, visited sets,
    messages, rows, cost accounting, or simulated time.
    """
    total_matches = 0
    for node in STARTS:
        result = people_search(graph, node, "David", hops=HOPS,
                               network=SimNetwork(), batch=True,
                               cross_check=True)
        total_matches += len(result.matches)
    tql = execute_tql(graph, TQL_QUERY, network=SimNetwork(),
                      batch=True, cross_check=True)
    return {
        "people_search_starts": len(STARTS),
        "people_search_matches": total_matches,
        "tql_rows": len(tql.rows),
    }


def run_bench(scales: list[int], avg_degree: float, repeats: int) -> dict:
    bench = {
        "generator": {"kind": "rmat", "avg_degree": avg_degree,
                      "seed": SEED},
        "machines": MACHINES,
        "trunk_bits": TRUNK_BITS,
        "hops": HOPS,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": {},
    }
    for scale in scales:
        graph, edge_count = build_graph(scale, avg_degree)
        check = cross_check(graph)
        ps_scalar = time_people_search(graph, batch=False, repeats=repeats)
        ps_batch = time_people_search(graph, batch=True, repeats=repeats)
        tql_scalar = time_tql(graph, batch=False, repeats=repeats)
        tql_batch = time_tql(graph, batch=True, repeats=repeats)
        ps_speedup = ps_scalar / ps_batch if ps_batch else float("inf")
        tql_speedup = tql_scalar / tql_batch if tql_batch else float("inf")
        bench["results"][f"scale_{scale}"] = {
            "nodes": 1 << scale,
            "edges": edge_count,
            "people_search": {
                "scalar_seconds": ps_scalar,
                "batch_seconds": ps_batch,
                "speedup": ps_speedup,
            },
            "tql": {
                "scalar_seconds": tql_scalar,
                "batch_seconds": tql_batch,
                "speedup": tql_speedup,
            },
            "cross_check": check,
        }
        print(f"scale {scale:2d}  edges {edge_count:8d}   "
              f"people-search {ps_scalar * 1e3:8.1f} -> "
              f"{ps_batch * 1e3:7.1f} ms ({ps_speedup:5.2f}x)   "
              f"tql {tql_scalar * 1e3:8.1f} -> "
              f"{tql_batch * 1e3:7.1f} ms ({tql_speedup:5.2f}x)")
    return bench


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when a speedup regressed >2x vs the baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        for workload in ("people_search", "tql"):
            measured = entry[workload]["speedup"]
            committed = base.get(workload, {}).get("speedup")
            if committed and measured * 2.0 < committed:
                print(f"::warning::perf-smoke: {name} {workload} speedup "
                      f"{measured:.2f}x is more than 2x below the "
                      f"committed baseline {committed:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized graphs; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--scale", type=int, default=None,
                        help="run a single R-MAT scale (2^scale nodes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-k repetitions (default 3, smoke 2)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_query.json; "
                             "smoke writes BENCH_query_smoke.json)")
    args = parser.parse_args()

    if args.scale is not None:
        scales = [args.scale]
    elif args.smoke:
        scales = [10]
    else:
        scales = [10, 12, 14]
    repeats = args.repeats or (2 if args.smoke else 3)
    bench = run_bench(scales=scales, avg_degree=8, repeats=repeats)

    out = args.out or (RESULTS_DIR / "BENCH_query_smoke.json"
                       if args.smoke else BENCH_PATH)
    if args.smoke:
        # Compare against the committed smoke baseline (same scales)
        # before overwriting it.
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
