"""Table 1: capability matrix of representative graph systems.

Reproduces the paper's system survey and verifies Trinity's derived row
is the only all-Yes one.
"""

from repro.baselines import capability_table
from repro.baselines.capabilities import format_table

from _harness import report


def test_table1_capability_matrix(benchmark):
    def build():
        rows = capability_table()
        return rows, format_table(rows)

    rows, rendered = benchmark.pedantic(build, rounds=1, iterations=1)
    report("table1_capabilities", rendered.splitlines())

    all_yes = [r.system for r in rows
               if r.graph_database and r.online_queries
               and r.analytics and r.scale_out]
    assert all_yes == ["Trinity"]
    assert len(rows) >= 8  # the paper's seven systems + ours
