"""Ablation: transparent message packing (Section 4.2).

The paper motivates packing: vertex-centric computation emits a huge
number of tiny messages, and without automatic packing "a huge cost" is
incurred.  This ablation runs the same PageRank deployment with packing
enabled vs disabled and reports the per-iteration gap.
"""

from repro.algorithms import pagerank
from repro.config import NetworkParams
from repro.generators import rmat_edges
from repro.net import SimNetwork

from _harness import build_topology, format_table, report


def run_ablation():
    edges = rmat_edges(scale=12, avg_degree=13, seed=3)
    topology = build_topology(edges, machines=8, trunk_bits=7)
    rows = []
    times = {}
    for packing in (True, False):
        params = NetworkParams(packing_enabled=packing)
        run = pagerank(topology, iterations=5,
                       network=SimNetwork(params))
        times[packing] = run.time_per_iteration
        rows.append((
            "packed" if packing else "unpacked",
            f"{run.time_per_iteration * 1e3:.2f}",
        ))
    rows.append(("slowdown without packing",
                 f"{times[False] / times[True]:.1f}x"))
    return rows, times


def test_ablation_message_packing(benchmark):
    rows, times = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_packing", format_table(
        ("configuration", "ms / PageRank iteration"), rows,
    ))
    # Packing must win, and by a wide margin on a full-broadcast
    # workload of 16-byte messages.
    assert times[True] < times[False]
    assert times[False] / times[True] > 5.0
