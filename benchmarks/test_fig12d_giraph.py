"""Figure 12(d): PageRank per-iteration time on Giraph.

Paper setting: Giraph on the same 16-machine cluster (81 GB JVM heaps),
R-MAT graphs 16M-256M nodes at average degree 8, worker counts 4/8/16.
Measured: 2455 s per iteration at 256M nodes / 2B edges on 16 machines;
OOM at 256M nodes when average degree is 16; overall two orders of
magnitude slower than Trinity.

The Giraph simulator is volume-driven, so this bench runs at the paper's
*actual* scales.
"""

from repro.baselines import GiraphSimulation
from repro.baselines.giraph import (
    expected_speedup_vs_giraph,
    giraph_paper_calibration,
    trinity_reference_point,
)

from _harness import format_table, report

NODES = (16_000_000, 64_000_000, 256_000_000)
MACHINES = (4, 8, 16)
DEGREE = 8


def run_sweep():
    table = {}
    for nodes in NODES:
        for machines in MACHINES:
            sim = GiraphSimulation(nodes, nodes * DEGREE, machines)
            run = sim.run_pagerank(supersteps=1)
            table[(nodes, machines)] = (
                run.time_per_superstep, run.out_of_memory,
            )
    return table


def test_fig12d_giraph_pagerank(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for nodes in NODES:
        cells = []
        for machines in MACHINES:
            seconds, oom = table[(nodes, machines)]
            cells.append("OOM" if oom else f"{seconds:.0f}")
        rows.append((f"{nodes // 10**6}M", *cells))
    calibration = giraph_paper_calibration()
    lines = format_table(
        ("nodes", *(f"{m} machines (s/iter)" for m in MACHINES)), rows,
    )
    lines.append("")
    lines.append(
        f"calibration: model {calibration['predicted_seconds']:.0f} s vs "
        f"paper {calibration['paper_seconds']:.0f} s at 256M/2B/16 machines"
    )
    lines.append(
        f"Trinity reference: {trinity_reference_point(8):.0f} s/iteration "
        f"at 1B nodes / 13B edges on 8 machines -> "
        f"{expected_speedup_vs_giraph():.0f}x per-edge throughput gap"
    )
    report("fig12d_giraph", lines)

    # The paper's measured point reproduces within 5%.
    assert abs(calibration["predicted_seconds"]
               - calibration["paper_seconds"]) < 0.05 * 2455
    # The paper's OOM: 256M nodes at degree 16 do not fit Giraph's heap
    # on the small-cluster curve.
    oom_sim = GiraphSimulation(256_000_000, 256_000_000 * 16, 4)
    assert not oom_sim.check_memory()
    # Shapes: slower with size, faster with machines.
    for machines in MACHINES:
        times = [table[(n, machines)][0] for n in NODES]
        assert times == sorted(times)
    for nodes in NODES:
        times = [table[(nodes, m)][0] for m in MACHINES]
        assert times == sorted(times, reverse=True)
    # Two orders of magnitude vs Trinity.
    assert expected_speedup_vs_giraph() > 100
