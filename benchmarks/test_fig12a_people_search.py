"""Figure 12(a): people-search response time vs node degree.

Paper setting: 2-hop and 3-hop name searches on synthetic social graphs,
out-degree swept 10-200, 8 machines.  Headline numbers: 2-hop always
< 10 ms; 3-hop at degree 13 ~= 96.2 ms; the 3-hop curve rises steeply
with degree while 2-hop stays low.

Scaled setting: 8000-node power-law social graphs over 8 machines, same
degree sweep.  At simulation scale the frontier saturates the graph at
high degree, but the two shape claims — 3-hop >> 2-hop, both rising with
degree — are scale-free.
"""

from repro.config import ClusterConfig, MemoryParams
from repro.algorithms import people_search
from repro.generators.social import build_social_graph
from repro.memcloud import MemoryCloud

from _harness import format_table, ms, report

DEGREES = (10, 25, 50, 100, 200)
MACHINES = 8
NODES = 8_000
PROBES = 3


def run_sweep():
    rows = []
    results = {}
    for degree in DEGREES:
        cloud = MemoryCloud(ClusterConfig(
            machines=MACHINES, trunk_bits=7,
            memory=MemoryParams(trunk_size=16 * 1024 * 1024),
        ))
        graph = build_social_graph(cloud, NODES, avg_degree=degree,
                                   seed=degree)
        times = {2: 0.0, 3: 0.0}
        visited = 0
        for start in range(PROBES):
            for hops in (2, 3):
                result = people_search(graph, start * 37, "David",
                                       hops=hops)
                times[hops] += result.elapsed / PROBES
                if hops == 3:
                    visited += result.visited // PROBES
        results[degree] = (times[2], times[3])
        rows.append((degree, ms(times[2]), ms(times[3]), visited))
    return rows, results


def test_fig12a_people_search(benchmark):
    rows, results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("fig12a_people_search", format_table(
        ("degree", "2-hop (ms)", "3-hop (ms)", "3-hop visited"),
        rows,
    ))
    # Shape 1: 3-hop search costs strictly more than 2-hop at every
    # degree.
    for degree in DEGREES:
        two, three = results[degree]
        assert three > two
    # Shape 2: both curves rise with degree.
    assert results[DEGREES[-1]][0] > results[DEGREES[0]][0]
    assert results[DEGREES[-1]][1] > results[DEGREES[0]][1]
    # Headline: the paper's 3-hop search at Facebook degree (13) answers
    # in under 100 ms; our simulated cluster at the nearest swept degree
    # must satisfy the same bound.
    assert results[10][1] < 0.1
    # 2-hop responses stay under the paper's 10 ms envelope.
    assert all(results[d][0] < 0.010 for d in DEGREES[:3])
