"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's Section 7
at simulation scale, prints the series it produces, and writes the same
text into ``benchmarks/results/<name>.txt`` so the numbers survive pytest's
output capture.  ``EXPERIMENTS.md`` quotes these files.
"""

from __future__ import annotations

import pathlib

from repro.config import ClusterConfig, MemoryParams, NetworkParams
from repro.generators import rmat_edges
from repro.generators.names import sample_names
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.graph.model import social_graph_schema
from repro.memcloud import MemoryCloud
from repro.obs import JsonFileSink, MetricsRegistry, get_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The paper's evaluation fabric: each machine has a 40 Gbps IPoIB adapter
# (~5 GB/s payload) next to the gigabit one; analytics traffic rides the
# fast fabric.
IPOIB = NetworkParams(latency=30e-6, bandwidth=5e9)


def report(name: str, lines: list[str], registry=None) -> str:
    """Print a result table and persist it under benchmarks/results/.

    Alongside the text table, the metrics registry that accumulated
    during the run is snapshotted to ``<name>.metrics.json`` — the trunk
    allocator, network-round and superstep series behind the numbers.
    """
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    registry = registry if registry is not None else get_registry()
    sink = JsonFileSink(RESULTS_DIR / f"{name}.metrics.json")
    sink.export(registry.snapshot())
    print(f"\n=== {name} ===")
    print(text)
    return text


def build_topology(edges, machines: int, directed: bool = True,
                   trunk_bits: int | None = None,
                   include_inlinks: bool = False,
                   trunk_size: int = 8 * 1024 * 1024) -> CsrTopology:
    """Load an edge array into a fresh cloud and snapshot its topology."""
    if trunk_bits is None:
        trunk_bits = max(6, machines.bit_length() + 2)
    cloud = MemoryCloud(ClusterConfig(
        machines=machines, trunk_bits=trunk_bits,
        memory=MemoryParams(trunk_size=trunk_size),
    ))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=directed))
    builder.add_edges(edges.tolist())
    graph = builder.finalize()
    return CsrTopology(graph, include_inlinks=include_inlinks)


def build_social_graph(scale: int, avg_degree: float, machines: int = 4,
                       trunk_bits: int = 4, seed: int = 42,
                       trunk_size: int = 64 * 1024 * 1024,
                       registry=None):
    """Seeded named R-MAT friendship graph in a fresh cloud.

    The shared fixture of the online-query benchmarks (``_perf_query``
    and ``_perf_serve``): scale 14 is the paper-sized ~131k-edge graph.
    Raw R-MAT edges — duplicates and self-loops are real traversal work;
    every execution path handles them identically.  ``trunk_bits`` /
    ``trunk_size`` let the mixed read/write sweep spread the graph over
    many small trunks (fine-grained epoch footprints) without an 8 GB
    arena bill.  Returns ``(graph, edge_count)``.
    """
    cloud = MemoryCloud(
        ClusterConfig(machines=machines, trunk_bits=trunk_bits,
                      memory=MemoryParams(trunk_size=trunk_size,
                                          hashtable_storage="numpy")),
        registry if registry is not None else MetricsRegistry(),
    )
    n = 1 << scale
    edges = rmat_edges(scale, avg_degree=avg_degree, seed=seed)
    builder = GraphBuilder(cloud, social_graph_schema())
    for node_id, name in enumerate(sample_names(n, seed=seed + 1)):
        builder.add_node(node_id, Name=name)
    builder.add_edges(edges.tolist())
    return builder.finalize(), int(len(edges))


def build_streamed_social_graph(n: int, avg_degree: float = 13.0,
                                machines: int = 2, trunk_bits: int = 4,
                                seed: int = 42, memory: MemoryParams
                                | None = None, registry=None):
    """Stream a named social graph into a fresh cloud, batch by batch.

    The external-memory loading fixture: edges come from the chunked
    Chung-Lu emitter (``repro.generators.stream_social_edges``), so the
    full edge list never materialises — the shape of workload the paged
    storage tier (``MemoryParams.storage="paged"``) exists for.
    Returns ``(cloud, graph, edge_count)``.
    """
    from repro.generators import stream_build_social_graph
    cloud = MemoryCloud(
        ClusterConfig(machines=machines, trunk_bits=trunk_bits,
                      memory=memory if memory is not None
                      else MemoryParams(trunk_size=8 * 1024 * 1024)),
        registry if registry is not None else MetricsRegistry(),
    )
    graph, edge_count = stream_build_social_graph(
        cloud, n, avg_degree=avg_degree, seed=seed)
    return cloud, graph, edge_count


def format_row(cells, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()


def format_table(header, rows) -> list[str]:
    """Fixed-width text table (same style the paper's tables use)."""
    data = [list(map(str, header))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in data) for i in range(len(header))]
    lines = [format_row(data[0], widths),
             format_row(["-" * w for w in widths], widths)]
    lines.extend(format_row(row, widths) for row in data[1:])
    return lines


def ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def gb(byte_count: float) -> str:
    return f"{byte_count / 1e9:.1f}"
