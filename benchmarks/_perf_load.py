"""Wall-clock benchmark: bulk graph loading vs the scalar data path.

Not a pytest benchmark (hence the underscore — the collector skips it):
this harness measures **real** wall-clock seconds, best-of-k, loading
seeded R-MAT graphs into the memory cloud two ways:

* scalar — one ``add_edge`` call per edge, one TSL encode and one
  ``cloud.put`` per node at finalize;
* bulk — one ``add_edges`` call with the whole numpy edge array, one
  batch-encoded ``cloud.bulk_put`` at finalize.

After timing, a cross-check loads the same graph once more through each
path and asserts the two clouds are bit-identical: same stored cells in
every trunk and identical per-machine trunk accounting.  Results land in
``benchmarks/results/BENCH_load.json``.

Usage::

    PYTHONPATH=src python benchmarks/_perf_load.py            # full run
    PYTHONPATH=src python benchmarks/_perf_load.py --smoke    # CI-sized

``--smoke`` also compares against the committed baseline JSON and prints
a GitHub Actions ``::warning::`` (never a failure) when the measured
speedup regressed by more than 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.config import ClusterConfig, MemoryParams    # noqa: E402
from repro.generators import rmat_edges                 # noqa: E402
from repro.graph import GraphBuilder                    # noqa: E402
from repro.graph.model import plain_graph_schema        # noqa: E402
from repro.memcloud import MemoryCloud                  # noqa: E402
from repro.obs import MetricsRegistry                   # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_load.json"

MACHINES = 4
TRUNK_BITS = 6
SEED = 42


def make_cloud(storage: str = "numpy") -> MemoryCloud:
    return MemoryCloud(
        ClusterConfig(machines=MACHINES, trunk_bits=TRUNK_BITS,
                      memory=MemoryParams(hashtable_storage=storage)),
        MetricsRegistry(),
    )


def load_scalar(edges):
    """The reference path: per-edge ingest, per-node encode + put."""
    cloud = make_cloud(storage="list")
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    start = time.perf_counter()
    for src, dst in edges.tolist():
        builder.add_edge(src, dst)
    ingest = time.perf_counter() - start
    start = time.perf_counter()
    builder.finalize(bulk=False)
    finalize = time.perf_counter() - start
    return cloud, ingest, finalize


def load_bulk(edges):
    """The batched path: vectorized ingest, batch encode + bulk_put."""
    cloud = make_cloud(storage="numpy")
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    start = time.perf_counter()
    builder.add_edges(edges)
    ingest = time.perf_counter() - start
    start = time.perf_counter()
    builder.finalize(bulk=True)
    finalize = time.perf_counter() - start
    return cloud, ingest, finalize


def _best_of(loader, edges, repeats):
    best_total = float("inf")
    best = None
    for _ in range(repeats):
        _, ingest, finalize = loader(edges)
        if ingest + finalize < best_total:
            best_total = ingest + finalize
            best = (ingest, finalize)
    return best


def cross_check(edges) -> dict:
    """Load once through each path and assert the clouds are identical.

    Bit-identical stored cells per trunk, identical per-machine trunk
    accounting.  Storage backend is held fixed (list) for both clouds so
    hash-table internals cannot mask a data-path divergence.
    """
    scalar_cloud = make_cloud(storage="list")
    builder = GraphBuilder(scalar_cloud, plain_graph_schema(directed=True))
    for src, dst in edges.tolist():
        builder.add_edge(src, dst)
    builder.finalize(bulk=False)

    bulk_cloud = make_cloud(storage="list")
    builder = GraphBuilder(bulk_cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges)
    builder.finalize(bulk=True, cross_check=True)

    cells = 0
    for trunk_id, trunk in bulk_cloud.trunks.items():
        mine = dict(trunk.dump_cells())
        theirs = dict(scalar_cloud.trunks[trunk_id].dump_cells())
        if mine != theirs:
            raise AssertionError(
                f"trunk {trunk_id}: bulk path stored different cells "
                f"({len(mine)} vs {len(theirs)})"
            )
        cells += len(mine)
    for machine in range(MACHINES):
        bulk_stats = bulk_cloud.machine_stats(machine)
        scalar_stats = scalar_cloud.machine_stats(machine)
        if bulk_stats != scalar_stats:
            raise AssertionError(
                f"machine {machine}: trunk accounting diverges\n"
                f"  bulk:   {bulk_stats}\n"
                f"  scalar: {scalar_stats}"
            )
    return {"cells_compared": cells, "machines_compared": MACHINES}


def run_bench(scales: list[int], avg_degree: int, repeats: int) -> dict:
    bench = {
        "generator": {"kind": "rmat", "avg_degree": avg_degree,
                      "seed": SEED},
        "machines": MACHINES,
        "trunk_bits": TRUNK_BITS,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": {},
    }
    for scale in scales:
        edges = rmat_edges(scale=scale, avg_degree=avg_degree, seed=SEED)
        check = cross_check(edges)
        scalar_ingest, scalar_finalize = _best_of(load_scalar, edges,
                                                  repeats)
        bulk_ingest, bulk_finalize = _best_of(load_bulk, edges, repeats)
        scalar_total = scalar_ingest + scalar_finalize
        bulk_total = bulk_ingest + bulk_finalize
        speedup = scalar_total / bulk_total if bulk_total else float("inf")
        bench["results"][f"scale_{scale}"] = {
            "nodes": int(len(set(edges.reshape(-1).tolist()))),
            "edges": int(len(edges)),
            "scalar": {"ingest_seconds": scalar_ingest,
                       "finalize_seconds": scalar_finalize,
                       "total_seconds": scalar_total},
            "bulk": {"ingest_seconds": bulk_ingest,
                     "finalize_seconds": bulk_finalize,
                     "total_seconds": bulk_total},
            "speedup": speedup,
            "cross_check": check,
        }
        print(f"scale {scale:2d}  edges {len(edges):9d}   "
              f"scalar {scalar_total * 1e3:9.1f} ms   "
              f"bulk {bulk_total * 1e3:9.1f} ms   "
              f"speedup {speedup:6.2f}x")
    return bench


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when a speedup regressed >2x vs the baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        if entry["speedup"] * 2.0 < base["speedup"]:
            print(f"::warning::perf-smoke: {name} load speedup "
                  f"{entry['speedup']:.2f}x is more than 2x below the "
                  f"committed baseline {base['speedup']:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized graphs; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--scale", type=int, default=None,
                        help="run a single R-MAT scale (2^scale nodes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-k repetitions (default 3, smoke 2)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_load.json; "
                             "smoke writes BENCH_load_smoke.json)")
    args = parser.parse_args()

    if args.scale is not None:
        scales = [args.scale]
    elif args.smoke:
        scales = [10, 14]
    else:
        scales = [10, 12, 14]
    repeats = args.repeats or (2 if args.smoke else 3)
    bench = run_bench(scales=scales, avg_degree=8, repeats=repeats)

    out = args.out or (RESULTS_DIR / "BENCH_load_smoke.json"
                       if args.smoke else BENCH_PATH)
    if args.smoke:
        # Compare against the committed smoke baseline (same scales)
        # before overwriting it.
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
