"""Section 5.2: why Trinity explores instead of indexing.

The paper's argument has three prongs, each priced by
:mod:`repro.baselines.index_cost` and checked here:

1. the 2-hop index behind R-Join costs O(n^4) to build — "unrealistic"
   at n = 1e9;
2. materialised k-hop neighborhood indices for people search have
   prohibitive size;
3. Trinity's alternative — a linear label index plus per-query
   exploration — answers size-10 queries in ~1 s on 8 machines with no
   structure index at all (the measured Figure 8(a) numbers).
"""

from repro.baselines.index_cost import (
    exploration_query_cost,
    neighborhood_index_cost,
    trinity_label_index_cost,
    two_hop_index_cost,
)

from _harness import format_table, report

BILLION = 1_000_000_000


def run_analysis():
    two_hop = two_hop_index_cost(BILLION, BILLION * 16, machines=16)
    khop = neighborhood_index_cost(800_000_000, avg_degree=130, hops=3)
    label = trinity_label_index_cost(BILLION)
    # A size-10 query on a 100M+-node graph examines ~1e9
    # candidate expansions across its whole search tree.
    query = exploration_query_cost(candidates=1_000_000_000,
                                   avg_degree=16, machines=8)
    rows = [
        (two_hop.name, f"{two_hop.build_years:.2e} years",
         f"{two_hop.space_bytes / 1e12:.0f} TB"),
        (khop.name, f"{khop.build_seconds / 3600:.1f} hours",
         f"{khop.space_bytes / 1e12:.0f} TB"),
        (label.name, f"{label.build_seconds:.1f} seconds",
         f"{label.space_bytes / 1e9:.0f} GB"),
    ]
    return rows, two_hop, khop, label, query


def test_sec52_index_argument(benchmark):
    rows, two_hop, khop, label, query = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1,
    )
    lines = format_table(("approach", "construction", "space"), rows)
    lines.append("")
    lines.append(
        f"Trinity instead: linear label index + "
        f"{query:.2f} s of exploration per size-10 query (1e9 candidate "
        "expansions, 8 machines) — 'without any index of graph structure, average "
        "query time is 1 second'"
    )
    report("sec52_index_argument", lines)

    # 1. O(n^4) at a billion nodes: longer than the age of the universe.
    assert two_hop.build_years > 1e9
    # 2. The 3-hop neighborhood index for Facebook-scale people search
    # needs petabytes — "prohibitive".
    assert khop.space_bytes > 1e15
    # 3. Trinity's label index is linear and its per-query exploration
    # lands in the paper's ~1 s regime.
    assert label.build_seconds < 10
    assert 0.05 < query < 10.0