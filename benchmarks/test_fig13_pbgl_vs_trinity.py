"""Figure 13(a-d): BFS on PBGL vs Trinity — execution time and memory.

Paper setting: R-MAT graphs, 1M-256M nodes, average degrees 4/8/16/32,
16 machines.  Findings: "Trinity runs 10x faster with 10x less memory
footprint"; PBGL OOMs on the 256M-node graph at degree 32; its
ghost-cell replication is what blows the memory up.

Scaled setting: scales 9-11 (512-2048 nodes), same degrees and machine
count, PBGL memory *measured* from the actual ghost counts on each
generated graph, Trinity memory measured from its blob model.  The OOM
claim is checked at the paper's true scale with the same mechanistic
ghost model.
"""

import numpy as np

from repro.algorithms import bfs
from repro.baselines import PbglSimulation
from repro.baselines.costmodel import PbglCostModel, TrinityCostModel
from repro.generators import rmat_edges
from repro.net import SimNetwork

from _harness import IPOIB, build_topology, format_table, report

SCALES = (9, 10, 11)
DEGREES = (4, 8, 16, 32)
MACHINES = 16


def run_sweep():
    rows = []
    ratios = []
    trinity_model = TrinityCostModel()
    for degree in DEGREES:
        for scale in SCALES:
            edges = rmat_edges(scale=scale, avg_degree=degree, seed=scale)
            topology = build_topology(edges, MACHINES, trunk_bits=7)
            root = int(np.argmax(topology.out_degrees()))

            trinity_run = bfs(topology, root, network=SimNetwork(IPOIB))
            pbgl = PbglSimulation(topology)
            pbgl_run = pbgl.run_bfs(root)
            assert np.array_equal(trinity_run.levels, pbgl_run.levels)

            trinity_mem = trinity_model.memory_bytes(
                topology.n, topology.num_edges
            )
            pbgl_mem = pbgl_run.total_memory
            time_ratio = pbgl_run.elapsed / trinity_run.elapsed
            mem_ratio = pbgl_mem / trinity_mem
            ratios.append((degree, scale, time_ratio, mem_ratio))
            rows.append((
                f"2^{scale}", degree,
                f"{trinity_run.elapsed * 1e3:.2f}",
                f"{pbgl_run.elapsed * 1e3:.2f}",
                f"{time_ratio:.1f}x",
                f"{trinity_mem / 1e3:.0f}",
                f"{pbgl_mem / 1e3:.0f}",
                f"{mem_ratio:.1f}x",
            ))
    return rows, ratios


def paper_scale_memory(degree: int) -> float:
    """PBGL's per-machine memory at the paper's 256M-node scale.

    Every MPI rank keeps its own ghost replicas; on a hash-partitioned
    graph a rank ghosts roughly one vertex per local edge (up to |V|),
    so per machine: local vertices + local edges + ranks x per-rank
    ghosts.
    """
    model = PbglCostModel()
    vertices = 256_000_000
    edges = vertices * degree
    machines = 16
    ranks = model.processes_per_machine
    ghosts_per_rank = min(vertices, edges // (machines * ranks))
    return (
        vertices / machines * model.vertex_object_bytes
        + edges / machines * model.edge_entry_bytes
        + ranks * ghosts_per_rank * model.ghost_object_bytes
    )


def paper_scale_oom() -> tuple[bool, float]:
    """The paper's OOM point: degree 32 blows the 96 GB machines while
    degree 16 still fits (both facts are asserted)."""
    model = PbglCostModel()
    per_machine = paper_scale_memory(32)
    return per_machine > model.ram_per_machine, per_machine


def test_fig13_pbgl_vs_trinity(benchmark):
    rows, ratios = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    oom, per_machine = paper_scale_oom()
    lines = format_table(
        ("nodes", "deg", "Trinity ms", "PBGL ms", "time ratio",
         "Trinity KB", "PBGL KB", "mem ratio"),
        rows,
    )
    lines.append("")
    lines.append(
        f"paper-scale check (256M nodes, degree 32, 16 machines): PBGL "
        f"needs {per_machine / 1e9:.0f} GB/machine vs 96 GB DRAM -> "
        f"{'OOM' if oom else 'fits'} (paper: OOM)"
    )
    report("fig13_pbgl_vs_trinity", lines)

    # Shape 1: PBGL is slower and bigger at every point.
    assert all(t > 1.0 and m > 1.0 for _, _, t, m in ratios)
    # Shape 2: the gap is substantial (paper: ~10x; the small simulation
    # scale compresses it, so assert a conservative 2x).
    mean_time_ratio = float(np.mean([t for *_, t, _ in ratios]))
    mean_mem_ratio = float(np.mean([m for *_, m in ratios]))
    assert mean_time_ratio > 2.0
    assert mean_mem_ratio > 2.0
    # Shape 3: the paper's OOM point reproduces at true scale — degree 32
    # overflows 96 GB machines while degree 16 (which the paper ran)
    # still fits.
    assert oom
    model = PbglCostModel()
    assert paper_scale_memory(16) <= model.ram_per_machine
