"""Wall-clock benchmark: vectorized BSP fast path vs per-vertex reference.

Not a pytest benchmark (hence the underscore — the collector skips it):
this harness measures **real** wall-clock seconds, best-of-k, on seeded
R-MAT graphs, and asserts along the way that the two paths stay
bit-identical in values and identical in simulated-time/traffic
accounting.  Results land in ``benchmarks/results/BENCH_bsp.json``.

``--parallel`` instead benchmarks the execution backends — in-process vs
the shared-memory worker-process backend across worker counts, for both
BSP workloads and the bulk graph load — into
``benchmarks/results/BENCH_parallel.json``.  Bit-identity between the
backends is asserted on every run, and one extra shared-memory run per
workload executes with ``cross_check=True`` (the scalar reference
replay).  The recorded numbers are honest about the host: the JSON
carries ``cpus``, and on a single-core runner the fork/IPC overhead
makes the parallel backend *slower* — the point of the benchmark is the
trend across hosts, not a guaranteed speedup.

Usage::

    PYTHONPATH=src python benchmarks/_perf.py            # full run
    PYTHONPATH=src python benchmarks/_perf.py --smoke    # CI-sized run
    PYTHONPATH=src python benchmarks/_perf.py --parallel [--smoke]

``--smoke`` also compares against the committed baseline JSON and prints
a GitHub Actions ``::warning::`` (never a failure) when the measured
speedup (or backend overhead ratio, for ``--parallel``) regressed by
more than 2x.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms.bfs import BfsProgram               # noqa: E402
from repro.algorithms.pagerank import PageRankProgram     # noqa: E402
from repro.algorithms.sssp import SsspProgram             # noqa: E402
from repro.algorithms.wcc import WccProgram               # noqa: E402
from repro.compute import BspEngine                       # noqa: E402
from repro.config import ClusterConfig                    # noqa: E402
from repro.generators import rmat_edges                   # noqa: E402
from repro.graph import (                                 # noqa: E402
    CsrTopology, GraphBuilder, plain_graph_schema,
)
from repro.memcloud import MemoryCloud                    # noqa: E402
from repro.memcloud.arena import shared_arena_factory     # noqa: E402
from repro.net.simnet import SimNetwork                   # noqa: E402
from repro.obs import MetricsRegistry                     # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_bsp.json"
PARALLEL_PATH = RESULTS_DIR / "BENCH_parallel.json"

MACHINES = 4
SEED = 42


def _programs():
    return {
        "pagerank_10iter": lambda: PageRankProgram(iterations=10),
        "bfs": lambda: BfsProgram(root=0),
        "sssp_unit": lambda: SsspProgram(root=0),
        "wcc": lambda: WccProgram(),
    }


def _time_run(topology, make_program, vectorize: bool, repeats: int):
    """Best-of-``repeats`` wall time; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        engine = BspEngine(
            topology,
            network=SimNetwork(registry=MetricsRegistry()),
            vectorize=vectorize,
        )
        program = make_program()
        start = time.perf_counter()
        run = engine.run(program, max_supersteps=200)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = run
    return best, result


def _assert_identical(name: str, fast, reference) -> None:
    fast_values = np.asarray(fast.values)
    reference_values = np.asarray(reference.values,
                                  dtype=fast_values.dtype)
    if not np.array_equal(reference_values, fast_values):
        raise AssertionError(f"{name}: values diverge between paths")
    if fast.supersteps != reference.supersteps:
        raise AssertionError(
            f"{name}: superstep reports diverge between paths"
        )


def run_bench(scale: int, avg_degree: int, repeats: int) -> dict:
    edges = rmat_edges(scale=scale, avg_degree=avg_degree, seed=SEED)
    topology = CsrTopology.from_arrays(edges, machines=MACHINES)
    print(f"graph: rmat scale={scale} n={topology.n} "
          f"edges={topology.num_edges} machines={MACHINES}")

    bench = {
        "graph": {
            "generator": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": SEED,
            "nodes": topology.n,
            "edges": topology.num_edges,
            "machines": MACHINES,
        },
        "repeats": repeats,
        "python": platform.python_version(),
        "results": {},
    }
    for name, make_program in _programs().items():
        fast_s, fast = _time_run(topology, make_program, True, repeats)
        ref_s, reference = _time_run(topology, make_program, False, repeats)
        _assert_identical(name, fast, reference)
        speedup = ref_s / fast_s if fast_s else float("inf")
        bench["results"][name] = {
            "vectorized_seconds": fast_s,
            "reference_seconds": ref_s,
            "speedup": speedup,
            "supersteps": fast.superstep_count,
            "simulated_seconds": fast.elapsed,
        }
        print(f"{name:16s} vectorized {fast_s * 1e3:9.1f} ms   "
              f"reference {ref_s * 1e3:9.1f} ms   "
              f"speedup {speedup:6.2f}x   "
              f"supersteps {fast.superstep_count}")
    return bench


def _time_backend(topology, make_program, backend, workers, repeats,
                  cross_check=False):
    """Best-of-``repeats`` wall time for one execution backend."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        engine = BspEngine(
            topology,
            network=SimNetwork(registry=MetricsRegistry()),
            backend=backend,
            workers=workers,
            cross_check=cross_check,
        )
        program = make_program()
        start = time.perf_counter()
        run = engine.run(program, max_supersteps=200)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = run
    return best, result


def _time_bulk_load(edges, backend, workers, repeats):
    """Best-of-``repeats`` wall time for a full bulk graph load."""
    best = float("inf")
    last_cloud = None
    for _ in range(repeats):
        config = ClusterConfig(machines=MACHINES, trunk_bits=6)
        factory = (shared_arena_factory()
                   if backend == "shared_memory" else None)
        cloud = MemoryCloud(config, registry=MetricsRegistry(),
                            arena_factory=factory)
        builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
        builder.add_edges(edges)
        start = time.perf_counter()
        builder.finalize(backend=backend, workers=workers)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if last_cloud is not None and getattr(
                last_cloud, "arenas_shared", False):
            last_cloud.release_arenas()
        last_cloud = cloud
    return best, last_cloud


def run_parallel_bench(scale: int, avg_degree: int, repeats: int,
                       worker_counts: tuple) -> dict:
    edges = rmat_edges(scale=scale, avg_degree=avg_degree, seed=SEED)
    topology = CsrTopology.from_arrays(edges, machines=MACHINES)
    print(f"graph: rmat scale={scale} n={topology.n} "
          f"edges={topology.num_edges} machines={MACHINES} "
          f"cpus={os.cpu_count()}")

    bench = {
        "graph": {
            "generator": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": SEED,
            "nodes": topology.n,
            "edges": topology.num_edges,
            "machines": MACHINES,
        },
        "repeats": repeats,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "worker_counts": list(worker_counts),
        "results": {},
    }
    for name, make_program in _programs().items():
        inproc_s, inproc = _time_backend(
            topology, make_program, "in_process", None, repeats)
        entry = {
            "in_process_seconds": inproc_s,
            "shared_memory_seconds": {},
            "overhead_ratio": {},
            "supersteps": inproc.superstep_count,
            "simulated_seconds": inproc.elapsed,
        }
        for workers in worker_counts:
            shm_s, shm = _time_backend(
                topology, make_program, "shared_memory", workers, repeats)
            _assert_identical(f"{name}[workers={workers}]", shm, inproc)
            ratio = shm_s / inproc_s if inproc_s else float("inf")
            entry["shared_memory_seconds"][str(workers)] = shm_s
            entry["overhead_ratio"][str(workers)] = ratio
            print(f"{name:16s} in_process {inproc_s * 1e3:8.1f} ms   "
                  f"shm[{workers}] {shm_s * 1e3:8.1f} ms   "
                  f"ratio {ratio:5.2f}x")
        # One untimed paranoia run: the scalar reference engine replays
        # every superstep of the worker-process run and must agree.
        _, checked = _time_backend(
            topology, make_program, "shared_memory", max(worker_counts),
            1, cross_check=True)
        _assert_identical(f"{name}[cross_check]", checked, inproc)
        bench["results"][name] = entry

    load_repeats = max(1, repeats - 1)
    inproc_s, _ = _time_bulk_load(edges, "in_process", None, load_repeats)
    entry = {
        "in_process_seconds": inproc_s,
        "shared_memory_seconds": {},
        "overhead_ratio": {},
    }
    for workers in worker_counts:
        shm_s, cloud = _time_bulk_load(
            edges, "shared_memory", workers, load_repeats)
        if cloud is not None and getattr(cloud, "arenas_shared", False):
            cloud.release_arenas()
        ratio = shm_s / inproc_s if inproc_s else float("inf")
        entry["shared_memory_seconds"][str(workers)] = shm_s
        entry["overhead_ratio"][str(workers)] = ratio
        print(f"{'bulk_load':16s} in_process {inproc_s * 1e3:8.1f} ms   "
              f"shm[{workers}] {shm_s * 1e3:8.1f} ms   "
              f"ratio {ratio:5.2f}x")
    bench["results"]["bulk_load"] = entry
    return bench


def check_parallel_regression(bench: dict,
                              baseline_path: pathlib.Path) -> None:
    """Warn when the shm/in-process ratio worsened >2x vs the baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        for workers, ratio in entry["overhead_ratio"].items():
            base_ratio = base.get("overhead_ratio", {}).get(workers)
            if base_ratio and ratio > base_ratio * 2.0:
                print(f"::warning::perf-smoke: {name} shared-memory "
                      f"overhead with {workers} workers is "
                      f"{ratio:.2f}x in-process, more than 2x worse "
                      f"than the committed baseline {base_ratio:.2f}x")


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when a speedup regressed >2x vs the baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        if entry["speedup"] * 2.0 < base["speedup"]:
            print(f"::warning::perf-smoke: {name} speedup "
                  f"{entry['speedup']:.2f}x is more than 2x below the "
                  f"committed baseline {base['speedup']:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized graph; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--parallel", action="store_true",
                        help="benchmark execution backends (in-process vs "
                             "shared-memory workers) instead of "
                             "vectorized-vs-reference")
    parser.add_argument("--scale", type=int, default=None,
                        help="override R-MAT scale (2^scale nodes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-k repetitions (default 3, smoke 2)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_bsp.json; "
                             "smoke writes BENCH_bsp_smoke.json)")
    args = parser.parse_args()

    scale = args.scale or (10 if args.smoke else 14)
    repeats = args.repeats or (2 if args.smoke else 3)
    if args.parallel:
        worker_counts = (2,) if args.smoke else (1, 2, 4)
        bench = run_parallel_bench(scale=scale, avg_degree=8,
                                   repeats=repeats,
                                   worker_counts=worker_counts)
        out = args.out or (RESULTS_DIR / "BENCH_parallel_smoke.json"
                           if args.smoke else PARALLEL_PATH)
        if args.smoke:
            check_parallel_regression(bench, out)
    else:
        bench = run_bench(scale=scale, avg_degree=8, repeats=repeats)
        out = args.out or (RESULTS_DIR / "BENCH_bsp_smoke.json"
                           if args.smoke else BENCH_PATH)
        if args.smoke:
            # Compare against the committed smoke baseline (same scale)
            # before overwriting it.
            check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
