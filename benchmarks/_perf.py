"""Wall-clock benchmark: vectorized BSP fast path vs per-vertex reference.

Not a pytest benchmark (hence the underscore — the collector skips it):
this harness measures **real** wall-clock seconds, best-of-k, on seeded
R-MAT graphs, and asserts along the way that the two paths stay
bit-identical in values and identical in simulated-time/traffic
accounting.  Results land in ``benchmarks/results/BENCH_bsp.json``.

Usage::

    PYTHONPATH=src python benchmarks/_perf.py            # full run
    PYTHONPATH=src python benchmarks/_perf.py --smoke    # CI-sized run

``--smoke`` also compares against the committed baseline JSON and prints
a GitHub Actions ``::warning::`` (never a failure) when the measured
speedup regressed by more than 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms.bfs import BfsProgram               # noqa: E402
from repro.algorithms.pagerank import PageRankProgram     # noqa: E402
from repro.algorithms.sssp import SsspProgram             # noqa: E402
from repro.algorithms.wcc import WccProgram               # noqa: E402
from repro.compute import BspEngine                       # noqa: E402
from repro.generators import rmat_edges                   # noqa: E402
from repro.graph import CsrTopology                       # noqa: E402
from repro.net.simnet import SimNetwork                   # noqa: E402
from repro.obs import MetricsRegistry                     # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_bsp.json"

MACHINES = 4
SEED = 42


def _programs():
    return {
        "pagerank_10iter": lambda: PageRankProgram(iterations=10),
        "bfs": lambda: BfsProgram(root=0),
        "sssp_unit": lambda: SsspProgram(root=0),
        "wcc": lambda: WccProgram(),
    }


def _time_run(topology, make_program, vectorize: bool, repeats: int):
    """Best-of-``repeats`` wall time; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        engine = BspEngine(
            topology,
            network=SimNetwork(registry=MetricsRegistry()),
            vectorize=vectorize,
        )
        program = make_program()
        start = time.perf_counter()
        run = engine.run(program, max_supersteps=200)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = run
    return best, result


def _assert_identical(name: str, fast, reference) -> None:
    fast_values = np.asarray(fast.values)
    reference_values = np.asarray(reference.values,
                                  dtype=fast_values.dtype)
    if not np.array_equal(reference_values, fast_values):
        raise AssertionError(f"{name}: values diverge between paths")
    if fast.supersteps != reference.supersteps:
        raise AssertionError(
            f"{name}: superstep reports diverge between paths"
        )


def run_bench(scale: int, avg_degree: int, repeats: int) -> dict:
    edges = rmat_edges(scale=scale, avg_degree=avg_degree, seed=SEED)
    topology = CsrTopology.from_arrays(edges, machines=MACHINES)
    print(f"graph: rmat scale={scale} n={topology.n} "
          f"edges={topology.num_edges} machines={MACHINES}")

    bench = {
        "graph": {
            "generator": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": SEED,
            "nodes": topology.n,
            "edges": topology.num_edges,
            "machines": MACHINES,
        },
        "repeats": repeats,
        "python": platform.python_version(),
        "results": {},
    }
    for name, make_program in _programs().items():
        fast_s, fast = _time_run(topology, make_program, True, repeats)
        ref_s, reference = _time_run(topology, make_program, False, repeats)
        _assert_identical(name, fast, reference)
        speedup = ref_s / fast_s if fast_s else float("inf")
        bench["results"][name] = {
            "vectorized_seconds": fast_s,
            "reference_seconds": ref_s,
            "speedup": speedup,
            "supersteps": fast.superstep_count,
            "simulated_seconds": fast.elapsed,
        }
        print(f"{name:16s} vectorized {fast_s * 1e3:9.1f} ms   "
              f"reference {ref_s * 1e3:9.1f} ms   "
              f"speedup {speedup:6.2f}x   "
              f"supersteps {fast.superstep_count}")
    return bench


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when a speedup regressed >2x vs the baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        if entry["speedup"] * 2.0 < base["speedup"]:
            print(f"::warning::perf-smoke: {name} speedup "
                  f"{entry['speedup']:.2f}x is more than 2x below the "
                  f"committed baseline {base['speedup']:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized graph; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--scale", type=int, default=None,
                        help="override R-MAT scale (2^scale nodes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-k repetitions (default 3, smoke 2)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_bsp.json; "
                             "smoke writes BENCH_bsp_smoke.json)")
    args = parser.parse_args()

    scale = args.scale or (10 if args.smoke else 14)
    repeats = args.repeats or (2 if args.smoke else 3)
    bench = run_bench(scale=scale, avg_degree=8, repeats=repeats)

    out = args.out or (RESULTS_DIR / "BENCH_bsp_smoke.json"
                       if args.smoke else BENCH_PATH)
    if args.smoke:
        # Compare against the committed smoke baseline (same scale)
        # before overwriting it.
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
