"""Wall-clock + footprint benchmark: raw vs adaptive adjacency layouts.

Not a pytest benchmark (hence the underscore — the collector skips it):
this harness loads the same seeded R-MAT social graph under the raw
fixed-width layout policy and the adaptive per-cell one
(``MemoryParams(layout_policy="adaptive")`` — delta-varint and bitmap
codecs chosen per cell by degree/id-span stats), then measures

* the stored adjacency footprint per layout tag (the win the adaptive
  policy exists for), and
* hub-heavy online query latency — people-search flood from the
  highest-degree vertices plus a multi-hop TQL traversal — raw vs
  adaptive, batch path (the decode cost the codecs must not regress),
  and
* the same hub-heavy people-search through the serving layer (PR 7:
  fusion windows + the epoch-valid hub-adjacency cache), which is the
  deployment shape the adaptive layouts target: hot hub lists decode
  once per epoch and are then served from cache, so the extra varint
  passes amortize to parity while the footprint win stands.

Before timing, every workload runs once with ``cross_check=True`` on
all four configs {resident, paged} x {raw, adaptive}, and the answers
are compared across configs: the layout dimension must be invisible to
results.  Results land in ``benchmarks/results/BENCH_layout.json``.

Usage::

    PYTHONPATH=src python benchmarks/_perf_layout.py            # full run
    PYTHONPATH=src python benchmarks/_perf_layout.py --smoke    # CI-sized

``--smoke`` also compares against the committed baseline JSON and
prints a GitHub Actions ``::warning::`` (never a failure) when the
adaptive/raw query ratio regressed by more than 2x or the footprint
win shrank below the baseline's by more than a third.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np                                         # noqa: E402

from repro.algorithms.people_search import people_search   # noqa: E402
from repro.config import ClusterConfig, MemoryParams       # noqa: E402
from repro.generators import rmat_edges                    # noqa: E402
from repro.generators.names import sample_names            # noqa: E402
from repro.graph import GraphBuilder                       # noqa: E402
from repro.graph.model import social_graph_schema          # noqa: E402
from repro.memcloud import MemoryCloud                     # noqa: E402
from repro.net.simnet import SimNetwork                    # noqa: E402
from repro.obs import MetricsRegistry                      # noqa: E402
from repro.serve import (                                  # noqa: E402
    PeopleSearchQuery,
    QueryServer,
    ServeConfig,
)
from repro.tql.engine import execute_tql                   # noqa: E402
from repro.tsl import (                                    # noqa: E402
    LAYOUT_BITMAP,
    LAYOUT_DELTA_VARINT,
    LAYOUT_RAW,
    AdjacencyListType,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_layout.json"

MACHINES = 4
TRUNK_BITS = 4
SEED = 42
HOPS = 3
HUB_STARTS = 4           # people-search floods from the top-degree hubs
SERVE_HUBS = 8           # distinct hub starts in the served stream
SERVE_ROUNDS = 6         # each hub start repeats this often in the stream
TARGET_NAME = "David"

CONFIGS = [(storage, policy)
           for storage in ("resident", "paged")
           for policy in ("raw", "adaptive")]

_LAYOUT_NAMES = {LAYOUT_RAW: "raw", LAYOUT_DELTA_VARINT: "delta_varint",
                 LAYOUT_BITMAP: "bitmap"}


def build_graph(scale: int, avg_degree: float, storage: str, policy: str):
    """Seeded named R-MAT friendship graph under one layout policy."""
    cloud = MemoryCloud(
        ClusterConfig(machines=MACHINES, trunk_bits=TRUNK_BITS,
                      memory=MemoryParams(trunk_size=64 * 1024 * 1024,
                                          hashtable_storage="numpy",
                                          storage=storage,
                                          layout_policy=policy)),
        MetricsRegistry(),
    )
    n = 1 << scale
    edges = rmat_edges(scale, avg_degree=avg_degree, seed=SEED)
    builder = GraphBuilder(cloud, social_graph_schema())
    for node_id, name in enumerate(sample_names(n, seed=SEED + 1)):
        builder.add_node(node_id, Name=name)
    builder.add_edges(edges.tolist())
    return cloud, builder.finalize(), int(len(edges))


def adjacency_footprint(graph) -> dict:
    """Stored adjacency bytes and list counts per layout tag."""
    node_type = graph.graph_schema.node_type
    fields = [(name, tsl_type) for name, tsl_type in node_type.fields
              if isinstance(tsl_type, AdjacencyListType)]
    bytes_by = dict.fromkeys(_LAYOUT_NAMES.values(), 0)
    lists_by = dict.fromkeys(_LAYOUT_NAMES.values(), 0)
    for uid in graph.node_ids:
        blob = graph.cloud.get(uid)
        for name, tsl_type in fields:
            offset = node_type.field_offset(blob, name)
            end = tsl_type.skip(blob, offset)
            layout = _LAYOUT_NAMES[tsl_type.stored_layout(blob, offset)]
            bytes_by[layout] += end - offset
            lists_by[layout] += 1
    return {"total_bytes": sum(bytes_by.values()),
            "bytes": bytes_by, "lists": lists_by}


def hub_nodes(graph, count: int) -> list[int]:
    node_ids = np.asarray(sorted(graph.node_ids), dtype=np.int64)
    degrees = graph.degree_batch(node_ids)
    order = np.argsort(degrees)[::-1][:count]
    return [int(node_ids[i]) for i in order]


def tql_query(hub: int) -> str:
    return (f"MATCH (a = {hub}) -[Friends*1..{HOPS}]-> "
            f"(b {{Name: '{TARGET_NAME}'}}) RETURN b")


def run_workloads(graph, hubs, cross_check: bool) -> dict:
    """One pass of both workloads; returns comparable answer signatures."""
    signatures = {}
    for hub in hubs:
        result = people_search(graph, hub, TARGET_NAME, hops=HOPS,
                               network=SimNetwork(), batch=True,
                               cross_check=cross_check)
        signatures[f"ps_{hub}"] = (sorted(result.matches), result.visited)
    tql = execute_tql(graph, tql_query(hubs[0]), network=SimNetwork(),
                      batch=True, cross_check=cross_check)
    signatures["tql"] = sorted(map(str, tql.rows))
    return signatures


def time_people_search(graph, hubs, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for hub in hubs:
            people_search(graph, hub, TARGET_NAME, hops=HOPS,
                          network=SimNetwork(), batch=True)
        best = min(best, time.perf_counter() - start)
    return best


def time_tql(graph, hubs, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        execute_tql(graph, tql_query(hubs[0]), network=SimNetwork(),
                    batch=True)
        best = min(best, time.perf_counter() - start)
    return best


def time_served_people_search(graph, hubs, repeats: int
                              ) -> tuple[float, list]:
    """Best wall-clock for a hub-heavy served query stream.

    Submits ``SERVE_ROUNDS`` rounds of people-search over the hub
    starts through :class:`QueryServer` with fusion and the hub
    adjacency cache on (the result cache stays off so every query
    actually traverses).  Returns ``(best_seconds, signatures)`` —
    the answers, for cross-config comparison.
    """
    best, signatures = float("inf"), None
    for _ in range(repeats):
        config = ServeConfig(fuse=True, result_cache=False, hub_cache=True)
        server = QueryServer(graph, config, registry=MetricsRegistry())
        start = time.perf_counter()
        tickets = [server.submit(PeopleSearchQuery(hub, TARGET_NAME,
                                                   hops=HOPS))
                   for _ in range(SERVE_ROUNDS) for hub in hubs]
        server.run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        signatures = [(tuple(t.result["matches"]), t.result["visited"])
                      for t in tickets]
    return best, signatures


def run_one_scale(scale: int, avg_degree: float, repeats: int) -> dict:
    clouds, graphs = {}, {}
    try:
        edge_count = None
        for storage, policy in CONFIGS:
            cloud, graph, edges = build_graph(scale, avg_degree,
                                              storage, policy)
            clouds[(storage, policy)] = cloud
            graphs[(storage, policy)] = graph
            if edge_count is None:
                edge_count = edges
            elif edges != edge_count:
                raise AssertionError("edge counts diverge across configs")

        hubs = hub_nodes(graphs[("resident", "raw")], HUB_STARTS)

        # Bit-identity sweep: cross_check=True shadow-replays the scalar
        # path inside each config; comparing signatures across configs
        # then pins raw == adaptive and resident == paged.
        reference = None
        for key in CONFIGS:
            signature = run_workloads(graphs[key], hubs, cross_check=True)
            if reference is None:
                reference = signature
            elif signature != reference:
                raise AssertionError(
                    f"{key[0]}/{key[1]}: answers diverge from "
                    f"resident/raw on the same graph")

        footprint = {policy: adjacency_footprint(
            graphs[("resident", policy)]) for policy in ("raw", "adaptive")}
        raw_bytes = footprint["raw"]["total_bytes"]
        adaptive_bytes = footprint["adaptive"]["total_bytes"]
        reduction = 1.0 - adaptive_bytes / raw_bytes if raw_bytes else 0.0

        serve_hubs = hub_nodes(graphs[("resident", "raw")], SERVE_HUBS)
        timings, served_sigs = {}, {}
        for policy in ("raw", "adaptive"):
            graph = graphs[("resident", policy)]
            served_seconds, served_sigs[policy] = time_served_people_search(
                graph, serve_hubs, repeats)
            timings[policy] = {
                "people_search_seconds": time_people_search(graph, hubs,
                                                            repeats),
                "tql_seconds": time_tql(graph, hubs, repeats),
                "served_people_search_seconds": served_seconds,
            }
        if served_sigs["adaptive"] != served_sigs["raw"]:
            raise AssertionError(
                "served people-search answers diverge raw vs adaptive")
        ps_ratio = (timings["adaptive"]["people_search_seconds"]
                    / timings["raw"]["people_search_seconds"])
        tql_ratio = (timings["adaptive"]["tql_seconds"]
                     / timings["raw"]["tql_seconds"])
        served_ratio = (timings["adaptive"]["served_people_search_seconds"]
                        / timings["raw"]["served_people_search_seconds"])

        return {
            "scale": scale,
            "nodes": 1 << scale,
            "edges": edge_count,
            "hub_starts": hubs,
            "footprint": {
                "raw": footprint["raw"],
                "adaptive": footprint["adaptive"],
                "adjacency_reduction": reduction,
            },
            "timings": timings,
            "people_search_adaptive_over_raw": ps_ratio,
            "tql_adaptive_over_raw": tql_ratio,
            "served_people_search_adaptive_over_raw": served_ratio,
            "serve_stream": {
                "hub_starts": serve_hubs,
                "rounds": SERVE_ROUNDS,
                "queries": SERVE_ROUNDS * len(serve_hubs),
            },
            "cross_check": {
                "configs": [f"{s}/{p}" for s, p in CONFIGS],
                "workloads": ["people_search", "tql",
                              "served_people_search"],
                "identical": True,
            },
        }
    finally:
        for cloud in clouds.values():
            cloud.release_arenas()


def run_bench(scales: list[int], avg_degree: float, repeats: int) -> dict:
    bench = {
        "generator": {"kind": "rmat-social", "avg_degree": avg_degree,
                      "seed": SEED},
        "machines": MACHINES,
        "trunk_bits": TRUNK_BITS,
        "hops": HOPS,
        "python": platform.python_version(),
        "results": {},
    }
    for scale in scales:
        entry = run_one_scale(scale, avg_degree, repeats)
        bench["results"][f"scale_{scale}"] = entry
        fp = entry["footprint"]
        print(f"scale {scale:2d}  edges {entry['edges']:8d}   "
              f"adjacency {fp['raw']['total_bytes']:9,d} -> "
              f"{fp['adaptive']['total_bytes']:9,d} B "
              f"({fp['adjacency_reduction'] * 100:5.1f}% saved)   "
              f"ps x{entry['people_search_adaptive_over_raw']:.2f}  "
              f"served x{entry['served_people_search_adaptive_over_raw']:.2f}"
              f"  tql x{entry['tql_adaptive_over_raw']:.2f}")
        if fp["adjacency_reduction"] < 0.25 and scale >= 14:
            print(f"::warning::perf-layout: scale {scale} adjacency "
                  f"reduction {fp['adjacency_reduction'] * 100:.1f}% is "
                  f"below the 25% target")
        served = entry["served_people_search_adaptive_over_raw"]
        if served > 1.10 and scale >= 14:
            print(f"::warning::perf-layout: scale {scale} served "
                  f"people-search is x{served:.2f} adaptive/raw — the "
                  f"hub cache should amortize decode to parity")
    return bench


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) on regression against the committed baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    for name, entry in bench["results"].items():
        base = baseline.get("results", {}).get(name)
        if not base:
            continue
        for key in ("people_search_adaptive_over_raw",
                    "served_people_search_adaptive_over_raw",
                    "tql_adaptive_over_raw"):
            if key not in base:
                continue
            if entry[key] > base[key] * 2.0:
                print(f"::warning::perf-layout: {name} {key} "
                      f"{entry[key]:.2f} is more than 2x above the "
                      f"committed baseline {base[key]:.2f}")
        got = entry["footprint"]["adjacency_reduction"]
        want = base["footprint"]["adjacency_reduction"]
        if got < want * (2 / 3):
            print(f"::warning::perf-layout: {name} adjacency reduction "
                  f"{got * 100:.1f}% shrank vs the committed baseline "
                  f"{want * 100:.1f}%")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized graph; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--scale", type=int, default=None,
                        help="run a single graph scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_layout.json)")
    args = parser.parse_args()

    if args.scale is not None:
        scales = [args.scale]
    elif args.smoke:
        scales = [10]
    else:
        scales = [12, 14]
    repeats = args.repeats or (2 if args.smoke else 3)
    bench = run_bench(scales=scales, avg_degree=13.0, repeats=repeats)

    out = args.out or (RESULTS_DIR / "BENCH_layout_smoke.json"
                       if args.smoke else BENCH_PATH)
    if args.smoke:
        # Compare against the committed baseline before overwriting it.
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
