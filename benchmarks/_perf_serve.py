"""Wall-clock benchmark: concurrent query serving vs one-at-a-time.

Drives thousands of interleaved online queries — people search, TQL
reach, landmark BFS, subgraph match — through ``repro.serve`` and
measures sustained completed-queries-per-second under a sweep of
offered load (queries kept in flight), for three server configurations:

* ``no_opt``         — the sequential baseline: one query at a time
  through the existing library path, same admission/SLO machinery;
* ``fusion``         — cross-query frontier fusion only: every fusion
  window issues one bulk read per op shape for *all* in-flight queries;
* ``fusion_caching`` — fusion plus the epoch-stamped hub-adjacency and
  query-result caches.

The workload pool repeats queries with a zipf-like skew (as production
query streams do), which is what the result cache monetizes; frontier
overlap across concurrent BFS waves is what fusion monetizes.  Before
timing, a correctness pass serves a mixed sample with
``cross_check=True`` — every completion is shadow-replayed through the
sequential path and any divergence raises — including across an
interleaved mutation.  Results land in
``benchmarks/results/BENCH_serve.json`` with p50/p99 per query class
for every configuration and load; the full serve metrics registry of
the top fused+cached run is dumped alongside as
``BENCH_serve[_smoke].metrics.json``.

Usage::

    PYTHONPATH=src python benchmarks/_perf_serve.py            # full run
    PYTHONPATH=src python benchmarks/_perf_serve.py --smoke    # CI-sized

``--smoke`` also compares against the committed baseline JSON and prints
a GitHub Actions ``::warning::`` (never a failure) when the measured
top-load speedup regressed by more than 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np                                          # noqa: E402

from _harness import build_social_graph                     # noqa: E402
from repro.algorithms.subgraph import generate_query_dfs    # noqa: E402
from repro.obs import JsonFileSink, MetricsRegistry         # noqa: E402
from repro.serve import (                                   # noqa: E402
    LandmarkBfsQuery,
    PeopleSearchQuery,
    QueryServer,
    ServeConfig,
    SubgraphServeQuery,
    TqlServeQuery,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_serve.json"

MACHINES = 4
TRUNK_BITS = 4
SEED = 42

CONFIGS = {
    "no_opt": dict(sequential=True, fuse=False, result_cache=False,
                   hub_cache=False),
    "fusion": dict(fuse=True, result_cache=False, hub_cache=False),
    "fusion_caching": dict(fuse=True, result_cache=True, hub_cache=True),
}


def tql_text(anchor: int) -> str:
    return (f"MATCH (a = {anchor}) -[Friends*1..3]-> "
            "(b {Name: 'David'}) RETURN b")


def build_query_pool(graph, distinct: int, seed: int) -> list:
    """``distinct`` unique queries: ~1/2 people search, the rest split
    across TQL reach, landmark BFS and subgraph match."""
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    server = QueryServer(graph, ServeConfig(),
                         registry=MetricsRegistry())
    topology, labels, _index = server.snapshot()
    pool: list = []
    for i in range(distinct):
        which = i % 8
        start = int(rng.integers(0, n))
        if which < 4:
            pool.append(PeopleSearchQuery(start, "David", hops=3))
        elif which < 6:
            pool.append(TqlServeQuery(tql_text(start)))
        elif which < 7:
            pool.append(LandmarkBfsQuery(start, max_hops=4))
        else:
            pool.append(SubgraphServeQuery(
                generate_query_dfs(topology, labels, size=4,
                                   seed=int(rng.integers(0, 1 << 16)))))
    return pool


def build_workload(pool: list, total: int, seed: int) -> list:
    """``total`` submissions drawn zipf-skewed from the distinct pool."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = 1.0 / ranks          # zipf s=1 over pool rank
    weights /= weights.sum()
    picks = rng.choice(len(pool), size=total, p=weights)
    return [pool[int(p)] for p in picks]


def fresh_query(query):
    """Rebuild a pool query so per-instance plan state never leaks
    between server runs."""
    if isinstance(query, PeopleSearchQuery):
        return PeopleSearchQuery(query.start, query.name, query.hops)
    if isinstance(query, TqlServeQuery):
        return TqlServeQuery(query.text)
    if isinstance(query, LandmarkBfsQuery):
        return LandmarkBfsQuery(query.source, query.max_hops)
    return SubgraphServeQuery(query.query, query.max_embeddings)


def serve_once(graph, config_name: str, workload: list, in_flight: int,
               registry=None):
    """One timed serving run; returns (elapsed, server, tickets)."""
    registry = registry if registry is not None else MetricsRegistry()
    config = ServeConfig(max_in_flight=in_flight,
                         queue_limit=len(workload) + 1,
                         **CONFIGS[config_name])
    server = QueryServer(graph, config, registry=registry)
    if any(isinstance(q, SubgraphServeQuery) for q in workload):
        # Build the topology snapshot outside the timed region — a warm
        # server that has seen traffic holds it already.
        server.snapshot()
    start = time.perf_counter()
    tickets = [server.submit(fresh_query(q)) for q in workload]
    server.run()
    elapsed = time.perf_counter() - start
    assert all(t.status == "done" for t in tickets)
    return elapsed, server, tickets


def correctness_pass(graph, workload: list) -> dict:
    """Serve a mixed sample with cross_check=True (every completion is
    shadow-replayed through the sequential library path), including
    across an interleaved mutation barrier."""
    config = ServeConfig(cross_check=True, max_in_flight=16,
                         queue_limit=len(workload) + 1,
                         **CONFIGS["fusion_caching"])
    server = QueryServer(graph, config, registry=MetricsRegistry())
    sample = workload[:48]
    tickets = [server.submit(fresh_query(q)) for q in sample]
    server.run()
    # Mutate through the barrier, then re-serve the same sample: cached
    # pre-mutation entries are now stale and must be recomputed — the
    # shadow replay would raise if one were served.
    new_node = max(graph.node_ids) + 1
    server.mutate(lambda g: g.add_edge(graph.node_ids[0], new_node))
    again = [server.submit(fresh_query(q)) for q in sample]
    server.run()
    assert all(t.status == "done" for t in tickets + again)
    return {
        "queries_checked": len(tickets) + len(again),
        "cached_completions": int(sum(t.cached for t in tickets + again)),
        "interleaved_mutations": 1,
        "result_cache_invalidated": server.result_cache.invalidated,
    }


def overload_demo(graph, workload: list) -> dict:
    """Bounded admission under a burst beyond the queue limit."""
    limit = max(8, len(workload) // 4)
    config = ServeConfig(queue_limit=limit, max_in_flight=8,
                         **CONFIGS["fusion_caching"])
    server = QueryServer(graph, config, registry=MetricsRegistry())
    tickets = [server.submit(fresh_query(q)) for q in workload]
    rejected = sum(t.status == "rejected" for t in tickets)
    server.run()
    completed = sum(t.status == "done" for t in tickets)
    return {"offered": len(tickets), "queue_limit": limit,
            "rejected_queue_full": rejected, "completed": completed}


def run_bench(scale: int, avg_degree: float, total: int, distinct: int,
              loads: list[int], smoke: bool) -> tuple[dict, object]:
    graph, edge_count = build_social_graph(
        scale, avg_degree, machines=MACHINES, trunk_bits=TRUNK_BITS,
        seed=SEED)
    pool = build_query_pool(graph, distinct, seed=SEED + 2)
    workload = build_workload(pool, total, seed=SEED + 3)
    print(f"scale {scale}: {graph.num_nodes} nodes, {edge_count} edges, "
          f"{total} queries over {distinct} distinct")

    check = correctness_pass(graph, workload)
    print(f"cross-check pass: {check['queries_checked']} completions "
          f"shadow-replayed, {check['cached_completions']} from cache")

    bench = {
        "generator": {"kind": "rmat", "scale": scale,
                      "avg_degree": avg_degree, "seed": SEED},
        "machines": MACHINES,
        "trunk_bits": TRUNK_BITS,
        "nodes": graph.num_nodes,
        "edges": edge_count,
        "workload": {"total": total, "distinct": distinct,
                     "skew": "zipf-1"},
        "python": platform.python_version(),
        "cross_check": check,
        "results": {},
    }
    top_registry = None
    for load in loads:
        entry = {}
        for config_name in CONFIGS:
            registry = MetricsRegistry()
            elapsed, server, _tickets = serve_once(
                graph, config_name, workload, in_flight=load,
                registry=registry)
            report = server.report()
            entry[config_name] = {
                "seconds": elapsed,
                "qps": total / elapsed,
                "classes": report.classes,
                "admission": report.admission,
                "caches": report.caches,
                "fusion": report.fusion,
            }
            if load == loads[-1] and config_name == "fusion_caching":
                top_registry = registry
            print(f"  load {load:3d}  {config_name:15s} "
                  f"{elapsed:7.2f}s  {total / elapsed:8.1f} qps")
        base = entry["no_opt"]["qps"]
        entry["speedup_fusion"] = entry["fusion"]["qps"] / base
        entry["speedup_fusion_caching"] = (
            entry["fusion_caching"]["qps"] / base)
        bench["results"][f"load_{load}"] = entry
        print(f"  load {load:3d}  speedup: fusion "
              f"{entry['speedup_fusion']:.2f}x, +caching "
              f"{entry['speedup_fusion_caching']:.2f}x")

    bench["overload"] = overload_demo(graph, workload)
    top = bench["results"][f"load_{loads[-1]}"]
    bench["top_load"] = {
        "load": loads[-1],
        "speedup_fusion_caching": top["speedup_fusion_caching"],
    }
    return bench, top_registry


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when the top-load speedup regressed >2x."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    committed = baseline.get("top_load", {}).get("speedup_fusion_caching")
    measured = bench["top_load"]["speedup_fusion_caching"]
    if committed and measured * 2.0 < committed:
        print(f"::warning::perf-smoke: serve top-load speedup "
              f"{measured:.2f}x is more than 2x below the committed "
              f"baseline {committed:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--scale", type=int, default=None,
                        help="R-MAT scale (2^scale nodes; default 14, "
                             "smoke 10)")
    parser.add_argument("--queries", type=int, default=None,
                        help="total submissions (default 2000, smoke 300)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_serve.json; "
                             "smoke writes BENCH_serve_smoke.json)")
    args = parser.parse_args()

    scale = args.scale or (10 if args.smoke else 14)
    total = args.queries or (300 if args.smoke else 2000)
    distinct = max(8, total // 12)
    loads = [1, 8] if args.smoke else [1, 8, 32]
    bench, top_registry = run_bench(scale=scale, avg_degree=8,
                                    total=total, distinct=distinct,
                                    loads=loads, smoke=args.smoke)

    out = args.out or (RESULTS_DIR / "BENCH_serve_smoke.json"
                       if args.smoke else BENCH_PATH)
    if args.smoke:
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    if top_registry is not None:
        metrics_path = out.parent / (out.stem + ".metrics.json")
        JsonFileSink(metrics_path).export(top_registry.snapshot())
        print(f"wrote {metrics_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
