"""Wall-clock benchmark: concurrent query serving vs one-at-a-time.

Drives thousands of interleaved online queries — people search, TQL
reach, landmark BFS, subgraph match — through ``repro.serve`` and
measures sustained completed-queries-per-second under a sweep of
offered load (queries kept in flight), for three server configurations:

* ``no_opt``         — the sequential baseline: one query at a time
  through the existing library path, same admission/SLO machinery;
* ``fusion``         — cross-query frontier fusion only: every fusion
  window issues one bulk read per op shape for *all* in-flight queries;
* ``fusion_caching`` — fusion plus the epoch-stamped hub-adjacency and
  query-result caches.

The workload pool repeats queries with a zipf-like skew (as production
query streams do), which is what the result cache monetizes; frontier
overlap across concurrent BFS waves is what fusion monetizes.  Before
timing, a correctness pass serves a mixed sample with
``cross_check=True`` — every completion is shadow-replayed through the
sequential path and any divergence raises — including across an
interleaved mutation.  Results land in
``benchmarks/results/BENCH_serve.json`` with p50/p99 per query class
for every configuration and load; the full serve metrics registry of
the top fused+cached run is dumped alongside as
``BENCH_serve[_smoke].metrics.json``.

A second sweep measures **sustained mixed read/write serving**: chunks
of ``chunk`` queries, then one single-edge write through the mutation
barrier, sweeping the chunk size *down* (fewer queries between writes =
a higher write rate), across three cache-repair schemes — ``no_opt``
(sequential baseline), ``global_epoch`` (fusion + caches stamped with
the coarse cloud-global epoch: every write nukes every entry), and
``trunk_epoch`` (fusion + caches stamped with per-trunk epoch
footprints: a write only kills entries that read the written trunk).
In-flight concurrency is capped by the chunk, so at chunk 1 fusion has
nothing to fuse and the schemes differ *only* in how they repair their
caches — the regime the sweep exists to expose.  Each (chunk, scheme)
cell rebuilds the same seeded graph and replays the same query/write
script, so the three schemes' answers are asserted identical
element-by-element, and a dedicated ``cross_check=True`` pass
shadow-replays a mixed read/write sample for both epoch schemes.  The
paper's serving claim lives or dies here: with incremental repair the
fused+cached server must *hold* a >=2x throughput edge over no_opt at
a write rate where the global-epoch scheme has already collapsed to
~parity.

Usage::

    PYTHONPATH=src python benchmarks/_perf_serve.py            # full run
    PYTHONPATH=src python benchmarks/_perf_serve.py --smoke    # CI-sized

``--smoke`` also compares against the committed baseline JSON and prints
a GitHub Actions ``::warning::`` (never a failure) when the measured
top-load speedup regressed by more than 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np                                          # noqa: E402

from _harness import build_social_graph                     # noqa: E402
from repro.algorithms.subgraph import generate_query_dfs    # noqa: E402
from repro.obs import JsonFileSink, MetricsRegistry         # noqa: E402
from repro.serve import (                                   # noqa: E402
    LandmarkBfsQuery,
    PeopleSearchQuery,
    QueryServer,
    ServeConfig,
    SubgraphServeQuery,
    TqlServeQuery,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_serve.json"

MACHINES = 4
TRUNK_BITS = 4
SEED = 42

CONFIGS = {
    "no_opt": dict(sequential=True, fuse=False, result_cache=False,
                   hub_cache=False),
    "fusion": dict(fuse=True, result_cache=False, hub_cache=False),
    "fusion_caching": dict(fuse=True, result_cache=True, hub_cache=True),
}

# -- mixed read/write sweep -------------------------------------------------

#: The cache-repair ablation: same fused+cached server, different epoch
#: granularity; no_opt is the sequential oracle all answers are pinned to.
RW_CONFIGS = {
    "no_opt": dict(sequential=True, fuse=False, result_cache=False,
                   hub_cache=False),
    "global_epoch": dict(fuse=True, result_cache=True, hub_cache=True,
                         epoch_granularity="global"),
    "trunk_epoch": dict(fuse=True, result_cache=True, hub_cache=True,
                        epoch_granularity="trunk"),
}

#: Many small trunks: footprints stay narrow relative to the trunk count,
#: which is exactly the regime incremental repair exists for.  A write
#: touches the two endpoint cells (~2-3 trunks of 512), so a cached
#: entry with a ~10-trunk footprint survives each write with p ~ 0.95
#: under trunk epochs — and with p = 0 under the global epoch.
RW_TRUNK_BITS = 9
RW_TRUNK_SIZE = 128 * 1024
RW_BURST = 8            # in-flight cap; actual in-flight = min(chunk, this)
RW_DEGREE = 4.0         # sparser than the read-only sweep: 1-2 hop
                        # frontiers stay narrow, so result footprints do too
RW_ZIPF_S = 2.0         # production read streams are head-heavy; repeats
                        # are what a repaired cache can monetize


def tql_text(anchor: int) -> str:
    return (f"MATCH (a = {anchor}) -[Friends*1..3]-> "
            "(b {Name: 'David'}) RETURN b")


def build_query_pool(graph, distinct: int, seed: int) -> list:
    """``distinct`` unique queries: ~1/2 people search, the rest split
    across TQL reach, landmark BFS and subgraph match."""
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    server = QueryServer(graph, ServeConfig(),
                         registry=MetricsRegistry())
    topology, labels, _index = server.snapshot()
    pool: list = []
    for i in range(distinct):
        which = i % 8
        start = int(rng.integers(0, n))
        if which < 4:
            pool.append(PeopleSearchQuery(start, "David", hops=3))
        elif which < 6:
            pool.append(TqlServeQuery(tql_text(start)))
        elif which < 7:
            pool.append(LandmarkBfsQuery(start, max_hops=4))
        else:
            pool.append(SubgraphServeQuery(
                generate_query_dfs(topology, labels, size=4,
                                   seed=int(rng.integers(0, 1 << 16)))))
    return pool


def build_workload(pool: list, total: int, seed: int,
                   s: float = 1.0) -> list:
    """``total`` submissions drawn zipf(``s``)-skewed from the pool."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = 1.0 / ranks ** s
    weights /= weights.sum()
    picks = rng.choice(len(pool), size=total, p=weights)
    return [pool[int(p)] for p in picks]


def fresh_query(query):
    """Rebuild a pool query so per-instance plan state never leaks
    between server runs."""
    if isinstance(query, PeopleSearchQuery):
        return PeopleSearchQuery(query.start, query.name, query.hops)
    if isinstance(query, TqlServeQuery):
        return TqlServeQuery(query.text)
    if isinstance(query, LandmarkBfsQuery):
        return LandmarkBfsQuery(query.source, query.max_hops)
    return SubgraphServeQuery(query.query, query.max_embeddings)


def serve_once(graph, config_name: str, workload: list, in_flight: int,
               registry=None):
    """One timed serving run; returns (elapsed, server, tickets)."""
    registry = registry if registry is not None else MetricsRegistry()
    config = ServeConfig(max_in_flight=in_flight,
                         queue_limit=len(workload) + 1,
                         **CONFIGS[config_name])
    server = QueryServer(graph, config, registry=registry)
    if any(isinstance(q, SubgraphServeQuery) for q in workload):
        # Build the topology snapshot outside the timed region — a warm
        # server that has seen traffic holds it already.
        server.snapshot()
    start = time.perf_counter()
    tickets = [server.submit(fresh_query(q)) for q in workload]
    server.run()
    elapsed = time.perf_counter() - start
    assert all(t.status == "done" for t in tickets)
    return elapsed, server, tickets


def correctness_pass(graph, workload: list) -> dict:
    """Serve a mixed sample with cross_check=True (every completion is
    shadow-replayed through the sequential library path), including
    across an interleaved mutation barrier."""
    config = ServeConfig(cross_check=True, max_in_flight=16,
                         queue_limit=len(workload) + 1,
                         **CONFIGS["fusion_caching"])
    server = QueryServer(graph, config, registry=MetricsRegistry())
    sample = workload[:48]
    tickets = [server.submit(fresh_query(q)) for q in sample]
    server.run()
    # Mutate through the barrier, then re-serve the same sample: cached
    # pre-mutation entries are now stale and must be recomputed — the
    # shadow replay would raise if one were served.
    new_node = max(graph.node_ids) + 1
    server.mutate(lambda g: g.add_edge(graph.node_ids[0], new_node))
    again = [server.submit(fresh_query(q)) for q in sample]
    server.run()
    assert all(t.status == "done" for t in tickets + again)
    return {
        "queries_checked": len(tickets) + len(again),
        "cached_completions": int(sum(t.cached for t in tickets + again)),
        "interleaved_mutations": 1,
        "result_cache_invalidated": server.result_cache.invalidated,
    }


def overload_demo(graph, workload: list) -> dict:
    """Bounded admission under a burst beyond the queue limit."""
    limit = max(8, len(workload) // 4)
    config = ServeConfig(queue_limit=limit, max_in_flight=8,
                         **CONFIGS["fusion_caching"])
    server = QueryServer(graph, config, registry=MetricsRegistry())
    tickets = [server.submit(fresh_query(q)) for q in workload]
    rejected = sum(t.status == "rejected" for t in tickets)
    server.run()
    completed = sum(t.status == "done" for t in tickets)
    return {"offered": len(tickets), "queue_limit": limit,
            "rejected_queue_full": rejected, "completed": completed}


def build_rw_graph(scale: int):
    """A fresh, identically-seeded graph for one (chunk, scheme) cell.

    Rebuilt per cell because the writes mutate it: every scheme must see
    the same graph and the same write script, so their answers can be
    compared element-by-element."""
    return build_social_graph(scale, RW_DEGREE, machines=MACHINES,
                              trunk_bits=RW_TRUNK_BITS,
                              trunk_size=RW_TRUNK_SIZE, seed=SEED)


def build_rw_pool(graph, distinct: int, seed: int) -> list:
    """Cheap fusible shapes with narrow trunk footprints: 1-2 hop people
    search, forward/reverse TQL chains and WHERE residuals."""
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    pool: list = []
    for i in range(distinct):
        which = i % 8
        start = int(rng.integers(0, n))
        if which < 3:
            pool.append(PeopleSearchQuery(start, "David", hops=1))
        elif which < 5:
            pool.append(TqlServeQuery(
                f"MATCH (a = {start}) -[Friends*1..2]-> "
                "(b {Name: 'David'}) RETURN b"))
        elif which < 6:
            pool.append(TqlServeQuery(
                f"MATCH (a = {start}) -[Friends*1..2]-> (b) "
                "WHERE b.Name != 'David' RETURN b"))
        elif which < 7:
            pool.append(TqlServeQuery(
                f"MATCH (a = {start}) <-[Friends*1..2]- (b) RETURN b"))
        else:
            pool.append(LandmarkBfsQuery(start, max_hops=1))
    return pool


def build_rw_writes(graph, count: int, seed: int) -> list[tuple[int, int]]:
    """A pre-drawn write script: ``count`` edges between existing nodes,
    identical for every scheme at a given rate."""
    rng = np.random.default_rng(seed)
    nodes = np.asarray(graph.node_ids, dtype=np.int64)
    pairs = []
    for _ in range(count):
        u, v = rng.choice(len(nodes), size=2, replace=False)
        pairs.append((int(nodes[u]), int(nodes[v])))
    return pairs


def serve_mixed_rw(graph, config_name: str, workload: list,
                   writes: list[tuple[int, int]], chunk: int,
                   registry=None):
    """``chunk`` queries, one edge write, repeat; returns (elapsed,
    results, server).

    In-flight concurrency is ``min(chunk, RW_BURST)``: a server cannot
    fuse across a mutation barrier, so the chunk bounds what can be in
    flight together.  Only the serving time counts — applying a write
    costs the same under every scheme (same cells, same barrier), so
    folding it in would just dilute the repair-policy signal."""
    registry = registry if registry is not None else MetricsRegistry()
    config = ServeConfig(max_in_flight=min(chunk, RW_BURST),
                         queue_limit=len(workload) + 1,
                         **RW_CONFIGS[config_name])
    server = QueryServer(graph, config, registry=registry)
    results: list = []
    write_index = 0
    elapsed = 0.0
    for lo in range(0, len(workload), chunk):
        burst = workload[lo:lo + chunk]
        start = time.perf_counter()
        tickets = [server.submit(fresh_query(q)) for q in burst]
        server.run()
        elapsed += time.perf_counter() - start
        results.extend(t.result for t in tickets)
        if write_index < len(writes):
            u, v = writes[write_index]
            write_index += 1
            server.mutate(lambda g, a=u, b=v: g.add_edge(a, b))
    return elapsed, results, server


def rw_correctness_pass(scale: int, total: int, chunk: int = 2) -> dict:
    """Mixed read/write serving with ``cross_check=True`` for both epoch
    schemes: every completion — fused, cached, or inline — is shadow-
    replayed through the sequential library path across interleaved
    writes; any stale or divergent answer raises."""
    checked = {}
    for scheme in ("global_epoch", "trunk_epoch"):
        graph, _edges = build_rw_graph(scale)
        pool = build_rw_pool(graph, max(8, total // 6), seed=SEED + 7)
        workload = build_workload(pool, total, seed=SEED + 8, s=RW_ZIPF_S)
        writes = build_rw_writes(graph, len(workload) // chunk + 1,
                                 seed=SEED + 9)
        config = ServeConfig(cross_check=True,
                             max_in_flight=min(chunk, RW_BURST),
                             queue_limit=len(workload) + 1,
                             **RW_CONFIGS[scheme])
        server = QueryServer(graph, config, registry=MetricsRegistry())
        write_index = 0
        done = cached = 0
        for lo in range(0, len(workload), chunk):
            tickets = [server.submit(fresh_query(q))
                       for q in workload[lo:lo + chunk]]
            server.run()
            assert all(t.status == "done" for t in tickets)
            done += len(tickets)
            cached += sum(t.cached for t in tickets)
            if write_index < len(writes):
                u, v = writes[write_index]
                write_index += 1
                server.mutate(lambda g, a=u, b=v: g.add_edge(a, b))
        checked[scheme] = {
            "queries_checked": done,
            "cached_completions": cached,
            "interleaved_writes": write_index,
            "result_cache_invalidated": server.result_cache.invalidated,
        }
    return checked


def run_rw_bench(scale: int, total: int, distinct: int,
                 chunks: list[int], warn_acceptance: bool = True) -> dict:
    """The mixed read/write sweep over RW_CONFIGS x chunk sizes.

    ``chunks`` descends: each step doubles the write rate (one write per
    ``chunk`` queries), so the sweep walks the server from a fusion-
    friendly regime into the write-dominated one where only incremental
    cache repair keeps any entries alive."""
    print(f"mixed r/w sweep: scale {scale}, degree {RW_DEGREE}, {total} "
          f"queries over {distinct} distinct (zipf {RW_ZIPF_S}), one "
          f"write per {chunks} queries, {1 << RW_TRUNK_BITS} trunks")
    check = rw_correctness_pass(scale, total=min(total, 160))
    for scheme, stats in check.items():
        print(f"  r/w cross-check [{scheme}]: "
              f"{stats['queries_checked']} shadow-replayed, "
              f"{stats['cached_completions']} from cache, "
              f"{stats['interleaved_writes']} writes")

    sweep = {"burst": RW_BURST, "trunk_bits": RW_TRUNK_BITS,
             "degree": RW_DEGREE, "zipf_s": RW_ZIPF_S,
             "cross_check": check, "chunks": {}}
    acceptance = None
    for chunk in chunks:
        entry = {}
        reference = None
        for scheme in RW_CONFIGS:
            graph, _edges = build_rw_graph(scale)
            pool = build_rw_pool(graph, distinct, seed=SEED + 4)
            workload = build_workload(pool, total, seed=SEED + 5,
                                      s=RW_ZIPF_S)
            writes = build_rw_writes(graph, len(workload) // chunk + 1,
                                     seed=SEED + 6)
            elapsed, results, server = serve_mixed_rw(
                graph, scheme, workload, writes, chunk=chunk)
            if reference is None:
                reference = results          # no_opt runs first: oracle
            else:
                assert results == reference, (
                    f"{scheme} diverged from the sequential oracle at "
                    f"chunk {chunk}")
            report = server.report()
            entry[scheme] = {
                "seconds": elapsed,
                "qps": total / elapsed,
                "caches": report.caches,
                "fusion": report.fusion,
            }
            print(f"  chunk {chunk:2d}  {scheme:13s} "
                  f"{elapsed:7.2f}s  {total / elapsed:8.1f} qps")
        base = entry["no_opt"]["qps"]
        entry["retained_global"] = entry["global_epoch"]["qps"] / base
        entry["retained_trunk"] = entry["trunk_epoch"]["qps"] / base
        sweep["chunks"][f"chunk_{chunk}"] = entry
        print(f"  chunk {chunk:2d}  retained vs no_opt: global "
              f"{entry['retained_global']:.2f}x, trunk "
              f"{entry['retained_trunk']:.2f}x")
        # Acceptance: at some write rate the coarse scheme has fallen to
        # ~parity with no_opt while incremental repair holds >= 2x.
        # Chunks descend, so the last qualifying cell (kept below) is
        # the highest write rate that still clears the bar.
        if (entry["retained_global"] < 1.3
                and entry["retained_trunk"] >= 2.0):
            acceptance = {"chunk": chunk,
                          "retained_global": entry["retained_global"],
                          "retained_trunk": entry["retained_trunk"]}
    sweep["acceptance"] = acceptance
    if acceptance:
        print(f"  acceptance met at chunk {acceptance['chunk']}: "
              f"trunk {acceptance['retained_trunk']:.2f}x vs global "
              f"{acceptance['retained_global']:.2f}x")
    elif warn_acceptance:
        print("  ::warning::mixed r/w sweep: no chunk met the "
              "trunk>=2x-while-global<1.3x acceptance bar")
    return sweep


def run_bench(scale: int, avg_degree: float, total: int, distinct: int,
              loads: list[int], smoke: bool) -> tuple[dict, object]:
    graph, edge_count = build_social_graph(
        scale, avg_degree, machines=MACHINES, trunk_bits=TRUNK_BITS,
        seed=SEED)
    pool = build_query_pool(graph, distinct, seed=SEED + 2)
    workload = build_workload(pool, total, seed=SEED + 3)
    print(f"scale {scale}: {graph.num_nodes} nodes, {edge_count} edges, "
          f"{total} queries over {distinct} distinct")

    check = correctness_pass(graph, workload)
    print(f"cross-check pass: {check['queries_checked']} completions "
          f"shadow-replayed, {check['cached_completions']} from cache")

    bench = {
        "generator": {"kind": "rmat", "scale": scale,
                      "avg_degree": avg_degree, "seed": SEED},
        "machines": MACHINES,
        "trunk_bits": TRUNK_BITS,
        "nodes": graph.num_nodes,
        "edges": edge_count,
        "workload": {"total": total, "distinct": distinct,
                     "skew": "zipf-1"},
        "python": platform.python_version(),
        "cross_check": check,
        "results": {},
    }
    top_registry = None
    for load in loads:
        entry = {}
        for config_name in CONFIGS:
            registry = MetricsRegistry()
            elapsed, server, _tickets = serve_once(
                graph, config_name, workload, in_flight=load,
                registry=registry)
            report = server.report()
            entry[config_name] = {
                "seconds": elapsed,
                "qps": total / elapsed,
                "classes": report.classes,
                "admission": report.admission,
                "caches": report.caches,
                "fusion": report.fusion,
            }
            if load == loads[-1] and config_name == "fusion_caching":
                top_registry = registry
            print(f"  load {load:3d}  {config_name:15s} "
                  f"{elapsed:7.2f}s  {total / elapsed:8.1f} qps")
        base = entry["no_opt"]["qps"]
        entry["speedup_fusion"] = entry["fusion"]["qps"] / base
        entry["speedup_fusion_caching"] = (
            entry["fusion_caching"]["qps"] / base)
        bench["results"][f"load_{load}"] = entry
        print(f"  load {load:3d}  speedup: fusion "
              f"{entry['speedup_fusion']:.2f}x, +caching "
              f"{entry['speedup_fusion_caching']:.2f}x")

    bench["overload"] = overload_demo(graph, workload)
    top = bench["results"][f"load_{loads[-1]}"]
    bench["top_load"] = {
        "load": loads[-1],
        "speedup_fusion_caching": top["speedup_fusion_caching"],
    }
    return bench, top_registry


def check_regression(bench: dict, baseline_path: pathlib.Path) -> None:
    """Warn (never fail) when the top-load speedup or the mixed r/w
    trunk-epoch retention regressed >2x against the committed baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return
    baseline = json.loads(baseline_path.read_text())
    committed = baseline.get("top_load", {}).get("speedup_fusion_caching")
    measured = bench["top_load"]["speedup_fusion_caching"]
    if committed and measured * 2.0 < committed:
        print(f"::warning::perf-smoke: serve top-load speedup "
              f"{measured:.2f}x is more than 2x below the committed "
              f"baseline {committed:.2f}x")
    # The fusion+caching row of the new sweep: trunk-epoch retention at
    # the highest measured write rate (the smallest chunk).
    def top_rate_retention(doc):
        cells = doc.get("mixed_rw", {}).get("chunks", {})
        if not cells:
            return None
        top = min(cells, key=lambda k: int(k.rsplit("_", 1)[1]))
        return cells[top].get("retained_trunk")
    committed_rw = top_rate_retention(baseline)
    measured_rw = top_rate_retention(bench)
    if committed_rw and measured_rw and measured_rw * 2.0 < committed_rw:
        print(f"::warning::perf-smoke: mixed r/w trunk-epoch retention "
              f"{measured_rw:.2f}x is more than 2x below the committed "
              f"baseline {committed_rw:.2f}x")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run; compares against the "
                             "committed baseline and warns on regression")
    parser.add_argument("--scale", type=int, default=None,
                        help="R-MAT scale (2^scale nodes; default 14, "
                             "smoke 10)")
    parser.add_argument("--queries", type=int, default=None,
                        help="total submissions (default 2000, smoke 300)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output JSON path (default BENCH_serve.json; "
                             "smoke writes BENCH_serve_smoke.json)")
    args = parser.parse_args()

    scale = args.scale or (10 if args.smoke else 14)
    total = args.queries or (300 if args.smoke else 2000)
    distinct = max(8, total // 12)
    loads = [1, 8] if args.smoke else [1, 8, 32]
    bench, top_registry = run_bench(scale=scale, avg_degree=8,
                                    total=total, distinct=distinct,
                                    loads=loads, smoke=args.smoke)

    rw_scale = 9 if args.smoke else 12
    rw_total = 120 if args.smoke else 480
    rw_chunks = [4, 1] if args.smoke else [8, 4, 2, 1]
    # The acceptance bar is calibrated at full scale; smoke cells are too
    # small for a miss to mean anything, so only full runs warn on it.
    bench["mixed_rw"] = run_rw_bench(
        scale=rw_scale, total=rw_total, distinct=12, chunks=rw_chunks,
        warn_acceptance=not args.smoke)

    out = args.out or (RESULTS_DIR / "BENCH_serve_smoke.json"
                       if args.smoke else BENCH_PATH)
    if args.smoke:
        check_regression(bench, out)
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {out}")
    if top_registry is not None:
        metrics_path = out.parent / (out.stem + ".metrics.json")
        JsonFileSink(metrics_path).export(top_registry.snapshot())
        print(f"wrote {metrics_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
