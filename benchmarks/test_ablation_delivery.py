"""Ablation: message-delivery disciplines (Section 5.4's two strawmen).

Replays one superstep's message deliveries on a real plan under the two
naive disciplines the paper rejects and the action-script discipline it
adopts, measuring peak receiver buffer occupancy and wire deliveries:

* buffer-all: "the total amount of messages is too big to be memory
  resident" — peak buffer equals the entire remote working set;
* on-demand: "a single message needed to be delivered multiple times,
  which is unacceptable" — hub messages are re-fetched per partition;
* scripted: small peak buffer AND near-minimal deliveries.
"""

from repro.compute import BipartiteScheduler
from repro.compute.action_replay import replay_all
from repro.generators import powerlaw_edges

from _harness import build_topology, format_table, report


def run_ablation():
    edges = powerlaw_edges(8_000, gamma=2.16, avg_degree=13, seed=6)
    topology = build_topology(edges, machines=8, directed=True,
                              trunk_bits=7, include_inlinks=True)
    scheduler = BipartiteScheduler(topology, hub_fraction=0.01,
                                   num_partitions=8)
    plan = scheduler.plan_for_machine(0)
    return replay_all(plan, topology)


def test_ablation_delivery_disciplines(benchmark):
    reports = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        (r.discipline, r.peak_buffer_slots, r.total_deliveries,
         r.duplicate_deliveries)
        for r in reports.values()
    ]
    report("ablation_delivery", format_table(
        ("discipline", "peak buffer", "deliveries", "duplicates"), rows,
    ))
    buffer_all = reports["naive-buffer-all"]
    on_demand = reports["naive-on-demand"]
    scripted = reports["scripted"]
    # Scripted: much smaller peak buffer than buffering everything...
    assert scripted.peak_buffer_slots < 0.8 * buffer_all.peak_buffer_slots
    # ...and far fewer repeated deliveries than fetching on demand.
    assert scripted.duplicate_deliveries < on_demand.duplicate_deliveries
    # On-demand pays for hubs over and over.
    assert on_demand.total_deliveries > buffer_all.total_deliveries
