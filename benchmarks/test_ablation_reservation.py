"""Ablation: short-lived memory reservation (Section 6.1).

"For certain applications (e.g., graph generation, graph streams), the
size of key-value pairs keeps increasing ... we devised a short-lived
memory reservation mechanism to support frequent key-value pair
reallocation."  This ablation grows node cells edge by edge (the graph-
stream workload) with the reservation factor on and off and compares
relocations, defrag passes and committed-memory overhead.
"""

import random

from repro.config import MemoryParams
from repro.memcloud.trunk import MemoryTrunk

from _harness import format_table, report

NODES = 200
EDGES_PER_NODE = 40


def grow_workload(reservation_factor: float):
    params = MemoryParams(
        trunk_size=8 * 1024 * 1024,
        reservation_factor=reservation_factor,
        # Defragment lazily: per Section 6.1 a reservation lives between
        # two defrag passes, so an over-eager daemon would keep
        # cancelling reservations before they pay off.
        defrag_trigger_ratio=0.6,
    )
    trunk = MemoryTrunk(0, params)
    rng = random.Random(3)
    adjacency = {uid: b"" for uid in range(NODES)}
    for uid in adjacency:
        trunk.put(uid, b"")
    # Stream edges: each append grows one cell by 8 bytes.
    for _ in range(NODES * EDGES_PER_NODE):
        uid = rng.randrange(NODES)
        adjacency[uid] += rng.getrandbits(64).to_bytes(8, "little")
        trunk.put(uid, adjacency[uid])
    # Everything must still read back correctly.
    for uid, expected in adjacency.items():
        assert trunk.get(uid) == expected
    return trunk.stats()


def run_ablation():
    rows = []
    stats = {}
    for factor, label in ((1.0, "no reservation"),
                          (1.5, "reserve 1.5x"),
                          (2.0, "reserve 2.0x")):
        trunk_stats = grow_workload(factor)
        stats[factor] = trunk_stats
        rows.append((
            label, trunk_stats.relocations, trunk_stats.defrag_passes,
            f"{trunk_stats.committed_bytes / 1024:.0f}",
            f"{trunk_stats.utilization * 100:.0f}%",
        ))
    return rows, stats


def test_ablation_short_lived_reservation(benchmark):
    rows, stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_reservation", format_table(
        ("configuration", "relocations", "defrag passes",
         "committed KB", "utilization"),
        rows,
    ))
    # Reservation slashes relocation churn on the growth workload...
    assert stats[2.0].relocations < 0.6 * stats[1.0].relocations
    # ...and with it the defragmentation work.
    assert stats[2.0].defrag_passes <= stats[1.0].defrag_passes
    # Utilization stays sane because defrag reclaims unused reservations.
    assert stats[2.0].utilization > 0.3
