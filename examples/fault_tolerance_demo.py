"""Fault tolerance walkthrough (Section 6.2).

Drives the whole recovery stack on a live cluster:

1. load data, back trunks up to TFS;
2. keep writing (the post-backup writes exist only in DRAM + the
   RAMCloud-style buffered log);
3. crash a slave — its trunks' memory is genuinely wiped;
4. let the heartbeat monitor detect the silence, elect/confirm the
   leader, reload trunks from TFS, replay the buffered log, persist and
   broadcast the new addressing table;
5. verify every cell, then grow the cluster with a new machine;
6. re-run the whole story as scripted chaos: a seeded ``FaultPlan``
   crashes a machine and corrupts TFS replicas, ``run_chaos`` drives
   detection + recovery, and zero writes are lost.

Run:  python examples/fault_tolerance_demo.py
"""

import random

from repro import ClusterConfig, FaultPlan, TrinityCluster


def main() -> None:
    cluster = TrinityCluster(ClusterConfig(machines=4, trunk_bits=6))
    client = cluster.new_client()
    rng = random.Random(0)

    print("phase 1: loading 1000 cells and backing up to TFS")
    reference = {}
    for _ in range(1000):
        uid = rng.getrandbits(60)
        value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(8, 64)))
        client.put_cell(uid, value)
        reference[uid] = value
    written = cluster.backup_to_tfs()
    print(f"  backed up {written / 1e3:.0f} KB of trunk images "
          f"(replication x{cluster.config.replication})")

    print("phase 2: 200 more writes AFTER the backup "
          "(covered only by the buffered log)")
    for index in range(200):
        uid = rng.getrandbits(60)
        value = f"post-backup-{index}".encode()
        client.put_cell(uid, value)
        reference[uid] = value

    victim = 2
    at_risk = sum(1 for uid in reference
                  if cluster.cloud.machine_of(uid) == victim)
    print(f"\nphase 3: crashing machine {victim} "
          f"({at_risk} cells were in its DRAM)")
    cluster.fail_machine(victim)

    print("phase 4: heartbeat detection + recovery")
    failed = cluster.detect_and_recover()
    print(f"  heartbeats flagged machines {failed} after "
          f"{cluster.heartbeat.time} periods")
    print(f"  leader is machine {cluster.leader_id}; addressing table "
          f"now at version {cluster.cloud.addressing.version}")
    print(f"  buffered-log records replayed: "
          f"{cluster.recovery.last_replayed}")

    print("phase 5: verifying all", len(reference), "cells...")
    missing = sum(1 for uid, value in reference.items()
                  if client.get_cell(uid) != value)
    print(f"  {'OK — zero loss' if missing == 0 else f'{missing} LOST'}")
    assert missing == 0

    print("\nphase 6: scaling out — joining a new machine")
    new_id = cluster.add_machine()
    trunks = len(cluster.cloud.addressing.trunks_of(new_id))
    print(f"  machine {new_id} joined and took over {trunks} trunks")
    missing = sum(1 for uid, value in reference.items()
                  if client.get_cell(uid) != value)
    assert missing == 0
    print("  all cells still served correctly — elastic scale-out works")

    print("\nphase 7: scripted chaos — a seeded FaultPlan replays the "
          "same story deterministically")
    plan = FaultPlan(seed=11, crashes=((3, 1),), drop_rate=0.1,
                     corrupt_rate=0.3)
    chaos = TrinityCluster(ClusterConfig(machines=4, trunk_bits=6),
                           faults=plan)
    chaos_client = chaos.new_client()
    for uid in range(300):
        value = f"chaos-{uid}".encode()
        chaos_client.put_cell(uid, value)
    chaos.backup_to_tfs()
    recovered = chaos.run_chaos(max_ticks=10)
    print(f"  plan crashed machines {recovered}; heartbeats detected and "
          f"recovered them automatically")
    lost = sum(1 for uid in range(300)
               if chaos_client.get_cell(uid) != f"chaos-{uid}".encode())
    assert lost == 0
    obs = chaos.obs
    print(f"  faults injected: crash={obs.counter('faults.crash.total').value:.0f} "
          f"drop={obs.counter('faults.drop.total').value:.0f} "
          f"corrupt={obs.counter('faults.corrupt.total').value:.0f}; "
          f"rpc retries={obs.counter('rpc.retry.total').value:.0f}")
    print("  zero loss under scripted chaos — and re-running this script "
          "injects the exact same faults")


if __name__ == "__main__":
    main()
