"""Fault tolerance walkthrough (Section 6.2).

Drives the whole recovery stack on a live cluster:

1. load data, back trunks up to TFS;
2. keep writing (the post-backup writes exist only in DRAM + the
   RAMCloud-style buffered log);
3. crash a slave — its trunks' memory is genuinely wiped;
4. let the heartbeat monitor detect the silence, elect/confirm the
   leader, reload trunks from TFS, replay the buffered log, persist and
   broadcast the new addressing table;
5. verify every cell, then grow the cluster with a new machine.

Run:  python examples/fault_tolerance_demo.py
"""

import random

from repro import ClusterConfig, TrinityCluster


def main() -> None:
    cluster = TrinityCluster(ClusterConfig(machines=4, trunk_bits=6))
    client = cluster.new_client()
    rng = random.Random(0)

    print("phase 1: loading 1000 cells and backing up to TFS")
    reference = {}
    for _ in range(1000):
        uid = rng.getrandbits(60)
        value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(8, 64)))
        client.put_cell(uid, value)
        reference[uid] = value
    written = cluster.backup_to_tfs()
    print(f"  backed up {written / 1e3:.0f} KB of trunk images "
          f"(replication x{cluster.config.replication})")

    print("phase 2: 200 more writes AFTER the backup "
          "(covered only by the buffered log)")
    for index in range(200):
        uid = rng.getrandbits(60)
        value = f"post-backup-{index}".encode()
        client.put_cell(uid, value)
        reference[uid] = value

    victim = 2
    at_risk = sum(1 for uid in reference
                  if cluster.cloud.machine_of(uid) == victim)
    print(f"\nphase 3: crashing machine {victim} "
          f"({at_risk} cells were in its DRAM)")
    cluster.fail_machine(victim)

    print("phase 4: heartbeat detection + recovery")
    failed = cluster.detect_and_recover()
    print(f"  heartbeats flagged machines {failed} after "
          f"{cluster.heartbeat.time} periods")
    print(f"  leader is machine {cluster.leader_id}; addressing table "
          f"now at version {cluster.cloud.addressing.version}")
    print(f"  buffered-log records replayed: "
          f"{cluster.recovery.last_replayed}")

    print("phase 5: verifying all", len(reference), "cells...")
    missing = sum(1 for uid, value in reference.items()
                  if client.get_cell(uid) != value)
    print(f"  {'OK — zero loss' if missing == 0 else f'{missing} LOST'}")
    assert missing == 0

    print("\nphase 6: scaling out — joining a new machine")
    new_id = cluster.add_machine()
    trunks = len(cluster.cloud.addressing.trunks_of(new_id))
    print(f"  machine {new_id} joined and took over {trunks} trunks")
    missing = sum(1 for uid, value in reference.items()
                  if client.get_cell(uid) != value)
    assert missing == 0
    print("  all cells still served correctly — elastic scale-out works")


if __name__ == "__main__":
    main()
