"""Concurrent query serving: fusion, caching, admission control.

Trinity's memory cloud serves online queries "in real time" while the
graph keeps changing underneath (Section 1).  This demo stands up a
:class:`~repro.serve.QueryServer` over a named friendship graph and
walks the serving story end to end:

1. a burst of mixed queries — people search, TQL reach, landmark BFS,
   subgraph match — served concurrently: every fusion window issues one
   bulk read per op shape for *all* in-flight frontiers;
2. the same burst again: the epoch-stamped result cache answers
   repeats without touching the cloud;
3. a mutation through the barrier: every cached entry goes stale at
   once, and the re-served queries see the new edge (cross_check=True
   shadow-replays each completion through the sequential library path,
   so a stale answer would raise);
4. bounded admission: a burst beyond the queue limit is rejected
   immediately instead of melting latency for everyone else;
5. the SLO report: p50/p99 wall latency per query class.

Run:  python examples/serve_demo.py
"""

import sys

sys.path.insert(0, "src")

from repro.config import ClusterConfig                      # noqa: E402
from repro.generators import rmat_edges                     # noqa: E402
from repro.generators.names import sample_names             # noqa: E402
from repro.graph import GraphBuilder                        # noqa: E402
from repro.graph.model import social_graph_schema           # noqa: E402
from repro.memcloud import MemoryCloud                      # noqa: E402
from repro.obs import MetricsRegistry                       # noqa: E402
from repro.serve import (                                   # noqa: E402
    LandmarkBfsQuery,
    PeopleSearchQuery,
    QueryServer,
    ServeConfig,
    TqlServeQuery,
)


def build_graph(scale=10, machines=4):
    registry = MetricsRegistry()
    cloud = MemoryCloud(ClusterConfig(machines=machines, trunk_bits=4),
                        registry)
    n = 1 << scale
    edges = rmat_edges(scale, avg_degree=8, seed=42)
    builder = GraphBuilder(cloud, social_graph_schema())
    for node_id, name in enumerate(sample_names(n, seed=43)):
        builder.add_node(node_id, Name=name)
    builder.add_edges(edges.tolist())
    return builder.finalize(), len(edges)


def burst(server):
    tickets = []
    for start in (0, 3, 17, 101, 255, 900):
        tickets.append(server.submit(PeopleSearchQuery(start, "David",
                                                       hops=3)))
    tickets.append(server.submit(TqlServeQuery(
        "MATCH (a = 0) -[Friends*1..3]-> (b {Name: 'David'}) RETURN b")))
    tickets.append(server.submit(LandmarkBfsQuery(7, max_hops=4)))
    server.run()
    return tickets


def main() -> None:
    graph, edge_count = build_graph()
    print(f"friendship graph: {graph.num_nodes} nodes, {edge_count} edges")

    server = QueryServer(graph, ServeConfig(cross_check=True,
                                            hub_degree_threshold=16))

    print("\n-- burst 1: cold (fused bulk reads) --")
    first = burst(server)
    matches = first[0].result["matches"]
    print(f"people_search(0) found {len(matches)} Davids within 3 hops; "
          f"{server.report().fusion['batch_rounds']} fused bulk rounds "
          f"for {len(first)} queries")

    print("\n-- burst 2: warm (result cache) --")
    second = burst(server)
    print(f"{sum(t.cached for t in second)}/{len(second)} completions "
          f"served from the result cache")

    print("\n-- mutation through the barrier --")
    new_friend = max(graph.node_ids) + 1
    server.mutate(lambda g: g.add_edge(0, new_friend))
    third = burst(server)
    print(f"after add_edge(0, {new_friend}): "
          f"{sum(t.cached for t in third)} cached completions "
          f"(stale entries invalidated by the epoch bump); "
          f"people_search(0) now visits "
          f"{third[0].result['visited']} nodes "
          f"(was {first[0].result['visited']})")

    print("\n-- bounded admission --")
    tight = QueryServer(graph, ServeConfig(queue_limit=4),
                        registry=MetricsRegistry())
    flood = [tight.submit(PeopleSearchQuery(s, "David")) for s in range(9)]
    tight.run()
    rejected = sum(t.status == "rejected" for t in flood)
    print(f"9 submitted against queue_limit=4: {rejected} rejected "
          f"immediately, {9 - rejected} served")

    print("\n-- SLO report --")
    print(server.report().render())


if __name__ == "__main__":
    main()
