"""TQL: querying a Trinity graph with the traversal query language.

The paper notes that a query language (TQL) was built on top of the TSL
data layer (Section 4.2); this example runs pattern queries — including
the David problem as a one-liner — against a social graph, plus a
mini-transaction that atomically "introduces" two people (Section 4.4).

Run:  python examples/tql_queries.py
"""

from repro import ClusterConfig, MemoryParams
from repro.generators.social import build_social_graph
from repro.memcloud import MemoryCloud
from repro.memcloud.minitransaction import MiniTransaction
from repro.tql import execute_tql

QUERIES = [
    ("friends of user 0",
     "MATCH (a = 0) -[Friends]-> (b) RETURN b, b.Name"),
    ("the David problem, 2 hops, as one query",
     "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) "
     "WHERE c.Name = 'David' AND c != a RETURN c LIMIT 10"),
    ("triangles through user 0",
     "MATCH (a = 0) -[Friends]-> (b) -[Friends]-> (c) -[Friends]-> (a) "
     "WHERE b < c RETURN b, c LIMIT 10"),
    ("any two Davids who are direct friends",
     "MATCH (a {Name: 'David'}) -[Friends]-> (b {Name: 'David'}) "
     "WHERE a < b RETURN a, b LIMIT 5"),
]


def main() -> None:
    cloud = MemoryCloud(ClusterConfig(
        machines=4, trunk_bits=7,
        memory=MemoryParams(trunk_size=16 * 1024 * 1024),
    ))
    graph = build_social_graph(cloud, 3_000, avg_degree=12, seed=5)
    print(f"social graph: {graph.num_nodes} people, "
          f"{graph.num_edges()} friendships\n")

    for title, text in QUERIES:
        result = execute_tql(graph, text)
        print(f"{title}:")
        print(f"  {text}")
        print(f"  -> {len(result.rows)} rows in simulated "
              f"{result.elapsed * 1e3:.2f} ms "
              f"({result.cells_touched} cells touched)")
        for row in result.rows[:4]:
            print(f"     {row}")
        print()

    # Section 4.4: atomic multi-cell update via a mini-transaction —
    # introduce users 0 and 1 as friends only if neither blob changed
    # under us (compare-and-swap across two cells).
    print("mini-transaction: atomically befriending users 100 and 200")
    blob_a = cloud.get(100)
    blob_b = cloud.get(200)
    with graph.use_node(100) as cell:
        planned_a = list(cell.Friends) + [200]
    with graph.use_node(200) as cell:
        planned_b = list(cell.Friends) + [100]
    node_type = graph.graph_schema.node_type
    new_a = node_type.encode({"Name": graph.attribute(100, "Name"),
                              "Friends": planned_a})
    new_b = node_type.encode({"Name": graph.attribute(200, "Name"),
                              "Friends": planned_b})
    (MiniTransaction(cloud)
     .compare(100, blob_a).compare(200, blob_b)
     .write(100, new_a).write(200, new_b)
     .commit())
    print(f"  100 <-> 200 now mutual friends: "
          f"{200 in graph.outlinks(100) and 100 in graph.outlinks(200)}")


if __name__ == "__main__":
    main()
