"""RDF on Trinity: a LUBM-like knowledge graph with SPARQL queries.

The paper's Section 7 runs SPARQL on a LUBM dataset through the
Trinity-based RDF engine (Zeng et al., VLDB'13): entities are cells whose
blobs hold predicate-grouped adjacency in both directions.  This example
loads a university knowledge graph and runs the four benchmark queries
plus a custom one.

Run:  python examples/knowledge_graph_rdf.py
"""

from repro import ClusterConfig, MemoryParams
from repro.memcloud import MemoryCloud
from repro.rdf import LUBM_QUERIES, RdfStore, execute_sparql, generate_lubm


def main() -> None:
    cloud = MemoryCloud(ClusterConfig(
        machines=8, trunk_bits=8,
        memory=MemoryParams(trunk_size=16 * 1024 * 1024),
    ))
    store = RdfStore(cloud)
    generate_lubm(store, universities=3, departments_per_university=5,
                  students_per_department=80, seed=1)
    store.finalize()
    print(f"knowledge graph: {store.triple_count} triples over "
          f"{store.resource_count} resources on 8 machines")

    for name, text in LUBM_QUERIES.items():
        result = execute_sparql(store, text)
        print(f"\n{name}: {text}")
        print(f"  {len(result.rows)} rows in simulated "
              f"{result.elapsed * 1e3:.2f} ms "
              f"({result.messages} cross-machine bindings)")
        for row in result.rows[:3]:
            print(f"    {row}")
        if len(result.rows) > 3:
            print(f"    ... and {len(result.rows) - 3} more")

    # A custom query: which universities granted degrees to professors
    # who teach Course0 of Dept0 of Univ0?
    custom = ("SELECT ?u WHERE { "
              "?p teacherOf <Course0_of_Dept0_of_Univ0> . "
              "?p undergraduateDegreeFrom ?u }")
    result = execute_sparql(store, custom)
    print(f"\ncustom query: {custom}")
    print(f"  -> {sorted(set(r[0] for r in result.rows))}")


if __name__ == "__main__":
    main()
