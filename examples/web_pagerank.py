"""Offline analytics: PageRank over an R-MAT web graph (Section 5.3).

Shows both execution paths over the same deployment:

* the vertex-centric BSP engine (Pregel-style programs on Trinity's
  restrictive model, with hub-vertex message buffering), and
* the vectorised runner the benchmarks use,

then compares against the Giraph cost simulator to illustrate the
Figure 12(d) gap.

Run:  python examples/web_pagerank.py
"""

import numpy as np

from repro import ClusterConfig, MemoryParams
from repro.algorithms import PageRankProgram, pagerank
from repro.baselines.giraph import giraph_from_topology
from repro.compute import BspEngine
from repro.generators import rmat_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud

SCALE = 12           # 4096 pages
MACHINES = 8
ITERATIONS = 10


def main() -> None:
    edges = rmat_edges(scale=SCALE, avg_degree=13, seed=7)
    print(f"R-MAT web graph: 2^{SCALE} pages, {len(edges)} links")
    cloud = MemoryCloud(ClusterConfig(
        machines=MACHINES, trunk_bits=8,
        memory=MemoryParams(trunk_size=16 * 1024 * 1024),
    ))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges.tolist())
    graph = builder.finalize()
    topology = CsrTopology(graph)

    # --- vertex-centric engine (the programming model) -------------------
    engine = BspEngine(topology, hub_buffering=True)
    result = engine.run(PageRankProgram(iterations=ITERATIONS),
                        max_supersteps=ITERATIONS + 2)
    engine_ranks = np.array(result.values)
    print(f"\nBSP engine: {result.superstep_count} supersteps, "
          f"simulated {result.elapsed * 1e3:.1f} ms total")
    first = result.supersteps[0]
    print(f"  superstep 0: {first.messages} messages, "
          f"{first.remote_transfers} wire transfers after hub buffering")

    # --- vectorised runner (the benchmark path) ---------------------------
    run = pagerank(topology, iterations=ITERATIONS)
    drift = np.abs(run.ranks - engine_ranks).max()
    print(f"vectorised runner: {run.time_per_iteration * 1e3:.2f} ms "
          f"per simulated iteration; max drift vs engine {drift:.2e}")

    top = np.argsort(-run.ranks)[:5]
    print("\ntop pages by rank:")
    for dense in top:
        print(f"  page {int(topology.node_ids[dense]):6d}  "
              f"rank {run.ranks[dense]:.5f}")

    # --- the Figure 12(d) contrast ----------------------------------------
    giraph = giraph_from_topology(topology).run_pagerank(
        supersteps=ITERATIONS
    )
    print(f"\nGiraph cost model on the same graph/machines: "
          f"{giraph.time_per_superstep:.1f} s per superstep "
          f"(Hadoop scheduling dominates at this scale) vs Trinity's "
          f"{run.time_per_iteration * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
