"""Offline analytics: PageRank over an R-MAT web graph (Section 5.3).

Shows the execution paths over the same deployment:

* the vertex-centric BSP engine — `PageRankProgram` declares the ``sum``
  combiner and a ``compute_batch`` kernel, so the engine runs it on the
  vectorized fast path (dense combined-inbox arrays, one numpy kernel
  per machine slice); passing ``vectorize=False`` forces the per-vertex
  reference path, which this example times for contrast (identical
  values and identical simulated accounting, very different wall clock);
* the vectorised runner the benchmarks use,

then compares against the Giraph cost simulator to illustrate the
Figure 12(d) gap.

Run:  python examples/web_pagerank.py
"""

import time

import numpy as np

from repro import ClusterConfig, MemoryParams
from repro.algorithms import PageRankProgram, pagerank
from repro.baselines.giraph import giraph_from_topology
from repro.compute import BspEngine
from repro.generators import rmat_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud

SCALE = 12           # 4096 pages
MACHINES = 8
ITERATIONS = 10


def main() -> None:
    edges = rmat_edges(scale=SCALE, avg_degree=13, seed=7)
    print(f"R-MAT web graph: 2^{SCALE} pages, {len(edges)} links")
    cloud = MemoryCloud(ClusterConfig(
        machines=MACHINES, trunk_bits=8,
        memory=MemoryParams(trunk_size=16 * 1024 * 1024),
    ))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=True))
    builder.add_edges(edges.tolist())
    graph = builder.finalize()
    topology = CsrTopology(graph)

    # --- vertex-centric engine (the programming model) -------------------
    # PageRankProgram declares combiner="sum" + a compute_batch kernel,
    # so this runs on the vectorized fast path by default.
    engine = BspEngine(topology, hub_buffering=True)
    start = time.perf_counter()
    result = engine.run(PageRankProgram(iterations=ITERATIONS),
                        max_supersteps=ITERATIONS + 2)
    fast_wall = time.perf_counter() - start
    engine_ranks = np.array(result.values)
    print(f"\nBSP engine (vectorized): {result.superstep_count} "
          f"supersteps, simulated {result.elapsed * 1e3:.1f} ms total, "
          f"wall {fast_wall * 1e3:.0f} ms")
    first = result.supersteps[0]
    print(f"  superstep 0: {first.messages} messages, "
          f"{first.remote_transfers} wire transfers after hub buffering")

    # The per-vertex reference path: same values bit-for-bit, same
    # simulated accounting, interpreter-bound wall clock.
    reference_engine = BspEngine(topology, hub_buffering=True,
                                 vectorize=False)
    start = time.perf_counter()
    reference = reference_engine.run(PageRankProgram(iterations=ITERATIONS),
                                     max_supersteps=ITERATIONS + 2)
    ref_wall = time.perf_counter() - start
    identical = np.array_equal(np.array(reference.values), engine_ranks)
    print(f"  per-vertex reference path: wall {ref_wall * 1e3:.0f} ms "
          f"({ref_wall / fast_wall:.1f}x slower), values bit-identical: "
          f"{identical}")

    # --- vectorised runner (the benchmark path) ---------------------------
    run = pagerank(topology, iterations=ITERATIONS)
    drift = np.abs(run.ranks - engine_ranks).max()
    print(f"vectorised runner: {run.time_per_iteration * 1e3:.2f} ms "
          f"per simulated iteration; max drift vs engine {drift:.2e}")

    top = np.argsort(-run.ranks)[:5]
    print("\ntop pages by rank:")
    for dense in top:
        print(f"  page {int(topology.node_ids[dense]):6d}  "
              f"rank {run.ranks[dense]:.5f}")

    # --- the Figure 12(d) contrast ----------------------------------------
    giraph = giraph_from_topology(topology).run_pagerank(
        supersteps=ITERATIONS
    )
    print(f"\nGiraph cost model on the same graph/machines: "
          f"{giraph.time_per_superstep:.1f} s per superstep "
          f"(Hadoop scheduling dominates at this scale) vs Trinity's "
          f"{run.time_per_iteration * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
