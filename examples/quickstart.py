"""Quickstart: the paper's movie/actor graph, end to end.

Reproduces the Figure 4 + Figure 6 workflow: declare cell schemas in TSL,
store cells in a Trinity cluster's memory cloud, and manipulate them
through generated-style accessors — including an in-place field write and
a structural list append.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, TrinityCluster, compile_tsl

MOVIE_TSL = """
[CellType: NodeCell]
cell struct Movie {
    string Name;
    int Year;
    [EdgeType: SimpleEdge, ReferencedCell: Actor]
    List<long> Actors;
}
[CellType: NodeCell]
cell struct Actor {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Movie]
    List<long> Movies;
}
"""

HEAT, PACINO, DENIRO = 1, 100, 101


def main() -> None:
    # A Trinity deployment: 4 slaves, a memory cloud of 2**8 trunks,
    # TFS persistence and fault-tolerance machinery all wired up.
    cluster = TrinityCluster(ClusterConfig(machines=4))
    schema = compile_tsl(MOVIE_TSL)

    # --- store cells (SaveMyCell-style generated API) --------------------
    schema.save_cell(cluster.cloud, "Movie", HEAT,
                     {"Name": "Heat", "Year": 1995, "Actors": [PACINO]})
    schema.save_cell(cluster.cloud, "Actor", PACINO,
                     {"Name": "Al Pacino", "Movies": [HEAT]})
    schema.save_cell(cluster.cloud, "Actor", DENIRO,
                     {"Name": "Robert De Niro", "Movies": []})

    # --- manipulate blobs through a cell accessor (Figure 6) -------------
    with schema.use_cell(cluster.cloud, "Movie", HEAT) as movie:
        print(f"{movie.Name} ({movie.Year}) starring "
              f"{len(movie.Actors)} actor(s)")
        movie.Year = 1996            # fixed-size field: in-place write
        movie.Actors.append(DENIRO)  # list append: blob rebuilt on exit
    with schema.use_cell(cluster.cloud, "Actor", DENIRO) as actor:
        actor.Movies.append(HEAT)

    # --- traverse the graph through cell reads ---------------------------
    movie = schema.load_cell(cluster.cloud, "Movie", HEAT)
    cast = [schema.load_cell(cluster.cloud, "Actor", actor_id)["Name"]
            for actor_id in movie["Actors"]]
    print(f"{movie['Name']} ({movie['Year']}) cast: {', '.join(cast)}")

    # --- the cells live on specific machines of the cloud ----------------
    for cell_id, label in ((HEAT, "Heat"), (PACINO, "Pacino"),
                           (DENIRO, "De Niro")):
        machine = cluster.cloud.machine_of(cell_id)
        print(f"  cell {label!r} lives on machine {machine}")

    # --- and survive a machine failure (Section 6.2) ---------------------
    cluster.backup_to_tfs()
    victim = cluster.cloud.machine_of(HEAT)
    cluster.fail_machine(victim)
    cluster.report_failure(victim)
    recovered = schema.load_cell(cluster.cloud, "Movie", HEAT)
    print(f"after failing machine {victim}: {recovered['Name']} "
          f"({recovered['Year']}) still has {len(recovered['Actors'])} "
          "actors — recovered from TFS")


if __name__ == "__main__":
    main()
