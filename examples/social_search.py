"""The paper's "David problem" (Section 5.1): people search by exploration.

Builds a Facebook-like power-law friendship graph with Zipf-weighted first
names in a Trinity memory cloud, then answers "find anyone named David
within 3 hops of this user" by live graph exploration — no index — while
the simulated cluster accounts for every hop's parallel expansion and
packed cross-machine messages.

Run:  python examples/social_search.py
"""

from repro import ClusterConfig, MemoryParams
from repro.algorithms import people_search
from repro.generators.social import build_social_graph
from repro.memcloud import MemoryCloud

NODES = 20_000
AVG_DEGREE = 13      # the paper quotes Facebook's average degree, 130/10
MACHINES = 8


def main() -> None:
    print(f"building a {NODES}-node social graph "
          f"(avg degree {AVG_DEGREE}) over {MACHINES} machines...")
    cloud = MemoryCloud(ClusterConfig(
        machines=MACHINES, trunk_bits=8,
        memory=MemoryParams(trunk_size=32 * 1024 * 1024),
    ))
    graph = build_social_graph(cloud, NODES, avg_degree=AVG_DEGREE, seed=42)
    print(f"loaded: {graph.num_nodes} people, {graph.num_edges()} "
          f"friendships, {cloud.total_live_bytes() / 1e6:.1f} MB of cells")

    start = 0
    print(f"\nuser {start} is named {graph.attribute(start, 'Name')!r}; "
          "searching their neighborhood for 'David'...")
    for hops in (1, 2, 3):
        result = people_search(graph, start, "David", hops=hops)
        print(f"  within {hops} hop(s): {len(result.matches):4d} Davids | "
              f"{result.visited:6d} people explored | "
              f"{result.messages:6d} messages | "
              f"simulated response {result.elapsed * 1e3:7.2f} ms")

    result = people_search(graph, start, "David", hops=3)
    shown = ", ".join(str(m) for m in result.matches[:8])
    print(f"\nfirst matches: {shown}{' ...' if len(result.matches) > 8 else ''}")
    print("the paper's claim: a 3-hop search like this answers in "
          "~100 ms on a web-scale graph — because exploration cost "
          "depends on the neighborhood, not the graph size.")


if __name__ == "__main__":
    main()
