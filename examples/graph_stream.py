"""Graph streams: continuous edge arrival with live queries (Section 6.1).

"For certain applications (e.g., graph generation, graph streams, etc.),
the size of key-value pairs keeps increasing (as new edges are added to
the node cells)."  This example streams a growing friendship graph into
the memory cloud edge by edge — exercising the short-lived reservation
and defragmentation machinery — while answering TQL queries between
batches, and prints the allocator's accounting as it goes.

Run:  python examples/graph_stream.py
"""

import random

from repro import ClusterConfig, MemoryParams
from repro.graph import GraphBuilder, social_graph_schema
from repro.generators import sample_names
from repro.memcloud import MemoryCloud
from repro.tql import execute_tql

PEOPLE = 600
BATCHES = 5
EDGES_PER_BATCH = 1200


def trunk_accounting(cloud) -> str:
    stats = [t.stats() for t in cloud.trunks.values()]
    relocations = sum(s.relocations for s in stats)
    defrags = sum(s.defrag_passes for s in stats)
    committed = sum(s.committed_bytes for s in stats)
    live = sum(s.live_bytes for s in stats)
    return (f"live {live / 1e3:7.0f} KB | committed {committed / 1e3:7.0f} "
            f"KB | {relocations:5d} relocations | {defrags:3d} defrags")


def main() -> None:
    cloud = MemoryCloud(ClusterConfig(
        machines=4, trunk_bits=6,
        memory=MemoryParams(trunk_size=4 * 1024 * 1024,
                            reservation_factor=2.0),
    ))
    builder = GraphBuilder(cloud, social_graph_schema())
    names = sample_names(PEOPLE, seed=4)
    for node_id, name in enumerate(names):
        builder.add_node(node_id, Name=name)
    graph = builder.finalize()
    print(f"seeded {PEOPLE} people (no friendships yet)")
    print(f"  {trunk_accounting(cloud)}\n")

    rng = random.Random(9)
    for batch in range(1, BATCHES + 1):
        for _ in range(EDGES_PER_BATCH):
            u = rng.randrange(PEOPLE)
            v = rng.randrange(PEOPLE)
            if u != v:
                graph.add_edge(u, v)   # grows two cells in place
        result = execute_tql(
            graph,
            "MATCH (a = 0) -[Friends*1..2]-> (b {Name: 'David'}) "
            "RETURN b LIMIT 50",
        )
        print(f"batch {batch}: +{EDGES_PER_BATCH} edges | "
              f"Davids within 2 hops of user 0: {len(result.rows):3d} | "
              f"query {result.elapsed * 1e3:5.2f} ms")
        print(f"  {trunk_accounting(cloud)}")

    print("\nthe reservation mechanism absorbed most of the growth "
          "churn; defragmentation reclaimed the slack between batches — "
          "exactly the Section 6.1 design.")


if __name__ == "__main__":
    main()
