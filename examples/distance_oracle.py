"""The distance oracle and the Section 5.5 "new paradigm".

Builds a clustered social graph, picks landmark vertices by the paper's
three strategies, and compares both the *estimation accuracy* and the
*selection cost* — showing why computing betweenness locally per machine
("each machine holds a random sample of the graph") gets near-global
quality at a fraction of the price.

Run:  python examples/distance_oracle.py
"""

from repro import ClusterConfig, MemoryParams
from repro.algorithms import evaluate_oracle
from repro.algorithms.landmarks import select_landmarks_with_cost
from repro.generators.social import community_edges
from repro.graph import CsrTopology, GraphBuilder, plain_graph_schema
from repro.memcloud import MemoryCloud

STRATEGIES = ("degree", "local-betweenness", "global-betweenness")


def main() -> None:
    edges = community_edges(2500, communities=20, avg_degree=10,
                            layout="ring", gamma=2.8, seed=3)
    cloud = MemoryCloud(ClusterConfig(
        machines=8, trunk_bits=7,
        memory=MemoryParams(trunk_size=16 * 1024 * 1024),
    ))
    builder = GraphBuilder(cloud, plain_graph_schema(directed=False))
    builder.add_edges(edges.tolist())
    topology = CsrTopology(builder.finalize())
    print(f"clustered social graph: {topology.n} nodes, "
          f"{topology.num_edges // 2} edges, 8 machines\n")

    print(f"{'strategy':22s} {'32 landmarks':>14s} {'selection cost':>16s}")
    for strategy in STRATEGIES:
        landmarks, cost = select_landmarks_with_cost(
            topology, 32, strategy, samples=96, seed=1,
        )
        evaluation = evaluate_oracle(topology, landmarks, pairs=200, seed=7)
        print(f"{strategy:22s} {evaluation.accuracy * 100:13.1f}% "
              f"{cost.elapsed() * 1e3:13.2f} ms")

    landmarks, _ = select_landmarks_with_cost(
        topology, 32, "local-betweenness", samples=96, seed=1,
    )
    evaluation = evaluate_oracle(topology, landmarks, pairs=5, seed=99)
    print("\nsample estimates (local-betweenness oracle):")
    for u, v, true, estimate in evaluation.per_pair:
        marker = "exact" if true == estimate else f"+{estimate - true}"
        print(f"  d({u:4d}, {v:4d}) = {true}  estimated {estimate}  "
              f"({marker})")
    print("\nthe paper's point: the distance between any two users is "
          "answered from precomputed landmark BFS trees in O(landmarks) "
          "— no traversal at query time — and the landmark set itself "
          "can be found without any global computation.")


if __name__ == "__main__":
    main()
