"""Streaming (external-memory) social-graph generation.

The paper's Facebook-like deployment is 8e8 nodes and 1.4e10 edges —
two orders of magnitude more edge bytes than any single machine's RAM.
Generating such a graph with :func:`repro.generators.powerlaw_edges`
is impossible by construction: the configuration model shuffles one
global stub array, so the whole edge list exists in memory before the
first byte reaches the cloud.

``stream_social_edges`` is the external-memory counterpart: a chunked
Chung-Lu emitter.  It keeps only O(n) per-node state (the expected
degree sequence, sampled from the same P(k) ~ k^-gamma law with the
same multiplicative rescaling toward ``avg_degree``) and yields edge
*batches* of bounded size — the full edge list never materialises.
Hubs emerge exactly as in the offline generator: destinations are
drawn proportionally to degree weight, so high-degree nodes attract
edges from every chunk.

``stream_build_social_graph`` drives a :class:`GraphBuilder` from the
batch stream, which is how a paged cloud (``MemoryParams.storage=
"paged"``) loads a graph bigger than its page budget: each batch is
ingested and released before the next is drawn, and the bulk finalize
streams cell bytes through ``TrunkStorage.write_stream`` page by page.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..graph import Graph, GraphBuilder, social_graph_schema
from ..memcloud import MemoryCloud
from .names import sample_names
from .powerlaw import powerlaw_degree_sequence


def _expected_degrees(n: int, avg_degree: float, gamma: float,
                      seed: int) -> np.ndarray:
    """Power-law degree expectations, rescaled like the offline model."""
    degrees = powerlaw_degree_sequence(n, gamma, seed=seed)
    current = degrees.mean()
    if current < avg_degree:
        factor = avg_degree / current
        degrees = np.maximum(1, np.round(degrees * factor)).astype(np.int64)
    return degrees


def stream_social_edges(n: int, avg_degree: float = 13.0,
                        gamma: float = 2.16, seed: int = 0,
                        batch_edges: int = 1 << 14
                        ) -> Iterator[np.ndarray]:
    """Yield ``(k, 2)`` int64 edge batches; never the whole edge list.

    Chung-Lu sampling over a power-law weight sequence: source nodes
    are swept in chunks, each emitting ``degree/2`` stubs (undirected
    edges are emitted once, like the offline generator's canonical
    form), with destinations drawn from the global degree-weighted
    distribution.  Self-loops are dropped; duplicates are kept — raw
    generator output is real traversal work, exactly as with R-MAT.

    Peak memory is O(n + batch_edges), independent of the edge count.
    """
    if n < 2:
        raise ValueError("a streamed graph needs at least 2 nodes")
    if batch_edges < 1:
        raise ValueError("batch_edges must be >= 1")
    degrees = _expected_degrees(n, avg_degree, gamma, seed)
    weights = degrees.astype(np.float64)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    rng = np.random.default_rng(seed + 1)
    # Each undirected edge is emitted once, so each node sources half
    # its expected degree; destination draws supply the other half.
    out_degrees = np.maximum(1, degrees // 2)
    chunk_nodes = max(1, int(batch_edges // max(1.0, avg_degree / 2)))
    for lo in range(0, n, chunk_nodes):
        hi = min(n, lo + chunk_nodes)
        src = np.repeat(np.arange(lo, hi, dtype=np.int64),
                        out_degrees[lo:hi])
        for cut in range(0, len(src), batch_edges):
            part = src[cut:cut + batch_edges]
            dst = np.searchsorted(
                cdf, rng.random(len(part))).astype(np.int64)
            keep = part != dst
            if keep.any():
                yield np.stack([part[keep], dst[keep]], axis=1)


def stream_build_social_graph(cloud: MemoryCloud, n: int,
                              avg_degree: float = 13.0,
                              gamma: float = 2.16, seed: int = 0,
                              batch_edges: int = 1 << 14,
                              name_batch: int = 1 << 12) -> tuple[Graph, int]:
    """Load a named social graph batch-by-batch; returns (graph, edges).

    The builder sees the same incremental surface a loader reading
    edge files from disk would use: node batches with names, then edge
    batches, then one bulk finalize.  With a paged cloud the finalize
    streams blob bytes sequentially through the page file, so the
    resident working set stays at the page budget even when the graph
    does not fit.
    """
    builder = GraphBuilder(cloud, social_graph_schema())
    names = sample_names(n, seed=seed + 17)
    for lo in range(0, n, name_batch):
        for node_id in range(lo, min(n, lo + name_batch)):
            builder.add_node(node_id, Name=names[node_id])
    total = 0
    for batch in stream_social_edges(n, avg_degree=avg_degree, gamma=gamma,
                                     seed=seed, batch_edges=batch_edges):
        builder.add_edges(batch)
        total += int(len(batch))
    return builder.finalize(), total
