"""Facebook-like social graphs with names (Sections 5.1 and 7).

The people-search experiment deploys "a synthetic, power-law graph ...
[with] Facebook-like size and distribution (8e8 nodes, 1.4e10 edges, with
each node having on average 130 edges)"; the response-time figure sweeps
the out-degree from 10 to 200.  ``social_edges`` produces the topology and
``build_social_graph`` loads it into a memory cloud with sampled names.
"""

from __future__ import annotations

import numpy as np

from ..graph import GraphBuilder, social_graph_schema
from ..memcloud import MemoryCloud
from .names import sample_names
from .powerlaw import powerlaw_edges


def social_edges(n: int, avg_degree: float = 13.0, gamma: float = 2.16,
                 seed: int = 0) -> np.ndarray:
    """Undirected friendship edges with power-law degrees."""
    return powerlaw_edges(n, gamma=gamma, avg_degree=avg_degree, seed=seed)


def community_edges(n: int, communities: int = 16, avg_degree: float = 13.0,
                    inter_fraction: float = 0.05, gamma: float = 2.16,
                    layout: str = "random", bridges_per_pair: int = 2,
                    seed: int = 0) -> np.ndarray:
    """Power-law edges with planted community structure.

    Real social networks are strongly clustered: most edges stay within a
    community, a few bridge between them.  The distance-oracle experiment
    (Figure 8b) depends on this — betweenness-selected landmarks sit on
    the bridges that shortest paths funnel through, while degree-selected
    landmarks are community-internal hubs that paths route *around*.

    ``layout`` controls the community-level topology:

    * ``"random"`` — ``inter_fraction`` of the edge budget becomes uniform
      cross-community edges (small-world, short diameter);
    * ``"ring"`` — communities form a ring with ``bridges_per_pair``
      bridge edges between adjacent communities only.  Shortest paths
      between distant communities must traverse the ring, concentrating
      betweenness on the bridge endpoints — the regime where landmark
      quality separates sharply by selection strategy.
    """
    if communities < 1:
        raise ValueError("communities must be >= 1")
    if layout not in ("random", "ring"):
        raise ValueError(f"unknown layout {layout!r}")
    rng = np.random.default_rng(seed)
    membership = rng.integers(0, communities, size=n)
    members_of = [np.nonzero(membership == c)[0] for c in range(communities)]
    blocks: list[np.ndarray] = []
    for c, members in enumerate(members_of):
        if len(members) < 2:
            continue
        local = powerlaw_edges(
            len(members), gamma=gamma,
            avg_degree=avg_degree * (1.0 - inter_fraction),
            seed=seed + 101 * c + 1,
        )
        blocks.append(members[local])
    if layout == "ring" and communities > 1:
        for c in range(communities):
            left = members_of[c]
            right = members_of[(c + 1) % communities]
            if not len(left) or not len(right):
                continue
            src = rng.choice(left, size=bridges_per_pair)
            dst = rng.choice(right, size=bridges_per_pair)
            blocks.append(np.stack([src, dst], axis=1))
    else:
        inter_count = int(round(n * avg_degree * inter_fraction / 2))
        if inter_count:
            src = rng.integers(0, n, size=inter_count)
            dst = rng.integers(0, n, size=inter_count)
            keep = membership[src] != membership[dst]
            blocks.append(np.stack([src[keep], dst[keep]], axis=1))
    edges = np.vstack([b for b in blocks if len(b)])
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keep = lo != hi
    return np.unique(
        np.stack([lo[keep], hi[keep]], axis=1), axis=0
    ).astype(np.int64)


def build_social_graph(cloud: MemoryCloud, n: int, avg_degree: float = 13.0,
                       gamma: float = 2.16, seed: int = 0):
    """Generate and load a named friendship graph; returns the Graph.

    Node ids are 0..n-1; every node gets a first name sampled from the
    Zipf-weighted pool (so "David" queries have realistic selectivity).
    """
    edges = social_edges(n, avg_degree=avg_degree, gamma=gamma, seed=seed)
    names = sample_names(n, seed=seed + 17)
    builder = GraphBuilder(cloud, social_graph_schema())
    for node_id, name in enumerate(names):
        builder.add_node(node_id, Name=name)
    builder.add_edges(edges.tolist())
    return builder.finalize()
