"""First-name pool for social-graph generation.

The people-search workload (Section 5.1) looks for users named "David" —
"a popular first name" — within k hops.  The pool below is weighted
Zipf-style so popular names (David included) appear at realistic rates
while the tail stays diverse.
"""

from __future__ import annotations

import numpy as np

FIRST_NAMES = (
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
    "Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony",
    "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly",
    "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth",
    "Dorothy", "Kevin", "Carol", "Brian", "Amanda", "George", "Melissa",
    "Edward", "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca",
    "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob",
    "Kathleen", "Gary", "Amy", "Nicholas", "Angela", "Eric", "Shirley",
    "Jonathan", "Anna", "Stephen", "Brenda", "Larry", "Pamela", "Justin",
    "Emma", "Scott", "Nicole", "Brandon", "Helen", "Benjamin", "Samantha",
    "Samuel", "Katherine", "Gregory", "Christine", "Frank", "Debra",
    "Alexander", "Rachel", "Raymond", "Stella", "Patrick", "Carolyn",
    "Jack", "Janet", "Dennis", "Catherine", "Jerry", "Maria", "Tyler",
    "Heather", "Aaron", "Diane", "Jose", "Ruth", "Adam", "Julie", "Henry",
    "Olivia", "Nathan", "Joyce", "Douglas", "Virginia", "Zachary",
    "Victoria", "Peter", "Kelly", "Kyle", "Lauren", "Walter", "Christina",
    "Ethan", "Joan", "Jeremy", "Evelyn", "Harold", "Judith", "Keith",
    "Megan", "Christian", "Cheryl", "Roger", "Andrea", "Noah", "Hannah",
    "Gerald", "Martha", "Carl", "Jacqueline", "Terry", "Frances", "Sean",
    "Gloria", "Austin", "Ann", "Arthur", "Teresa", "Lawrence", "Kathryn",
    "Jesse", "Sara", "Dylan", "Janice", "Bryan", "Jean", "Joe", "Alice",
    "Jordan", "Madison", "Billy", "Doris", "Bruce", "Abigail", "Albert",
    "Julia", "Willie", "Judy", "Gabriel", "Grace", "Logan", "Denise",
    "Alan", "Amber", "Juan", "Marilyn", "Wayne", "Beverly", "Roy",
    "Danielle", "Ralph", "Theresa", "Randy", "Sophia", "Eugene", "Marie",
    "Vincent", "Diana", "Russell", "Brittany", "Elijah", "Natalie",
    "Louis", "Isabella", "Bobby", "Charlotte", "Philip", "Rose", "Johnny",
    "Alexis", "Logan2", "Kayla",
)


def sample_names(n: int, seed: int = 0) -> list[str]:
    """Draw ``n`` first names with Zipf(1.07) popularity weights.

    With the default pool David ranks 11th, so roughly 1–2% of a large
    social graph is named David — popular enough that indexing every David
    is hopeless (the paper's argument for exploration over indexing), rare
    enough that a 3-hop search is selective.
    """
    ranks = np.arange(1, len(FIRST_NAMES) + 1, dtype=np.float64)
    weights = ranks ** -1.07
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(FIRST_NAMES), size=n, p=weights)
    return [FIRST_NAMES[i] for i in picks]
