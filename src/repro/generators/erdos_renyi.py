"""Erdos-Renyi random graphs (uniform baseline topology).

Used by tests and ablations as the *non*-scale-free control: hub-vertex
buffering should help little here, since no vertex dominates the message
traffic the way power-law hubs do.
"""

from __future__ import annotations

import numpy as np


def erdos_renyi_edges(n: int, avg_degree: float = 8.0,
                      directed: bool = True, seed: int = 0) -> np.ndarray:
    """G(n, m)-style edge list with ``m = n * avg_degree`` (directed) or
    ``m = n * avg_degree / 2`` (undirected) uniform random edges.

    Self-loops are rejected; duplicates are allowed (multigraph), matching
    how R-MAT output behaves unless deduplicated.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    m = int(round(n * avg_degree)) if directed else int(round(n * avg_degree / 2))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    loops = src == dst
    while loops.any():
        dst[loops] = rng.integers(0, n, size=int(loops.sum()), dtype=np.int64)
        loops = src == dst
    return np.stack([src, dst], axis=1)
