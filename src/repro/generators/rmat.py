"""R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos).

The paper's PageRank and BFS experiments run "on R-MAT graphs" with
average degree 13 (Section 7).  R-MAT drops each edge into a quadrant of
the adjacency matrix recursively with probabilities (a, b, c, d); the
defaults below are the Graph500 parameters, which produce the heavy-tailed
degree distributions the hub-vertex optimisation feeds on.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(scale: int, avg_degree: float = 13.0,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               seed: int = 0, dedup: bool = False) -> np.ndarray:
    """Generate an R-MAT edge list over ``2**scale`` vertices.

    Returns an ``(m, 2)`` int64 array of directed edges.  ``dedup`` drops
    duplicate edges (at the cost of a slightly lower realised degree).

    The quadrant probabilities must satisfy a + b + c <= 1; d is implied.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if min(a, b, c) < 0 or a + b + c > 1.0:
        raise ValueError("quadrant probabilities must be >= 0 and sum <= 1")
    n = 1 << scale
    m = int(round(n * avg_degree))
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        draw = rng.random(m)
        # Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
        right = ((draw >= a) & (draw < a + b)) | (draw >= a + b + c)
        down = draw >= a + b
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    edges = np.stack([src, dst], axis=1)
    if dedup:
        edges = np.unique(edges, axis=0)
    return edges


def rmat_graph_size(scale: int, avg_degree: float = 13.0) -> tuple[int, int]:
    """(vertices, edges) an R-MAT call with these parameters produces."""
    n = 1 << scale
    return n, int(round(n * avg_degree))
