"""Synthetic graph generators used throughout the evaluation.

The paper's experiments run on synthetic graphs: R-MAT graphs for
PageRank/BFS (Section 7, citing Chakrabarti et al.), and power-law
"Facebook-like" social graphs (8e8 nodes, average degree 13, generated
from P(k) = c*k^-gamma with c = 1.16 and gamma = 2.16) for people search
and the hub-vertex analysis of Section 5.4.  These modules implement the
same generator families at simulation scale.
"""

from .rmat import rmat_edges
from .powerlaw import powerlaw_degree_sequence, powerlaw_edges
from .social import build_social_graph, social_edges
from .streaming import stream_build_social_graph, stream_social_edges
from .erdos_renyi import erdos_renyi_edges
from .names import FIRST_NAMES, sample_names

__all__ = [
    "rmat_edges",
    "powerlaw_degree_sequence",
    "powerlaw_edges",
    "social_edges",
    "build_social_graph",
    "stream_social_edges",
    "stream_build_social_graph",
    "erdos_renyi_edges",
    "FIRST_NAMES",
    "sample_names",
]
