"""Pluggable export targets for registry snapshots.

A sink is anything with an ``export(snapshot: dict) -> None`` method;
:meth:`~repro.obs.metrics.MetricsRegistry.flush` pushes one snapshot to
every attached sink.  Recording into metrics never touches a sink, so a
run with no sink attached pays nothing at export time.
"""

from __future__ import annotations

import json
import pathlib


class NullSink:
    """Discards snapshots (useful as an explicit no-op in sweeps)."""

    def export(self, snapshot: dict) -> None:
        pass


class MemorySink:
    """Keeps every flushed snapshot in memory (tests, notebooks)."""

    def __init__(self) -> None:
        self.snapshots: list[dict] = []

    def export(self, snapshot: dict) -> None:
        self.snapshots.append(snapshot)

    @property
    def latest(self) -> dict | None:
        return self.snapshots[-1] if self.snapshots else None


class JsonFileSink:
    """Writes each snapshot as pretty-printed JSON, overwriting the file.

    Benchmarks point one at ``benchmarks/results/<name>.metrics.json`` so
    every run leaves its registry state next to its result table.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.exports = 0

    def export(self, snapshot: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        self.exports += 1


class LineSink:
    """Appends one compact JSON object per flush (a metrics journal)."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    def export(self, snapshot: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(snapshot, sort_keys=True) + "\n")
