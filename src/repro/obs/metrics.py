"""Metric primitives: counters, gauges, histograms, and their registry.

Dependency-free and deliberately cheap on the hot path: recording into a
metric is a plain attribute update on a pre-resolved object, so
instrumented subsystems look a metric up once (at construction) and then
pay an integer add per event.  Nothing is exported anywhere until a sink
is attached and :meth:`MetricsRegistry.flush` is called, so an
uninstrumented run pays only the attribute updates.

Metrics are identified by a dotted name plus a frozen label set, the
Prometheus data model reduced to what the simulation needs::

    registry = MetricsRegistry()
    allocs = registry.counter("trunk.alloc.total", trunk=3)
    allocs.inc()
    depth = registry.gauge("bsp.queue.depth")
    depth.set(42)
    lat = registry.histogram("cluster.request.seconds")
    lat.observe(3.2e-4)
"""

from __future__ import annotations

import bisect
import time
from typing import Iterator


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, garbage bytes)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


# Geometric buckets covering 100 ns .. ~100 s: wide enough for both the
# simulated clock (sub-millisecond rounds) and real wall-clock spans.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-7, 3))


class _HistogramTimer:
    """Context manager recording a wall-clock duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Distribution summary: bucketed counts plus sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts",
                 "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (),
                 buckets: tuple = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def time(self) -> _HistogramTimer:
        """``with h.time():`` — observe the block's wall-clock seconds."""
        return _HistogramTimer(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def summary(self) -> dict:
        """``{count, mean, p50, p99, max}`` — the one-line view the SLO
        reports and ``:metrics`` print instead of raw bucket dumps."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "max": self.max if self.max is not None else 0.0,
        }

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def snapshot(self) -> dict:
        return {
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {
                str(bound): n
                for bound, n in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
        }


class MetricsRegistry:
    """Process-wide (or injected per-test) home for every metric.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    with the same name and labels returns the same object, so components
    constructed repeatedly (trunks across many test clouds) accumulate
    into the same series rather than colliding.

    ``reset`` zeroes every metric *in place*; cached references held by
    instrumented components stay valid.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._sinks: list = []

    # -- get-or-create -------------------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, _label_key(labels), **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- introspection -------------------------------------------------------

    def collect(self) -> Iterator:
        """Every registered metric, in registration order."""
        return iter(self._metrics.values())

    def series_names(self) -> list[str]:
        return sorted({m.name for m in self._metrics.values()})

    def snapshot(self) -> dict:
        """Nested plain-data view: name -> kind + list of labelled series."""
        out: dict[str, dict] = {}
        for metric in self._metrics.values():
            entry = out.setdefault(
                metric.name, {"kind": metric.kind, "series": []}
            )
            entry["series"].append(metric.snapshot())
        return out

    def reset(self) -> None:
        """Zero all metrics in place (cached references stay live)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- cross-process aggregation -------------------------------------------
    #
    # Worker processes of the shared-memory execution backend record into
    # their own (fork-copied) registries; at every superstep barrier they
    # ship what changed since the previous barrier and the coordinator
    # folds it in, so reports and benchmark metrics.json are complete
    # under both backends.

    def capture_state(self) -> dict:
        """Plain-data snapshot of every metric, for later ``delta_since``."""
        state: dict[tuple, object] = {}
        for key, metric in self._metrics.items():
            if metric.kind == "histogram":
                state[key] = (tuple(metric.bucket_counts), metric.count,
                              metric.total, metric.min, metric.max)
            else:
                state[key] = metric.value
        return state

    def delta_since(self, baseline: dict) -> dict:
        """What changed since ``baseline`` (a ``capture_state`` result).

        Returns a picklable mapping suitable for :meth:`apply_deltas`:
        counters as increments, gauges as absolute values (last write
        wins), histograms as component-wise increments plus their bucket
        bounds so the receiving registry can create a matching series.
        """
        deltas: dict[tuple, tuple] = {}
        for key, metric in self._metrics.items():
            base = baseline.get(key)
            if metric.kind == "counter":
                increment = metric.value - (base or 0)
                if increment:
                    deltas[key] = ("counter", increment)
            elif metric.kind == "gauge":
                if base is None or metric.value != base:
                    deltas[key] = ("gauge", metric.value)
            else:
                if base is None:
                    base = ((0,) * len(metric.bucket_counts), 0, 0.0,
                            None, None)
                buckets, count, total, lo, hi = base
                if metric.count == count:
                    continue
                bucket_inc = [n - b for n, b in
                              zip(metric.bucket_counts, buckets)]
                deltas[key] = ("histogram", metric.bounds, bucket_inc,
                               metric.count - count, metric.total - total,
                               metric.min, metric.max)
        return deltas

    def apply_deltas(self, deltas: dict) -> None:
        """Fold another process's ``delta_since`` result into this registry."""
        for (kind, name, label_key), payload in deltas.items():
            labels = dict(label_key)
            if payload[0] == "counter":
                self.counter(name, **labels).inc(payload[1])
            elif payload[0] == "gauge":
                self.gauge(name, **labels).set(payload[1])
            else:
                _, bounds, bucket_inc, count, total, lo, hi = payload
                hist = self.histogram(name, buckets=bounds, **labels)
                for i, n in enumerate(bucket_inc):
                    hist.bucket_counts[i] += n
                hist.count += count
                hist.total += total
                if lo is not None and (hist.min is None or lo < hist.min):
                    hist.min = lo
                if hi is not None and (hist.max is None or hi > hist.max):
                    hist.max = hi

    # -- sinks ---------------------------------------------------------------

    def attach_sink(self, sink) -> None:
        self._sinks.append(sink)

    def detach_sink(self, sink) -> None:
        self._sinks.remove(sink)

    @property
    def has_sinks(self) -> bool:
        return bool(self._sinks)

    def flush(self) -> int:
        """Export one snapshot to every attached sink; returns sink count."""
        if not self._sinks:
            return 0
        snap = self.snapshot()
        for sink in self._sinks:
            sink.export(snap)
        return len(self._sinks)


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (injectable alternative: pass a
    ``MetricsRegistry`` to the instrumented component's constructor)."""
    return _default_registry
