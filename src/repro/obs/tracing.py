"""Span-based tracing over a pluggable clock.

A :class:`Tracer` opens :class:`Span`s whose timestamps come from an
injected ``clock`` callable.  Engines that run on the simulated cluster
pass ``lambda: network.clock.now`` so span durations are *simulated*
seconds — the same unit every benchmark reports — while anything else
falls back to ``time.perf_counter``.

Finished spans land in a bounded ring buffer (the newest ``max_spans``
are kept) and are simultaneously folded into a duration histogram
``span.<name>.seconds`` in the tracer's registry, so aggregate latency
survives even after individual spans rotate out.
"""

from __future__ import annotations

import contextlib
import time
from collections import deque
from dataclasses import dataclass, field

from .metrics import MetricsRegistry, get_registry


@dataclass
class Span:
    """One traced operation: name, attributes, and clock interval."""

    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    parent: "Span | None" = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} has not finished")
        return self.end - self.start

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)


class Tracer:
    """Opens spans, keeps the recent ones, aggregates their durations."""

    def __init__(self, clock=None, registry: MetricsRegistry | None = None,
                 max_spans: int = 4096):
        self._clock = clock or time.perf_counter
        self.registry = registry if registry is not None else get_registry()
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []

    def now(self) -> float:
        return self._clock()

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        span = Span(name=name, start=self.now(), attrs=attrs,
                    parent=self._stack[-1] if self._stack else None)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.now()
            self._finished.append(span)
            self.registry.histogram(f"span.{name}.seconds").observe(
                span.duration
            )

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans still in the buffer, oldest first."""
        if name is None:
            return list(self._finished)
        return [s for s in self._finished if s.name == name]

    def clear(self) -> None:
        self._finished.clear()


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """Process-wide wall-clock tracer (engines make their own sim-clock
    tracers; this one serves ad-hoc instrumentation)."""
    return _default_tracer
