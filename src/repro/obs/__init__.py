"""Observability: metrics, tracing and reporting for the simulation.

The paper's deployment story (Section 7) leans on knowing where time and
memory go — allocator churn, defrag pressure, per-round network skew,
superstep latency.  ``repro.obs`` is the dependency-free layer the rest
of the system records those facts into:

* :mod:`~repro.obs.metrics` — counter/gauge/histogram registry; recording
  is a plain attribute update on a pre-resolved metric object.
* :mod:`~repro.obs.tracing` — span tracing over a pluggable clock, so
  engines trace in *simulated* seconds.
* :mod:`~repro.obs.report` — :class:`MetricsReport`, the text rendering
  used by the shell's ``:metrics`` command and the benchmark harness.
* :mod:`~repro.obs.sinks` — export targets (memory, JSON file, journal);
  nothing is exported until a sink is attached and ``flush()`` is called.

Every instrumented component takes an optional ``registry`` argument and
defaults to the process-wide one from :func:`get_registry`, so tests can
isolate themselves by injecting a fresh ``MetricsRegistry``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .report import MetricsReport
from .sinks import JsonFileSink, LineSink, MemorySink, NullSink
from .tracing import Span, Tracer, get_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "Span",
    "Tracer",
    "get_tracer",
    "MetricsReport",
    "NullSink",
    "MemorySink",
    "JsonFileSink",
    "LineSink",
]
