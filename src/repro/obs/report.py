"""Human-readable rendering of a registry snapshot.

``MetricsReport`` is what the shell's ``:metrics`` command and the
benchmark harness print: one line per labelled series, grouped by metric
name, with histogram series summarised as count/mean/p50/p99/max.
"""

from __future__ import annotations

from .metrics import MetricsRegistry, get_registry


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class MetricsReport:
    """A snapshot plus its text rendering."""

    def __init__(self, snapshot: dict):
        self.snapshot = snapshot

    @classmethod
    def from_registry(cls, registry: MetricsRegistry | None = None,
                      prefix: str = "") -> "MetricsReport":
        registry = registry if registry is not None else get_registry()
        snap = registry.snapshot()
        if prefix:
            snap = {k: v for k, v in snap.items() if k.startswith(prefix)}
        return cls(snap)

    def filter(self, prefix: str) -> "MetricsReport":
        return MetricsReport({
            k: v for k, v in self.snapshot.items() if k.startswith(prefix)
        })

    @property
    def series_count(self) -> int:
        return sum(len(v["series"]) for v in self.snapshot.values())

    def nonzero(self) -> "MetricsReport":
        """Drop series that never recorded anything."""
        out = {}
        for name, entry in self.snapshot.items():
            series = [
                s for s in entry["series"]
                if s.get("value") or s.get("count")
            ]
            if series:
                out[name] = {"kind": entry["kind"], "series": series}
        return MetricsReport(out)

    def render(self, max_series_per_metric: int = 16) -> str:
        lines = []
        for name in sorted(self.snapshot):
            entry = self.snapshot[name]
            kind = entry["kind"]
            series = entry["series"]
            lines.append(f"{name} ({kind}, {len(series)} series)")
            shown = series[:max_series_per_metric]
            for s in shown:
                label = _label_str(s["labels"])
                if kind == "histogram":
                    # The Histogram.summary() shape: count/mean/p50/p99/max
                    # (quantiles are bucket-resolution estimates).
                    lines.append(
                        f"  {label or '(all)'}: count={s['count']} "
                        f"mean={_fmt(s['mean'])} p50={_fmt(s.get('p50'))} "
                        f"p99={_fmt(s.get('p99'))} max={_fmt(s['max'])}"
                    )
                else:
                    lines.append(f"  {label or '(all)'}: {_fmt(s['value'])}")
            if len(series) > max_series_per_metric:
                lines.append(
                    f"  ... {len(series) - max_series_per_metric} more series"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
