"""Parser for the TQL pattern language.

Grammar::

    query    := "MATCH" pattern ("WHERE" cond ("AND" cond)*)?
                "RETURN" item ("," item)* ("LIMIT" INT)?
    pattern  := node (edge node)*
    node     := "(" VAR anchor? filter? ")"
    anchor   := "=" INT
    filter   := "{" FIELD ":" literal ("," FIELD ":" literal)* "}"
    edge     := "-[" FIELD range? "]->" | "<-[" FIELD range? "]-"
    range    := "*" INT ".." INT | "*" INT
    cond     := operand OP operand        OP in = != < <= > >=
    operand  := VAR | VAR "." FIELD | literal
    item     := VAR | VAR "." FIELD
    literal  := INT | FLOAT | 'single-quoted string'
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import QueryError


class TqlSyntaxError(QueryError):
    """The TQL query text could not be parsed."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<arrow_out>-\[)
  | (?P<arrow_in><-\[)
  | (?P<close_out>\]->)
  | (?P<close_in>\]-)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<float>-?\d+\.\d+(?!\.))
  | (?P<dotdot>\.\.)
  | (?P<int>-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<star>\*)
  | (?P<punct>[(){},.:])
""", re.VERBOSE)

_KEYWORDS = {"MATCH", "WHERE", "AND", "RETURN", "LIMIT"}


@dataclass(frozen=True)
class NodePattern:
    var: str
    anchor: int | None = None                  # (a = 42)
    filters: tuple[tuple[str, object], ...] = ()  # {Name: 'David'}


@dataclass(frozen=True)
class EdgePattern:
    field: str
    reverse: bool          # True for <-[Field]-
    min_hops: int = 1      # -[Field*2..4]-> traverses 2 to 4 times
    max_hops: int = 1

    @property
    def variable_length(self) -> bool:
        return (self.min_hops, self.max_hops) != (1, 1)


@dataclass(frozen=True)
class Operand:
    """A condition/return operand: variable, variable.field or literal."""

    var: str | None = None
    field: str | None = None
    literal: object = None

    @property
    def is_literal(self) -> bool:
        return self.var is None


@dataclass(frozen=True)
class Condition:
    left: Operand
    op: str
    right: Operand


@dataclass(frozen=True)
class TqlQuery:
    nodes: tuple[NodePattern, ...]
    edges: tuple[EdgePattern, ...]
    conditions: tuple[Condition, ...]
    returns: tuple[Operand, ...]
    limit: int | None

    def variables(self) -> list[str]:
        return [n.var for n in self.nodes]


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TqlSyntaxError(
                f"unexpected character {text[position]!r} at {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self):
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise TqlSyntaxError("unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, kind=None, text=None):
        token = self._next()
        if ((kind is not None and token[0] != kind)
                or (text is not None and token[1] != text)):
            raise TqlSyntaxError(
                f"expected {text or kind}, found {token[1]!r}"
            )
        return token

    def _at(self, kind=None, text=None) -> bool:
        token = self._peek()
        if token is None:
            return False
        return ((kind is None or token[0] == kind)
                and (text is None or token[1] == text))

    def _keyword(self, word: str) -> bool:
        return self._at("name") and self._peek()[1].upper() == word

    # -- grammar -----------------------------------------------------------

    def parse(self) -> TqlQuery:
        if not self._keyword("MATCH"):
            raise TqlSyntaxError("query must start with MATCH")
        self._next()
        nodes = [self._parse_node()]
        edges = []
        while self._at("arrow_out") or self._at("arrow_in"):
            edges.append(self._parse_edge())
            nodes.append(self._parse_node())

        conditions = []
        if self._keyword("WHERE"):
            self._next()
            conditions.append(self._parse_condition())
            while self._keyword("AND"):
                self._next()
                conditions.append(self._parse_condition())

        if not self._keyword("RETURN"):
            raise TqlSyntaxError("query must have a RETURN clause")
        self._next()
        returns = [self._parse_operand()]
        while self._at("punct", ","):
            self._next()
            returns.append(self._parse_operand())
        for item in returns:
            if item.is_literal:
                raise TqlSyntaxError("RETURN items must reference variables")

        limit = None
        if self._keyword("LIMIT"):
            self._next()
            limit = int(self._expect("int")[1])
            if limit < 1:
                raise TqlSyntaxError("LIMIT must be positive")
        if self._peek() is not None:
            raise TqlSyntaxError(
                f"trailing tokens after query: {self._peek()[1]!r}"
            )
        query = TqlQuery(tuple(nodes), tuple(edges), tuple(conditions),
                         tuple(returns), limit)
        self._validate(query)
        return query

    def _parse_node(self) -> NodePattern:
        self._expect("punct", "(")
        var = self._expect("name")[1]
        if var.upper() in _KEYWORDS:
            raise TqlSyntaxError(f"{var!r} cannot be a variable name")
        anchor = None
        filters = []
        if self._at("op", "="):
            self._next()
            anchor = int(self._expect("int")[1])
        if self._at("punct", "{"):
            self._next()
            while True:
                field = self._expect("name")[1]
                self._expect("punct", ":")
                filters.append((field, self._parse_literal()))
                if self._at("punct", ","):
                    self._next()
                    continue
                break
            self._expect("punct", "}")
        self._expect("punct", ")")
        return NodePattern(var, anchor, tuple(filters))

    def _parse_edge(self) -> EdgePattern:
        reverse = self._at("arrow_in")
        if reverse:
            self._next()
        else:
            self._expect("arrow_out")
        field = self._expect("name")[1]
        min_hops = max_hops = 1
        if self._at("star"):
            self._next()
            min_hops = int(self._expect("int")[1])
            max_hops = min_hops
            if self._at("dotdot"):
                self._next()
                max_hops = int(self._expect("int")[1])
            if min_hops < 0 or max_hops < min_hops or max_hops > 8:
                raise TqlSyntaxError(
                    f"bad hop range *{min_hops}..{max_hops} "
                    "(need 0 <= min <= max <= 8)"
                )
        self._expect("close_in" if reverse else "close_out")
        return EdgePattern(field, reverse=reverse,
                           min_hops=min_hops, max_hops=max_hops)

    def _parse_condition(self) -> Condition:
        left = self._parse_operand()
        op = self._expect("op")[1]
        right = self._parse_operand()
        return Condition(left, op, right)

    def _parse_operand(self) -> Operand:
        token = self._peek()
        if token is None:
            raise TqlSyntaxError("expected an operand")
        if token[0] in ("int", "float", "string"):
            return Operand(literal=self._parse_literal())
        var = self._expect("name")[1]
        if self._at("punct", "."):
            self._next()
            field = self._expect("name")[1]
            return Operand(var=var, field=field)
        return Operand(var=var)

    def _parse_literal(self):
        kind, text = self._next()
        if kind == "int":
            return int(text)
        if kind == "float":
            return float(text)
        if kind == "string":
            return text[1:-1].replace("\\'", "'")
        raise TqlSyntaxError(f"expected a literal, found {text!r}")

    @staticmethod
    def _validate(query: TqlQuery) -> None:
        variables = set()
        for node in query.nodes:
            if node.var in variables:
                # Re-mentioning a variable joins back to it; allowed.
                continue
            variables.add(node.var)
        for condition in query.conditions:
            for operand in (condition.left, condition.right):
                if operand.var is not None and operand.var not in variables:
                    raise TqlSyntaxError(
                        f"WHERE references unbound variable {operand.var!r}"
                    )
        for item in query.returns:
            if item.var not in variables:
                raise TqlSyntaxError(
                    f"RETURN references unbound variable {item.var!r}"
                )


def parse_tql(text: str) -> TqlQuery:
    """Parse a TQL query string into a :class:`TqlQuery`."""
    return _Parser(_tokenize(text)).parse()
