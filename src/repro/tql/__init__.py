"""TQL — a traversal query language on Trinity graphs.

Section 4.2 notes that "a sophisticated graph query language (TQL)" was
implemented on top of the TSL-generated data-manipulation layer; the
paper does not specify its syntax, so this package provides a compact
pattern-matching language in the same spirit, compiled onto the
:class:`~repro.graph.api.Graph` access surface::

    MATCH (a {Name: 'David'}) -[Friends]-> (b) -[Friends]-> (c)
    WHERE c.Name = 'Alice' AND b != a
    RETURN b, c
    LIMIT 10

* node patterns bind variables, optionally anchored to a cell id
  (``(a = 42)``) or filtered by field equality (``(a {Name: 'David'})``),
* edge patterns traverse any declared ``List<long>`` field of the cell
  (``-[Friends]->``, ``<-[Outlinks]-`` for reverse),
* WHERE supports field/variable comparisons, RETURN projects variables
  or ``var.Field`` expressions, LIMIT caps the result.

Execution is exploration-based backtracking over the cloud-resident
cells — the same no-index philosophy as Section 5.2 — with the usual
simulated cost accounting.
"""

from .parser import TqlSyntaxError, parse_tql
from .engine import TqlResult, execute_tql

__all__ = ["parse_tql", "execute_tql", "TqlResult", "TqlSyntaxError"]
