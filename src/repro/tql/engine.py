"""TQL execution: exploration-based pattern matching over a Graph.

Follows the Section 5.2 philosophy — no structure index, just fast cell
access and traversal.  The pattern chain is matched left to right by
backtracking: anchored or filtered node patterns seed the search, edge
patterns expand through the named adjacency field (reverse edges scan
the in-field when the schema has one), and WHERE conditions prune as
soon as their operands are bound.

Costs are charged like the other online queries: one cell access per
candidate touched, adjacency scans per edge expansion, and traffic when
the expansion crosses machines — all folded into one
:class:`~repro.net.simnet.ParallelRound` under the spread-work model.

The engine runs on the batched read path by default (``batch=True``):
candidate sets and BFS waves are *prefetched* through
``Graph.read_field_batch`` — one ``bulk_get`` plus one column decode per
wave — into a staging dict that ``read_field`` consumes.  Costs are
charged on first *consumption*, never at prefetch time, so
``cells_touched``/``elapsed`` stay bit-identical to the scalar engine
even when a LIMIT stops the search before prefetched values are used.
``cross_check=True`` shadow-replays the scalar decode per batched read
and re-executes the whole query on the scalar path, raising
:class:`~repro.memcloud.cloud.BulkPathDivergence` on any difference.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import QueryError
from ..memcloud.cloud import BulkPathDivergence
from ..net.simnet import ParallelRound, SimNetwork
from .parser import Operand, TqlQuery, parse_tql

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass
class TqlResult:
    """Projected rows plus execution accounting."""

    query: TqlQuery
    rows: list[tuple] = field(default_factory=list)
    cells_touched: int = 0
    messages: int = 0
    elapsed: float = 0.0
    truncated: bool = False


def execute_tql(graph, query: TqlQuery | str,
                network: SimNetwork | None = None,
                params: ComputeParams | None = None,
                max_rows: int = 10_000,
                batch: bool = True,
                cross_check: bool = False) -> TqlResult:
    """Run a TQL query against a :class:`~repro.graph.api.Graph`.

    ``batch`` enables the vectorized prefetch path (identical results
    and accounting); ``cross_check=True`` additionally re-executes the
    query on the scalar path and raises
    :class:`~repro.memcloud.cloud.BulkPathDivergence` if rows, cost
    accounting or simulated time diverge.
    """
    if isinstance(query, str):
        query = parse_tql(query)
    network = network or SimNetwork()
    params = params or ComputeParams()
    result = _execute(graph, query, network, params, max_rows, batch,
                      cross_check)
    if batch and cross_check:
        shadow = _execute(graph, query, SimNetwork(network.params), params,
                          max_rows, False, False)
        for attr in ("rows", "cells_touched", "messages", "elapsed",
                     "truncated"):
            mine, theirs = getattr(result, attr), getattr(shadow, attr)
            if mine != theirs:
                raise BulkPathDivergence(
                    f"TQL batch path diverges from scalar on {attr}: "
                    f"{mine!r} != {theirs!r}"
                )
    return result


def _execute(graph, query: TqlQuery, network: SimNetwork,
             params: ComputeParams, max_rows: int, batch: bool,
             cross_check: bool) -> TqlResult:
    result = TqlResult(query=query)
    limit = query.limit if query.limit is not None else max_rows

    compute = [0.0]
    remote = [0, 0]  # messages, bytes
    field_cache: dict[tuple[int, str], object] = {}
    # Values staged by the batched prefetch.  Consuming one through
    # read_field charges the same cell-access cost as a scalar read, so
    # prefetching more than the scalar path ends up touching (e.g. under
    # a LIMIT early exit) never skews the accounting.
    prefetched: dict[tuple[int, str], object] = {}
    seen_rows: set[tuple] = set()

    def read_field(node_id: int, field_name: str):
        key = (node_id, field_name)
        if key not in field_cache:
            if key in prefetched:
                field_cache[key] = prefetched.pop(key)
            else:
                field_cache[key] = graph.read_field(node_id, field_name)
            compute[0] += params.cell_access_cost
            result.cells_touched += 1
        return field_cache[key]

    def prefetch(node_ids, field_name: str) -> None:
        """Stage a column for later read_field consumption (batch only)."""
        if not batch:
            return
        wanted: list[int] = []
        staged = set()
        for node_id in node_ids:
            node_id = int(node_id)
            key = (node_id, field_name)
            if (key in field_cache or key in prefetched
                    or node_id in staged):
                continue
            staged.add(node_id)
            wanted.append(node_id)
        if len(wanted) < 2:
            return
        values = graph.read_field_batch(
            np.asarray(wanted, dtype=np.int64), field_name,
            cross_check=cross_check,
        )
        for node_id, value in zip(wanted, values):
            prefetched[(node_id, field_name)] = value

    def node_matches(pattern, node_id: int) -> bool:
        if pattern.anchor is not None and node_id != pattern.anchor:
            return False
        for field_name, expected in pattern.filters:
            if read_field(node_id, field_name) != expected:
                return False
        return True

    def operand_value(op: Operand, binding: dict):
        if op.is_literal:
            return op.literal
        value = binding[op.var]
        if op.field is not None:
            return read_field(value, op.field)
        return value

    def check_conditions(binding: dict) -> bool:
        for condition in query.conditions:
            for op in (condition.left, condition.right):
                if op.var is not None and op.var not in binding:
                    break
            else:
                left = operand_value(condition.left, binding)
                right = operand_value(condition.right, binding)
                try:
                    if not _OPS[condition.op](left, right):
                        return False
                except TypeError as exc:
                    raise QueryError(
                        f"cannot compare {left!r} {condition.op} "
                        f"{right!r}: {exc}"
                    ) from None
        return True

    def seed_candidates(pattern):
        if pattern.anchor is not None:
            if pattern.anchor in graph:
                return [pattern.anchor]
            return []
        # No anchor: scan the node population (the no-index trade-off;
        # filters prune during the scan).
        return graph.node_ids

    def scans_adjacency_field(edge) -> bool:
        """True when single_expand reads ``edge.field`` via read_field."""
        if not edge.reverse:
            return True
        schema = graph.graph_schema
        if edge.field == schema.out_field and schema.in_field:
            return False
        if schema.in_field and edge.field == schema.in_field:
            return False
        return True

    def expand(node_id: int, edge):
        if edge.variable_length:
            return variable_expand(node_id, edge)
        return single_expand(node_id, edge)

    def variable_expand(node_id: int, edge):
        """Bounded BFS: nodes whose hop distance along the field lies in
        [min_hops, max_hops] (Cypher-style ``*min..max`` semantics)."""
        single = type(edge)(edge.field, edge.reverse)
        prefetchable = scans_adjacency_field(single)
        distance = {node_id: 0}
        frontier = [node_id]
        found: list[int] = []
        for depth in range(1, edge.max_hops + 1):
            if prefetchable:
                # One column decode covers the whole BFS wave.
                prefetch(frontier, edge.field)
            next_frontier: list[int] = []
            for current in frontier:
                for neighbor in single_expand(current, single):
                    neighbor = int(neighbor)
                    if neighbor not in distance:
                        distance[neighbor] = depth
                        next_frontier.append(neighbor)
                        if depth >= edge.min_hops:
                            found.append(neighbor)
            frontier = next_frontier
        if edge.min_hops == 0:
            found.insert(0, node_id)
        return found

    def single_expand(node_id: int, edge):
        if not edge.reverse:
            targets = read_field(node_id, edge.field)
        else:
            schema = graph.graph_schema
            if edge.field == schema.out_field and schema.in_field:
                targets = graph.inlinks(node_id)
                compute[0] += params.cell_access_cost
            elif schema.in_field and edge.field == schema.in_field:
                targets = graph.outlinks(node_id)
                compute[0] += params.cell_access_cost
            else:
                # Undirected field: the list is symmetric already.
                targets = read_field(node_id, edge.field)
        if not isinstance(targets, list):
            raise QueryError(
                f"field {edge.field!r} is not an adjacency list"
            )
        compute[0] += len(targets) * params.edge_scan_cost
        return targets

    def backtrack(index: int, binding: dict) -> bool:
        """False when the row limit stops the search."""
        if len(result.rows) >= limit:
            result.truncated = query.limit is None
            return False
        if index == len(query.nodes):
            row = tuple(
                operand_value(item, binding) for item in query.returns
            )
            if row not in seen_rows:  # projection semantics: distinct
                seen_rows.add(row)
                result.rows.append(row)
            return True
        pattern = query.nodes[index]
        if index == 0:
            candidates = seed_candidates(pattern)
            source = None
        else:
            edge = query.edges[index - 1]
            source = binding[query.nodes[index - 1].var]
            candidates = expand(source, edge)
        if pattern.filters and pattern.anchor is None:
            # Every surviving candidate will read the first filter field;
            # stage the whole column in one batched pass.
            prefetch(candidates, pattern.filters[0][0])
        rebound = pattern.var in binding
        for candidate in candidates:
            candidate = int(candidate)
            if rebound:
                if binding[pattern.var] != candidate:
                    continue
            if not node_matches(pattern, candidate):
                continue
            if source is not None:
                target_machine = graph.machine_of(candidate)
                if graph.machine_of(source) != target_machine:
                    remote[0] += 1
                    remote[1] += 8 * (len(binding) + 1)
                    result.messages += 1
            binding[pattern.var] = candidate
            if check_conditions(binding):
                alive = backtrack(index + 1, binding)
            else:
                alive = True
            if rebound:
                pass  # leave the earlier binding in place
            else:
                del binding[pattern.var]
            if not alive:
                return False
        return True

    backtrack(0, {})

    machines = graph.cloud.config.machines
    round_ = ParallelRound(network)
    for machine in range(machines):
        round_.add_compute(machine, compute[0] / machines)
    if remote[0]:
        pairs = max(1, machines * (machines - 1))
        for src in range(machines):
            for dst in range(machines):
                if src != dst:
                    round_.add_message(src, dst, remote[1] // pairs,
                                       max(1, remote[0] // pairs))
    result.elapsed = round_.finish(parallelism=params.threads_per_machine)
    result.rows.sort()
    return result
