"""Trunk storage tiers: resident arenas vs out-of-core paged files.

A :class:`~repro.memcloud.trunk.MemoryTrunk` is an allocator over one
contiguous byte range; *where those bytes live* is this module's job.
Two implementations share the :class:`TrunkStorage` contract:

* :class:`ResidentStorage` — today's behaviour: every byte sits in a
  process-private :class:`~repro.memcloud.arena.BytesArena` (or an OS
  shared-memory segment for the parallel backend).  All operations are
  thin slices; ``pin_spans`` always succeeds because nothing can ever
  be evicted.
* :class:`PagedStorage` — the out-of-core tier: the trunk's address
  space is an mmap'd page file on disk, chopped into fixed-size pages
  tracked by an LRU page table.  At most ``page_budget`` pages are
  *resident* (physically in RAM) at a time; touching a non-resident
  page is a **fault**, going over budget **evicts** the least recently
  used unpinned page (dirty pages are **written back** with ``msync``
  first, then dropped from RAM with ``madvise(MADV_DONTNEED)``).  The
  OS transparently refaults evicted pages from the file on the next
  access, so correctness never depends on the page table — the table
  controls *residency* (and therefore RSS), not visibility.

Zero-copy span reads interact with eviction through **pinning**:
``bulk_get_spans`` pins the pages under a span group so the decode that
follows cannot fault its own input back out.  Pins are reference
counts; they are dropped on the trunk's next structural epoch bump
(any mutation), or by an explicit ``SpanGroup.close()``.  When a span
batch's working set would not fit the page budget, pinning refuses and
the trunk degrades that batch to packed *copies* — decoders see the
same bytes either way, they just lose the zero-copy aliasing.

Everything is observable: ``trunk.page.{fault,evict,writeback}.total``
counters plus ``trunk.page.{resident,pinned}`` gauges per trunk, and a
``trunk.page.span_fallback.total`` counter for degraded span batches.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import weakref

import numpy as np

from ..errors import ConfigError
from ..obs import get_registry
from .arena import BytesArena

# Bulk fresh writes are streamed through the storage in chunks of this
# many bytes, so a bigger-than-RAM load never joins the whole batch
# into one Python bytes object.
WRITE_CHUNK_BYTES = 1 << 20


class TrunkStorage:
    """Byte backing for one memory trunk (the storage-tier seam).

    The trunk holds its own mutex; storages are not thread-safe on
    their own and every call below happens under the trunk lock.
    """

    #: True when the whole address space is RAM-resident by construction.
    resident = True
    #: True when the backing can be mutated by forked worker processes.
    shared = False
    #: Config-facing name ("resident" / "paged").
    kind = "abstract"

    def __len__(self) -> int:
        raise NotImplementedError

    def read(self, start: int, end: int) -> bytes:
        """Copy out ``[start, end)``."""
        raise NotImplementedError

    def write(self, start: int, data) -> None:
        """Write ``data`` at ``start``."""
        raise NotImplementedError

    def write_stream(self, start: int, parts) -> int:
        """Write an iterable of byte chunks contiguously from ``start``.

        Joins at most :data:`WRITE_CHUNK_BYTES` at a time so a huge
        fresh batch streams through a paged backing sequentially instead
        of materialising one giant join.  Returns bytes written.
        """
        cursor = start
        pending: list[bytes] = []
        pending_len = 0
        for part in parts:
            if not len(part):
                continue
            pending.append(part)
            pending_len += len(part)
            if pending_len >= WRITE_CHUNK_BYTES:
                self.write(cursor, b"".join(pending))
                cursor += pending_len
                pending = []
                pending_len = 0
        if pending_len:
            self.write(cursor, b"".join(pending))
            cursor += pending_len
        return cursor - start

    def view(self, start: int, end: int) -> memoryview:
        """Writable zero-copy view of ``[start, end)`` (cell pinning)."""
        raise NotImplementedError

    def as_ndarray(self) -> np.ndarray:
        """The whole address space as one ``uint8`` array (span reads)."""
        raise NotImplementedError

    def touch_spans(self, starts, limits) -> None:
        """Account reads of the given spans (page faults for a paged
        backing; free for a resident one)."""

    def pin_spans(self, starts, limits) -> bool:
        """Pin the pages under a span batch against eviction.

        Returns False — and pins nothing — when the batch's page
        working set cannot be held within the page budget; the caller
        degrades to packed copies.
        """
        return True

    def release_pins(self) -> None:
        """Drop every span pin (structural epoch bump / explicit close)."""

    def flush(self) -> int:
        """Write dirty pages back to the backing file; returns pages
        written (0 for resident storage)."""
        return 0

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


class ResidentStorage(TrunkStorage):
    """The whole trunk stays in RAM — wraps a ``BytesArena`` (or an OS
    shared-memory arena for the parallel execution backend).

    Behaviour-identical to the pre-storage-tier trunk: reads and writes
    are plain slices, spans alias the arena buffer, pinning is a no-op
    that always succeeds.
    """

    resident = True
    kind = "resident"

    def __init__(self, arena=None, size: int | None = None):
        if arena is None:
            if size is None:
                raise ConfigError("ResidentStorage needs an arena or a size")
            arena = BytesArena(size)
        self.arena = arena
        self._buf = arena.buf
        self._mv = memoryview(self._buf)
        self._array: np.ndarray | None = None

    @property
    def shared(self) -> bool:
        return self.arena.shared

    def __len__(self) -> int:
        return len(self.arena)

    def read(self, start: int, end: int) -> bytes:
        return self._mv[start:end].tobytes()

    def write(self, start: int, data) -> None:
        self._buf[start:start + len(data)] = data

    def view(self, start: int, end: int) -> memoryview:
        return memoryview(self._buf)[start:end]

    def as_ndarray(self) -> np.ndarray:
        if self._array is None:
            self._array = np.frombuffer(self._buf, dtype=np.uint8)
        return self._array

    def close(self) -> None:
        self.arena.close()

    def unlink(self) -> None:
        self.arena.unlink()


def _remove_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class PagedStorage(TrunkStorage):
    """Fixed-size-page arena backed by an mmap'd file, LRU-evicted.

    The page *file* always holds the full address space; the page
    *table* tracks which pages are resident in RAM and enforces the
    budget by evicting (writeback + ``madvise(MADV_DONTNEED)``) the
    least recently used unpinned page.  Because the mapping is shared
    and file-backed, an evicted page transparently refaults from disk
    on the next access — the table can never lose data, only residency.

    One storage = one page file.  With a ``spill_dir`` the file is
    placed (and left to the owner to clean up) under it; otherwise a
    private temp file is created and removed on :meth:`unlink` or GC.
    """

    resident = False
    shared = False
    kind = "paged"

    def __init__(self, trunk_id: int, params, registry=None,
                 spill_dir=None, path=None):
        self.trunk_id = trunk_id
        self._size = params.trunk_size
        self._page = params.storage_page_size
        self._budget = max(1, params.page_budget)
        if path is not None:
            self.path = os.fspath(path)
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o600)
        elif spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
            self.path = os.path.join(
                os.fspath(spill_dir), f"trunk-{trunk_id:05d}.pages"
            )
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o600)
        else:
            fd, self.path = tempfile.mkstemp(
                prefix=f"repro-trunk{trunk_id}-", suffix=".pages"
            )
        try:
            os.ftruncate(fd, self._size)
            self._mm = mmap.mmap(fd, self._size)
        finally:
            os.close(fd)
        self._finalizer = weakref.finalize(self, _remove_quietly, self.path)
        self._array: np.ndarray | None = None
        # LRU page table: key order is recency (oldest first).
        self._resident: dict[int, None] = {}
        self._dirty: set[int] = set()
        self._pins: dict[int, int] = {}
        obs = registry if registry is not None else get_registry()
        label = {"trunk": trunk_id}
        self._m_fault = obs.counter("trunk.page.fault.total", **label)
        self._m_evict = obs.counter("trunk.page.evict.total", **label)
        self._m_writeback = obs.counter("trunk.page.writeback.total", **label)
        self._m_fallback = obs.counter("trunk.page.span_fallback.total",
                                       **label)
        self._g_resident = obs.gauge("trunk.page.resident", **label)
        self._g_pinned = obs.gauge("trunk.page.pinned", **label)

    # -- page table ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def page_size(self) -> int:
        return self._page

    @property
    def page_budget(self) -> int:
        return self._budget

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def pinned_pages(self) -> int:
        return len(self._pins)

    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    def _touch_page(self, page: int, dirty: bool) -> None:
        table = self._resident
        if page in table:
            # Refresh recency: move to the newest end.
            del table[page]
            table[page] = None
        else:
            table[page] = None
            self._m_fault.inc()
            self._evict_to_budget()
            self._g_resident.set(len(table))
        if dirty:
            self._dirty.add(page)

    def _touch_range(self, start: int, end: int, dirty: bool) -> None:
        if end <= start:
            return
        for page in range(start // self._page, (end - 1) // self._page + 1):
            self._touch_page(page, dirty)

    def _evict_to_budget(self) -> None:
        table = self._resident
        while len(table) > self._budget:
            victim = next((p for p in table if p not in self._pins), None)
            if victim is None:
                # Everything resident is pinned: allow the overrun, the
                # pinned gauge shows why.
                return
            self._evict(victim)

    def _evict(self, page: int) -> None:
        if page in self._dirty:
            self._writeback(page)
            self._dirty.discard(page)
        start, length = self._aligned_extent(page)
        if hasattr(mmap, "MADV_DONTNEED"):
            try:
                self._mm.madvise(mmap.MADV_DONTNEED, start, length)
            except (OSError, ValueError):
                pass  # residency hint only; correctness is unaffected
        del self._resident[page]
        self._m_evict.inc()
        self._g_resident.set(len(self._resident))

    def _aligned_extent(self, page: int) -> tuple[int, int]:
        """System-page-aligned (offset, length) covering a logical page.

        ``msync``/``madvise`` need offsets aligned to the OS page; when
        the logical page is smaller, the aligned extent may cover
        neighbours — they simply refault on next touch.
        """
        gran = mmap.ALLOCATIONGRANULARITY
        start = (page * self._page) // gran * gran
        end = min(self._size, page * self._page + self._page)
        end = min(self._size, (end + gran - 1) // gran * gran)
        return start, end - start

    def _writeback(self, page: int) -> None:
        start, length = self._aligned_extent(page)
        try:
            self._mm.flush(start, length)
        except (OSError, ValueError):
            pass  # the OS will sync the shared mapping at close time
        self._m_writeback.inc()

    def _span_pages(self, starts, limits) -> list[int]:
        starts = np.asarray(starts, dtype=np.int64)
        limits = np.asarray(limits, dtype=np.int64)
        nonempty = limits > starts
        if not nonempty.any():
            return []
        first = starts[nonempty] // self._page
        last = (limits[nonempty] - 1) // self._page
        if (first == last).all():
            return np.unique(first).tolist()
        pages: set[int] = set()
        for f, l in zip(first.tolist(), last.tolist()):
            pages.update(range(f, l + 1))
        return sorted(pages)

    # -- TrunkStorage API -------------------------------------------------

    def read(self, start: int, end: int) -> bytes:
        self._touch_range(start, end, dirty=False)
        return self._mm[start:end]

    def write(self, start: int, data) -> None:
        n = len(data)
        if not n:
            return
        self._touch_range(start, start + n, dirty=True)
        self._mm[start:start + n] = data

    def view(self, start: int, end: int) -> memoryview:
        # The view is writable, so conservatively dirty its pages; they
        # stay pinned against eviction until the next epoch bump so the
        # holder of the view never races a writeback.
        self._touch_range(start, end, dirty=True)
        for page in self._span_pages([start], [end]):
            self._pins[page] = self._pins.get(page, 0) + 1
        self._g_pinned.set(len(self._pins))
        return memoryview(self._mm)[start:end]

    def as_ndarray(self) -> np.ndarray:
        if self._array is None:
            self._array = np.frombuffer(self._mm, dtype=np.uint8)
        return self._array

    def touch_spans(self, starts, limits) -> None:
        for page in self._span_pages(starts, limits):
            self._touch_page(page, dirty=False)

    def pin_spans(self, starts, limits) -> bool:
        pages = self._span_pages(starts, limits)
        fresh = [p for p in pages if p not in self._pins]
        if len(fresh) + len(self._pins) > self._budget:
            self._m_fallback.inc()
            return False
        for page in pages:
            self._touch_page(page, dirty=False)
            self._pins[page] = self._pins.get(page, 0) + 1
        self._g_pinned.set(len(self._pins))
        return True

    def release_pins(self) -> None:
        if self._pins:
            self._pins.clear()
            self._g_pinned.set(0)
            self._evict_to_budget()

    def flush(self) -> int:
        written = 0
        for page in sorted(self._dirty):
            self._writeback(page)
            written += 1
        self._dirty.clear()
        return written

    def close(self) -> None:
        self._array = None
        try:
            self._mm.close()
        except BufferError:
            # numpy span views still alias the mapping; the OS reclaims
            # it at process exit.
            pass

    def unlink(self) -> None:
        self.close()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _remove_quietly(self.path)


def make_trunk_storage(trunk_id: int, params, registry=None,
                       arena=None, spill_dir=None) -> TrunkStorage:
    """Build the storage tier a trunk's params ask for.

    An explicitly provided ``arena`` (the shared-memory execution
    backend pre-allocates OS segments) always gets resident storage —
    paging and cross-process sharing are mutually exclusive backings.
    """
    if arena is not None or params.storage == "resident":
        if arena is None:
            arena = BytesArena(params.trunk_size)
        return ResidentStorage(arena)
    if params.storage == "paged":
        return PagedStorage(trunk_id, params, registry=registry,
                            spill_dir=spill_dir)
    raise ConfigError(f"unknown trunk storage {params.storage!r}")
