"""The shared addressing table (Section 3, Figure 3; maintenance in 6.2).

Global addressing works in two hops: a 64-bit UID is hashed to a p-bit
trunk index ``i``, and slot ``i`` of the addressing table names the machine
currently hosting memory trunk ``i``.  Because the table is the unit of
consistency for the whole cloud, the paper keeps a *primary* replica on the
leader machine, persists it to TFS before committing updates, and lets every
machine cache a copy that it re-syncs when an access fails.

This module implements the table itself plus the relocation policies used
when machines join or leave.  Replication, persistence and the failure
protocol live in :mod:`repro.cluster`.
"""

from __future__ import annotations

import json

import numpy as np

from ..errors import AddressingError
from ..utils.hashing import trunk_of, trunk_of_array


class AddressingTable:
    """Maps each of the 2**p memory trunks to a hosting machine.

    The table is versioned: every mutation bumps ``version`` so cached
    replicas can detect staleness (machines "sync up with the primary
    addressing table replica when [they fail] to load a data item").
    """

    def __init__(self, trunk_bits: int, machines):
        self.trunk_bits = trunk_bits
        machines = list(machines)
        if not machines:
            raise AddressingError("addressing table needs at least one machine")
        self.version = 1
        self._slots: list[int] = [
            machines[i % len(machines)] for i in range(2 ** trunk_bits)
        ]

    # -- lookups -------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    def machine_for_trunk(self, trunk_id: int) -> int:
        try:
            return self._slots[trunk_id]
        except IndexError:
            raise AddressingError(f"trunk {trunk_id} out of range") from None

    def machine_for_cell(self, cell_id: int) -> int:
        """Resolve the machine hosting ``cell_id`` (hash, then table)."""
        return self._slots[trunk_of(cell_id, self.trunk_bits)]

    def machines_for_cells(self, cell_ids) -> np.ndarray:
        """Vectorized :meth:`machine_for_cell` over a UID array.

        One ``trunk_of_array`` hash pass plus one table take — the
        ownership-grouping primitive of the batched traversal path.  The
        slot array is cached and rebuilt whenever ``version`` moves.
        """
        cached = getattr(self, "_slots_array", None)
        if cached is None or cached[0] != self.version:
            cached = (self.version, np.asarray(self._slots, dtype=np.int64))
            self._slots_array = cached
        trunks = trunk_of_array(cell_ids, self.trunk_bits).astype(np.int64)
        return cached[1][trunks]

    def trunks_of(self, machine_id: int) -> list[int]:
        """All trunk ids currently hosted by ``machine_id``."""
        return [t for t, m in enumerate(self._slots) if m == machine_id]

    def machines(self) -> list[int]:
        """Distinct machines referenced by the table, sorted."""
        return sorted(set(self._slots))

    def load_per_machine(self) -> dict[int, int]:
        """Trunk count per machine — the balance metric for relocation."""
        counts: dict[int, int] = {}
        for machine in self._slots:
            counts[machine] = counts.get(machine, 0) + 1
        return counts

    # -- membership changes ----------------------------------------------

    def reassign(self, trunk_id: int, machine_id: int) -> None:
        """Point one slot at a new machine (used by targeted recovery)."""
        if not 0 <= trunk_id < len(self._slots):
            raise AddressingError(f"trunk {trunk_id} out of range")
        self._slots[trunk_id] = machine_id
        self.version += 1

    def remove_machine(self, machine_id: int, survivors) -> dict[int, int]:
        """Redistribute a failed machine's trunks over ``survivors``.

        Returns ``{trunk_id: new_machine}`` for every relocated trunk.  The
        survivors with the fewest trunks receive new ones first so load
        stays balanced — the paper "reloads the memory trunks it owns from
        the TFS to other alive machines".
        """
        survivors = [m for m in survivors if m != machine_id]
        if not survivors:
            raise AddressingError("no surviving machines to take over trunks")
        counts = self.load_per_machine()
        loads = {m: counts.get(m, 0) for m in survivors}
        moves: dict[int, int] = {}
        for trunk_id, owner in enumerate(self._slots):
            if owner != machine_id:
                continue
            target = min(loads, key=lambda m: (loads[m], m))
            self._slots[trunk_id] = target
            loads[target] += 1
            moves[trunk_id] = target
        if moves:
            self.version += 1
        return moves

    def add_machine(self, machine_id: int) -> dict[int, int]:
        """Relocate trunks onto a newly joined machine.

        Steals trunks from the most loaded machines until the newcomer
        holds its fair share (slot_count / machine_count, rounded down).
        Returns ``{trunk_id: machine_id}`` for the relocated trunks.
        """
        current = set(self._slots)
        if machine_id in current:
            raise AddressingError(f"machine {machine_id} already present")
        fair_share = len(self._slots) // (len(current) + 1)
        moves: dict[int, int] = {}
        loads = self.load_per_machine()
        while len(moves) < fair_share:
            donor = max(loads, key=lambda m: (loads[m], m))
            if loads[donor] <= 1:
                break
            trunk_id = next(
                t for t, m in enumerate(self._slots)
                if m == donor and t not in moves
            )
            self._slots[trunk_id] = machine_id
            loads[donor] -= 1
            moves[trunk_id] = machine_id
        if moves:
            self.version += 1
        return moves

    # -- replication & persistence ----------------------------------------

    def copy(self) -> "AddressingTable":
        """An independent replica (what each slave caches locally)."""
        replica = AddressingTable.__new__(AddressingTable)
        replica.trunk_bits = self.trunk_bits
        replica.version = self.version
        replica._slots = list(self._slots)
        return replica

    def sync_from(self, primary: "AddressingTable") -> bool:
        """Pull the primary's state if it is newer; True if updated."""
        if primary.version <= self.version:
            return False
        self.trunk_bits = primary.trunk_bits
        self._slots = list(primary._slots)
        self.version = primary.version
        return True

    def to_bytes(self) -> bytes:
        """Serialise for the persistent TFS replica (Section 6.2)."""
        return json.dumps({
            "trunk_bits": self.trunk_bits,
            "version": self.version,
            "slots": self._slots,
        }).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "AddressingTable":
        doc = json.loads(payload.decode("utf-8"))
        table = cls.__new__(cls)
        table.trunk_bits = doc["trunk_bits"]
        table.version = doc["version"]
        table._slots = list(doc["slots"])
        if len(table._slots) != 2 ** table.trunk_bits:
            raise AddressingError("corrupt addressing table image")
        return table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AddressingTable):
            return NotImplemented
        return (self.trunk_bits == other.trunk_bits
                and self._slots == other._slots)

    def __repr__(self) -> str:
        return (f"AddressingTable(v{self.version}, {self.slot_count} slots, "
                f"{len(self.machines())} machines)")
