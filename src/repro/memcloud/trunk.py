"""Memory trunks with circular memory management (Sections 3 and 6.1).

A trunk is a contiguous reserved address space (a ``bytearray`` here, a 2 GB
VirtualAlloc reservation in the paper) holding variable-length cells plus a
hash table locating them.  Allocation follows the paper's circular scheme:

* New cells are appended at ``append_head``; in most cases allocation is a
  pointer bump.
* Pages are *committed* lazily as the head advances (tracked per page so the
  reservation ablation can report committed memory honestly).
* Updates that outgrow their slot are reallocated at the head; the old slot
  becomes garbage.  The *short-lived reservation* mechanism over-allocates
  growing cells by ``reservation_factor`` so repeated growth does not keep
  relocating them; unused reservations are reclaimed by the next defrag.
* As cells at the ``committed_tail`` die, the tail advances over the dead
  space, turning garbage back into allocatable room without any copying.
* When the head reaches the end of the trunk it wraps to offset 0, skipping
  a tail gap — the "endless circular movement" of Figure 11.  Wrapping only
  needs the tail to have moved off offset 0, so a steady churn workload
  cycles around the trunk indefinitely without ever compacting.
* A defragmentation pass compacts live cells, drops reservations, releases
  pages outside the live region and resets the tail — the heavyweight
  fallback for when garbage is scattered *between* live cells rather than
  behind the tail.

Every cell carries a 16-byte in-arena header (UID, live size, reserved
size), matching the 16 bytes/cell the paper's memory model in Section 5.4
charges for "storing and accessing the UID".

The layout invariant the allocator maintains: every byte circularly inside
``[committed_tail, append_head)`` is either part of a live cell footprint
or counted in ``garbage_bytes`` (the end gap included once wrapped); every
byte outside that span is free.  ``_advance_tail`` is the only operation
that converts garbage back to free space without a compaction pass.

Allocator events (allocations, wraps, tail advances, defrag passes and
aborts, relocations) are recorded in a :mod:`repro.obs` registry so the
benchmarks and the shell can watch allocator behaviour under load.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..config import MemoryParams
from ..errors import CellNotFoundError, TrunkFullError
from ..obs import MetricsRegistry, get_registry
from ..utils.arrays import gather_ranges
from .hashtable import make_trunk_hashtable
from .locks import SpinLock
from .storage import ResidentStorage, TrunkStorage, make_trunk_storage

CELL_HEADER_BYTES = 16
_HEADER = struct.Struct("<QII")  # uid, live size, reserved size
# Same 16-byte layout as _HEADER, for pre-packing a whole batch at once.
_HEADER_DTYPE = np.dtype([("uid", "<u8"), ("size", "<u4"),
                          ("reserved", "<u4")])


@dataclass(slots=True)
class _CellEntry:
    """In-index record for one cell: where its payload lives."""

    uid: int
    offset: int      # payload offset (header is at offset - 16)
    size: int        # live payload bytes
    reserved: int    # payload capacity (>= size)
    # Created on first use: an OS lock object per cell is the single
    # largest constant in bulk loading, and freshly loaded cells are
    # never contended.  Every access runs under the trunk mutex, so the
    # lazy creation cannot race.
    lock: SpinLock | None = None

    def cell_lock(self, factory=SpinLock) -> SpinLock:
        if self.lock is None:
            self.lock = factory()
        return self.lock

    @property
    def footprint(self) -> int:
        return CELL_HEADER_BYTES + self.reserved


@dataclass(frozen=True)
class TrunkStats:
    """Snapshot of a trunk's memory accounting."""

    cell_count: int
    live_bytes: int        # headers + live payload
    reserved_bytes: int    # headers + reserved payload (footprints)
    garbage_bytes: int     # dead regions awaiting reclamation
    committed_bytes: int   # pages currently committed
    trunk_size: int        # reserved address space
    defrag_passes: int
    relocations: int       # cells moved because growth outran reservation
    wraps: int = 0         # head wrapped into reclaimed tail space
    tail_advances: int = 0  # tail moved over dead space without compaction
    defrag_aborts: int = 0  # passes abandoned because a cell was pinned
    inplace_resizes: int = 0  # resizes served without copying the payload

    @property
    def utilization(self) -> float:
        """Live data as a fraction of committed memory."""
        if not self.committed_bytes:
            return 1.0
        return self.live_bytes / self.committed_bytes


class TrunkSpans(NamedTuple):
    """Zero-copy payload spans plus the structural epoch they belong to.

    ``arena[starts[i]:limits[i]]`` is UID ``i``'s payload.  ``epoch`` is
    the trunk's mutation epoch at fetch time; consumers compare it against
    :attr:`MemoryTrunk.mutation_epoch` before trusting the view (see
    :exc:`~repro.errors.StaleSpanError`).
    """

    arena: np.ndarray
    starts: np.ndarray
    limits: np.ndarray
    epoch: int


class MemoryTrunk:
    """One memory trunk: a circular arena plus its hash table.

    Structural operations (allocation, index updates, defragmentation)
    are serialised by a per-trunk mutex.  This is the paper's trunk-level
    parallelism: workers that partition the key space by trunk never
    contend on it (Section 3's "without any overhead of locking" refers
    to cross-trunk traffic), while the per-cell spin locks handle
    fine-grained pinning within a trunk.
    """

    def __init__(self, trunk_id: int, params: MemoryParams | None = None,
                 registry: MetricsRegistry | None = None,
                 arena=None, lock_factory=SpinLock,
                 storage: TrunkStorage | None = None, spill_dir=None):
        self.trunk_id = trunk_id
        self.params = params or MemoryParams()
        # Re-entrant: put() may trigger defragment() internally.
        self._mutex = threading.RLock()
        obs = registry if registry is not None else get_registry()
        self.obs = obs
        if storage is None:
            storage = make_trunk_storage(
                trunk_id, self.params, registry=obs, arena=arena,
                spill_dir=spill_dir if spill_dir is not None
                else self.params.spill_dir,
            )
        self._storage = storage
        # Back-compat surface: `.arena` is the resident arena object
        # (BytesArena / SharedMemoryArena) when there is one, else the
        # storage itself — both expose `.shared` and `.unlink()`.
        self.arena = (storage.arena if isinstance(storage, ResidentStorage)
                      else storage)
        if len(storage) != self.params.trunk_size:
            raise ValueError(
                f"storage holds {len(storage)} bytes, trunk needs "
                f"{self.params.trunk_size}"
            )
        self._lock_factory = lock_factory
        self._index = make_trunk_hashtable(self.params.hashtable_storage)
        self._entries: list[_CellEntry | None] = []
        self._span_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._mutation_epoch = 0
        self._free_slots: list[int] = []
        self._append_head = 0
        self._committed_tail = 0       # oldest live byte (circular start)
        self._wrapped = False          # head has wrapped behind the tail
        self._end_gap = 0              # skipped bytes at arena end after wrap
        self._garbage_bytes = 0
        self._committed_pages: set[int] = set()
        self._defrag_passes = 0
        self._defrag_aborts = 0
        self._relocations = 0
        self._wraps = 0
        self._tail_advances = 0
        self._inplace_resizes = 0
        label = {"trunk": trunk_id}
        self._m_alloc = obs.counter("trunk.alloc.total", **label)
        self._m_wrap = obs.counter("trunk.wrap.total", **label)
        self._m_tail = obs.counter("trunk.tail_advance.bytes", **label)
        self._m_defrag = obs.counter("trunk.defrag.passes", **label)
        self._m_defrag_abort = obs.counter("trunk.defrag.aborted", **label)
        self._m_reloc = obs.counter("trunk.relocations.total", **label)
        self._m_inplace = obs.counter("trunk.resize.inplace.total", **label)
        self._m_span_fallback = obs.counter("trunk.span.copy_fallback.total",
                                            **label)
        self._m_layout_migrated = obs.counter("trunk.layout.migrated",
                                              **label)
        self._m_layout_skipped = obs.counter("trunk.layout.skipped", **label)
        self._m_layout_before = obs.counter("trunk.layout.bytes_before",
                                            **label)
        self._m_layout_after = obs.counter("trunk.layout.bytes_after",
                                           **label)
        self._g_garbage = obs.gauge("trunk.garbage.bytes", **label)
        self._g_util = obs.gauge("trunk.utilization", **label)

    @property
    def storage(self) -> TrunkStorage:
        """The byte backing tier (resident or paged)."""
        return self._storage

    # -- public API ----------------------------------------------------------

    def __len__(self) -> int:
        with self._mutex:
            return len(self._index)

    def __contains__(self, uid: int) -> bool:
        with self._mutex:
            return uid in self._index

    def uids(self):
        """All cell UIDs in the trunk (snapshot, arbitrary order)."""
        with self._mutex:
            return list(self._index.keys())

    def put(self, uid: int, value: bytes) -> None:
        """Insert or replace the cell ``uid`` with ``value``."""
        with self._mutex:
            entry = self._lookup(uid)
            if entry is None:
                self._insert(uid, value)
            else:
                self._update(entry, value)

    def get(self, uid: int) -> bytes:
        """Return a copy of the cell's payload."""
        with self._mutex:
            entry = self._require(uid)
            return self._storage.read(entry.offset,
                                      entry.offset + entry.size)

    def reencode_cell(self, uid: int, expected: bytes,
                      replacement: bytes) -> bool:
        """Compare-and-swap a cell's bytes (the layout re-encoder's CAS).

        Replaces the cell's payload with ``replacement`` only if it still
        byte-equals ``expected`` *and* no accessor currently holds its
        spin lock.  The swap goes through the normal :meth:`_update`
        mutation path, so the mutation epoch bumps, outstanding zero-copy
        spans go stale, and epoch-keyed serve caches invalidate — a
        migrated cell can never serve a stale answer.  Returns whether
        the swap was applied; a ``False`` means the cell changed (or is
        busy) since the caller encoded ``replacement``, and the caller
        simply retries on a later pass.
        """
        with self._mutex:
            entry = self._lookup(uid)
            if entry is None:
                self._m_layout_skipped.inc()
                return False
            lock = entry.cell_lock(self._lock_factory)
            if not lock.try_acquire():
                # An accessor is mid-mutation on this cell: its exit
                # write supersedes whatever we encoded.  Skip, don't spin.
                self._m_layout_skipped.inc()
                return False
            # Safe to release before _update re-acquires: handing out a
            # cell lock requires this mutex (lock_of), which we hold.
            lock.release()
            current = self._storage.read(entry.offset,
                                         entry.offset + entry.size)
            if bytes(current) != bytes(expected):
                self._m_layout_skipped.inc()
                return False
            size_before = entry.size
            self._update(entry, replacement)
            self._m_layout_migrated.inc()
            self._m_layout_before.inc(size_before)
            self._m_layout_after.inc(len(replacement))
            return True

    # -- bulk fast path ------------------------------------------------------

    def reserve(self, extra_cells: int) -> None:
        """Pre-size the index for ``extra_cells`` additional cells."""
        with self._mutex:
            self._index.reserve(len(self._index) + extra_cells)

    def bulk_put(self, uids, payloads, presize: bool = True) -> None:
        """Insert or replace a batch of cells under one lock acquisition.

        Semantically identical to calling :meth:`put` once per pair in
        order — same stored bytes, same garbage/committed accounting, and
        (with ``presize=False``) bit-identical hash-table probe counters.
        The fast path lays a run of fresh cells out with one header
        pre-packing pass and a single arena write; batches that overwrite
        existing cells, repeat a UID, or need to wrap fall back to the
        scalar code path cell by cell (still under the single lock).

        ``presize`` grows the index up front so the batch never resizes
        incrementally; because probe lengths depend on table capacity at
        insertion time, a pre-sized load's ``probe_count`` can differ from
        an incrementally-grown one (contents and all trunk accounting do
        not).
        """
        if len(uids) != len(payloads):
            raise ValueError(
                f"bulk_put got {len(uids)} uids but {len(payloads)} payloads"
            )
        if not len(uids):
            return
        uids = [int(uid) for uid in uids]
        with self._mutex:
            if presize:
                self._index.reserve(len(self._index) + len(uids))
            done = self._bulk_insert_fresh(uids, payloads, presize)
            for i in range(done, len(uids)):
                entry = self._lookup(uids[i])
                if entry is None:
                    self._insert(uids[i], payloads[i])
                else:
                    self._update(entry, payloads[i])

    def _bulk_insert_fresh(self, uids: list[int], payloads,
                           presize: bool = False) -> int:
        """Batch-lay-out the longest eligible prefix; returns cells done.

        Eligible means: no UID repeats within the batch, none already
        present, and the prefix fits the straight-line region at the
        append head (no wrap, no tail advance, no defrag) — in that
        regime the scalar path would perform exactly these pointer-bump
        allocations, so one concatenated arena write is equivalent.

        ``presize`` additionally allows the index update to go through
        the hash table's vectorized batch insert, which is free to lay
        collided keys out in a different probe order (the pre-sized
        contract already waives probe-count equality).
        """
        if len(set(uids)) != len(uids):
            return 0
        if len(self._index) and any(self._index.has_key(u) for u in uids):
            return 0
        self._invalidate_spans()
        if self._wrapped:
            available = self._committed_tail - self._append_head
        else:
            available = self.params.trunk_size - self._append_head
        all_sizes = np.fromiter((len(p) for p in payloads),
                                dtype=np.int64, count=len(payloads))
        footprint_ends = np.cumsum(all_sizes + CELL_HEADER_BYTES)
        count = int(np.searchsorted(footprint_ends, available, side="right"))
        if count == 0:
            return 0
        total = int(footprint_ends[count - 1])
        sizes = all_sizes[:count]
        headers = np.zeros(count, dtype=_HEADER_DTYPE)
        headers["uid"] = np.array(uids[:count], dtype=np.uint64)
        headers["size"] = sizes
        headers["reserved"] = sizes
        header_bytes = headers.tobytes()
        parts = [b""] * (2 * count)
        parts[0::2] = (header_bytes[i * CELL_HEADER_BYTES:
                                    (i + 1) * CELL_HEADER_BYTES]
                       for i in range(count))
        parts[1::2] = payloads[:count]
        start = self._append_head
        # Stream the fresh run through the storage tier in bounded
        # chunks: a paged backing writes pages sequentially and evicts
        # behind the cursor instead of joining the whole batch in RAM.
        self._storage.write_stream(start, parts)
        self._append_head = start + total
        self._commit_range(start, start + total)
        self._register_fresh(uids[:count], sizes, footprint_ends[:count],
                             start, presize)
        return count

    def _register_fresh(self, uids: list[int], sizes: np.ndarray,
                        footprint_ends: np.ndarray, start: int,
                        presize: bool) -> None:
        """Index and account a fresh run already laid out at ``start``.

        Shared between :meth:`_bulk_insert_fresh` (which wrote the bytes
        itself) and :meth:`adopt_fresh_cells` (bytes written by a worker
        process through the shared arena); both must produce identical
        entries, metrics and probe accounting.
        """
        count = len(uids)
        self._m_alloc.inc(count)
        # Payload offset of cell i = start + footprint_ends[i] - size_i
        # (its own header sits just below the payload).
        offsets = (start + (footprint_ends - sizes)).tolist()
        size_list = sizes.tolist()
        if self._free_slots:
            slots = []
            for uid, payload_offset, size in zip(uids, offsets, size_list):
                entry = _CellEntry(uid, payload_offset, size, size)
                if self._free_slots:
                    slot = self._free_slots.pop()
                    self._entries[slot] = entry
                else:
                    slot = len(self._entries)
                    self._entries.append(entry)
                slots.append(slot)
        else:
            base = len(self._entries)
            self._entries.extend(
                _CellEntry(uid, payload_offset, size, size)
                for uid, payload_offset, size in zip(uids, offsets,
                                                     size_list)
            )
            slots = list(range(base, base + count))
        index = self._index
        if not (presize and hasattr(index, "bulk_insert_fresh")
                and index.bulk_insert_fresh(uids, slots)):
            for uid, slot in zip(uids, slots):
                index.insert_fresh(uid, slot)

    # -- parallel bulk load (repro.compute.shm) ------------------------------

    def _pristine_locked(self) -> bool:
        return not (len(self._index) or self._append_head or self._wrapped)

    @property
    def is_pristine(self) -> bool:
        """True if nothing was ever stored here — the precondition for
        the parallel bulk-load path (fresh-run layout from offset 0)."""
        with self._mutex:
            return self._pristine_locked()

    def bulk_write_fresh(self, uids, payloads) -> np.ndarray:
        """Write a fresh batch's headers and payloads into the arena only.

        Worker-process half of the parallel bulk load: the byte layout is
        identical to :meth:`_bulk_insert_fresh` starting from an empty
        trunk, but no index entries, metrics, or page accounting are
        touched — the worker's copies of those are discarded with the
        fork, and the coordinator re-creates them authoritatively via
        :meth:`adopt_fresh_cells`.  Returns the payload sizes the
        coordinator needs for adoption.
        """
        with self._mutex:
            if not self._pristine_locked():
                raise ValueError(
                    f"trunk {self.trunk_id}: bulk_write_fresh needs an "
                    f"empty trunk"
                )
            if len(set(uids)) != len(uids):
                raise ValueError("bulk_write_fresh got duplicate uids")
            sizes = np.fromiter((len(p) for p in payloads),
                                dtype=np.int64, count=len(payloads))
            footprint_ends = np.cumsum(sizes + CELL_HEADER_BYTES)
            total = int(footprint_ends[-1]) if len(sizes) else 0
            if total > self.params.trunk_size:
                raise TrunkFullError(
                    f"trunk {self.trunk_id}: fresh batch of {total} bytes "
                    f"exceeds trunk size {self.params.trunk_size}"
                )
            count = len(sizes)
            headers = np.zeros(count, dtype=_HEADER_DTYPE)
            headers["uid"] = np.array([int(u) for u in uids],
                                      dtype=np.uint64)
            headers["size"] = sizes
            headers["reserved"] = sizes
            header_bytes = headers.tobytes()
            parts = [b""] * (2 * count)
            parts[0::2] = (header_bytes[i * CELL_HEADER_BYTES:
                                        (i + 1) * CELL_HEADER_BYTES]
                           for i in range(count))
            parts[1::2] = payloads
            self._storage.write_stream(0, parts)
            self._append_head = total
            return sizes

    def adopt_fresh_cells(self, uids, sizes,
                          presize: bool = True) -> None:
        """Adopt cells a worker laid out through the shared arena.

        Coordinator half of the parallel bulk load: the bytes are already
        in place (written by :meth:`bulk_write_fresh` in a forked worker
        sharing this arena), so this replays exactly the accounting side
        of a ``bulk_put`` on an empty trunk — index presize, epoch bump,
        page commits, allocation metrics, entries.  After adoption the
        trunk is indistinguishable from one loaded in-process.
        """
        uids = [int(uid) for uid in uids]
        if not uids:
            return
        with self._mutex:
            if not self._pristine_locked():
                raise ValueError(
                    f"trunk {self.trunk_id}: adopt_fresh_cells needs an "
                    f"empty trunk"
                )
            sizes = np.asarray(sizes, dtype=np.int64)
            if presize:
                self._index.reserve(len(uids))
            self._invalidate_spans()
            footprint_ends = np.cumsum(sizes + CELL_HEADER_BYTES)
            total = int(footprint_ends[-1])
            self._append_head = total
            self._commit_range(0, total)
            self._register_fresh(uids, sizes, footprint_ends, 0, presize)

    def bulk_get(self, uids) -> list[bytes]:
        """Payload copies for a batch of UIDs, one lock acquisition.

        Index slots resolve through one vectorized
        :meth:`~repro.memcloud.hashtable.TrunkHashTable.bulk_lookup`
        pass; probe accounting matches a loop of scalar :meth:`get`
        calls.  Raises :class:`CellNotFoundError` for the first missing
        UID in input order, like the scalar loop would.
        """
        with self._mutex:
            slots, found = self._index.bulk_lookup(uids)
            if not found.all():
                missing = int(np.flatnonzero(~found)[0])
                raise CellNotFoundError(int(uids[missing]))
            entries = self._entries
            read = self._storage.read
            out = []
            append = out.append
            for slot in slots.tolist():
                entry = entries[slot]
                append(read(entry.offset, entry.offset + entry.size))
            return out

    def bulk_get_packed(self, uids) -> tuple[np.ndarray, np.ndarray]:
        """Payloads for a batch of UIDs as one packed ``(buffer, bounds)``.

        ``buffer[bounds[i]:bounds[i + 1]]`` is UID ``i``'s payload.  Same
        lookup and accounting as :meth:`bulk_get`, but the payload bytes
        are assembled with a single vectorized gather from the arena —
        no per-cell ``bytes`` object is ever created.
        """
        with self._mutex:
            arena, starts, limits = self._spans_locked(uids)
            sizes = limits - starts
            bounds = np.zeros(len(starts) + 1, dtype=np.int64)
            np.cumsum(sizes, out=bounds[1:])
            return gather_ranges(arena, starts, sizes), bounds

    def bulk_get_spans(self, uids) -> TrunkSpans:
        """Zero-copy payload spans: ``(arena_view, starts, limits, epoch)``.

        ``arena_view[starts[i]:limits[i]]`` is UID ``i``'s payload, read
        straight out of the trunk arena — nothing is copied.  The view is
        only valid until the next structural change on this trunk (a put,
        remove, resize, or defragmentation relocates cells); it exists
        for query execution, which decodes a frontier batch immediately
        after fetching it.  The returned epoch lets decoders verify the
        view is still current (:exc:`~repro.errors.StaleSpanError`).
        Lookup accounting matches :meth:`bulk_get`.

        On a paged trunk the pages under the spans are *pinned* against
        eviction until the next structural epoch bump (or an explicit
        :meth:`release_span_pins`), so the decode that follows cannot
        fault its own input back out.  If the batch's page working set
        exceeds the page budget, pinning refuses and the spans degrade
        to packed copies — same bytes, same epoch guard, no aliasing.
        """
        with self._mutex:
            arena, starts, limits = self._spans_locked(uids)
            if not self._storage.pin_spans(starts, limits):
                self._m_span_fallback.inc()
                sizes = limits - starts
                bounds = np.zeros(len(starts) + 1, dtype=np.int64)
                np.cumsum(sizes, out=bounds[1:])
                return TrunkSpans(gather_ranges(arena, starts, sizes),
                                  bounds[:-1], bounds[1:],
                                  self._mutation_epoch)
            return TrunkSpans(arena, starts, limits, self._mutation_epoch)

    def release_span_pins(self) -> None:
        """Release page pins taken by :meth:`bulk_get_spans` (no-op on
        resident storage).  Consumers call this once a span group has
        been decoded; any structural mutation releases them too."""
        with self._mutex:
            self._storage.release_pins()

    def _spans_locked(self, uids
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        slots, found = self._index.bulk_lookup(uids)
        if not found.all():
            missing = int(np.flatnonzero(~found)[0])
            raise CellNotFoundError(int(uids[missing]))
        offsets, sizes = self._entry_spans()
        starts = offsets[slots]
        limits = starts + sizes[slots]
        self._storage.touch_spans(starts, limits)
        return self._storage.as_ndarray(), starts, limits

    def _entry_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-slot (offset, size) arrays, rebuilt lazily after writes."""
        cache = self._span_cache
        if cache is None:
            n = len(self._entries)
            offsets = np.zeros(n, dtype=np.int64)
            sizes = np.zeros(n, dtype=np.int64)
            for slot, entry in enumerate(self._entries):
                if entry is not None:
                    offsets[slot] = entry.offset
                    sizes[slot] = entry.size
            cache = self._span_cache = (offsets, sizes)
        return cache

    def _invalidate_spans(self) -> None:
        """Drop the span cache and advance the structural epoch.

        Called wherever cells may move, grow, or die.  Outstanding
        zero-copy spans carry the epoch they were fetched at, so after
        this bump their consumers refuse to decode (``StaleSpanError``)
        instead of silently reading relocated bytes.  Span-page pins die
        with their epoch: whatever mutated may now evict freely.
        """
        self._span_cache = None
        self._mutation_epoch += 1
        self._storage.release_pins()

    @property
    def mutation_epoch(self) -> int:
        """Structural-change counter guarding zero-copy spans.

        Read without the mutex: a single int load is atomic under the
        GIL, and the lock could not make the value any less stale — it
        may advance the instant after release either way.  Keeping this
        lock-free matters because :meth:`MemoryCloud.epoch_vector` reads
        it once per trunk on every serving drain."""
        return self._mutation_epoch

    def touch(self) -> None:
        """Record an in-place payload mutation that bypassed put().

        Cell accessors write fixed-size fields straight into the arena
        (no relocation, no put), which leaves offsets valid but changes
        cell *content*.  Anything caching decoded values keyed on
        :attr:`mutation_epoch` — the serving layer's hub/result caches,
        outstanding zero-copy spans — must observe such writes too, so
        they share the same epoch bump as structural changes.
        """
        with self._mutex:
            self._invalidate_spans()

    def get_view(self, uid: int) -> memoryview:
        """Zero-copy view of the cell payload.

        The caller must hold the cell's spin lock (see :meth:`lock_of`) for
        as long as the view is used: defragmentation relocates cells and a
        stale view would read garbage.  Cell accessors in :mod:`repro.tsl`
        wrap this in a context manager that takes the lock.
        """
        with self._mutex:
            entry = self._require(uid)
            return self._storage.view(entry.offset,
                                      entry.offset + entry.size)

    def lock_of(self, uid: int) -> SpinLock:
        """The spin lock associated with the cell (Section 3)."""
        with self._mutex:
            return self._require(uid).cell_lock(self._lock_factory)

    def remove(self, uid: int) -> None:
        """Delete a cell; its region becomes garbage until reclaimed."""
        with self._mutex:
            entry = self._require(uid)
            self._remove_locked(entry)
        # defrag trigger outside is fine; re-enter via mutex
        self._maybe_defrag()

    def _remove_locked(self, entry: _CellEntry) -> None:
        self._invalidate_spans()
        with entry.cell_lock(self._lock_factory):
            slot = self._index.get(entry.uid)
            assert slot is not None
            self._index.delete(entry.uid)
            self._entries[slot] = None
            self._free_slots.append(slot)
            self._garbage_bytes += entry.footprint
            self._g_garbage.set(self._garbage_bytes)

    def size_of(self, uid: int) -> int:
        """Live payload size of the cell in bytes."""
        with self._mutex:
            return self._require(uid).size

    def resize(self, uid: int, new_size: int, fill: int = 0) -> None:
        """Grow or shrink a cell in place where possible.

        Within the reserved slot the resize touches only the grown region
        and the header — no payload copy at all.  Growth beyond the slot
        relocates the cell (counting a relocation and leaving garbage
        behind), which is exactly the traffic the short-lived reservation
        mechanism of Section 6.1 is designed to dampen.
        """
        if new_size < 0:
            raise ValueError("cell size cannot be negative")
        with self._mutex:
            entry = self._require(uid)
            self._invalidate_spans()
            if new_size <= entry.reserved:
                with entry.cell_lock(self._lock_factory):
                    if new_size > entry.size:
                        self._storage.write(
                            entry.offset + entry.size,
                            bytes([fill]) * (new_size - entry.size),
                        )
                    entry.size = new_size
                    self._write_header(
                        entry.offset - CELL_HEADER_BYTES,
                        entry.uid, entry.size, entry.reserved,
                    )
                self._inplace_resizes += 1
                self._m_inplace.inc()
                return
            # Outgrew the reservation: one payload copy, then relocate.
            grown = (
                self._storage.read(entry.offset, entry.offset + entry.size)
                + bytes([fill]) * (new_size - entry.size)
            )
            self._update(entry, grown)

    def stats(self) -> TrunkStats:
        with self._mutex:
            return self._stats_locked()

    def _stats_locked(self) -> TrunkStats:
        live = sum(
            CELL_HEADER_BYTES + e.size for e in self._entries if e is not None
        )
        reserved = sum(e.footprint for e in self._entries if e is not None)
        stats = TrunkStats(
            cell_count=len(self._index),
            live_bytes=live,
            reserved_bytes=reserved,
            garbage_bytes=self._garbage_bytes,
            committed_bytes=len(self._committed_pages) * self.params.page_size,
            trunk_size=self.params.trunk_size,
            defrag_passes=self._defrag_passes,
            relocations=self._relocations,
            wraps=self._wraps,
            tail_advances=self._tail_advances,
            defrag_aborts=self._defrag_aborts,
            inplace_resizes=self._inplace_resizes,
        )
        self._g_util.set(stats.utilization)
        return stats

    @property
    def mean_probe_length(self) -> float:
        """Hash-conflict metric of the trunk's hash table."""
        return self._index.mean_probe_length

    # -- persistence hooks (used by repro.memcloud.persistence) --------------

    def dump_cells(self):
        """Return (uid, payload bytes) for every live cell (snapshot)."""
        with self._mutex:
            out = []
            for uid, slot in self._index.items():
                entry = self._entries[slot]
                assert entry is not None and entry.uid == uid
                out.append((uid, self._storage.read(
                    entry.offset, entry.offset + entry.size
                )))
            return out

    def load_cells(self, cells) -> None:
        """Bulk-load (uid, payload) pairs into an empty trunk."""
        cells = list(cells)
        self.bulk_put([uid for uid, _ in cells],
                      [payload for _, payload in cells])

    def freeze_image_state(self) -> dict:
        """Full-fidelity allocator snapshot for page-image persistence.

        Returns the raw bytes of every committed page plus all the
        allocator state needed to adopt them verbatim into a pristine
        trunk (:meth:`adopt_image_state`).  Dirty pages are written back
        first — the checkpoint half of the paged tier's writeback
        contract — so a paged trunk's page file on disk matches the
        image at return time.
        """
        with self._mutex:
            self._storage.flush()
            page = self.params.page_size
            size = self.params.trunk_size
            pages = sorted(self._committed_pages)
            cells = []
            for uid, slot in self._index.items():
                entry = self._entries[slot]
                assert entry is not None and entry.uid == uid
                cells.append((uid, entry.offset, entry.size, entry.reserved))
            raw = [self._storage.read(p * page, min(size, (p + 1) * page))
                   for p in pages]
            return {
                "append_head": self._append_head,
                "committed_tail": self._committed_tail,
                "wrapped": self._wrapped,
                "end_gap": self._end_gap,
                "garbage_bytes": self._garbage_bytes,
                "defrag_passes": self._defrag_passes,
                "defrag_aborts": self._defrag_aborts,
                "relocations": self._relocations,
                "wraps": self._wraps,
                "tail_advances": self._tail_advances,
                "inplace_resizes": self._inplace_resizes,
                "page_size": page,
                "pages": pages,
                "cells": cells,
                "raw": raw,
            }

    def adopt_image_state(self, state: dict) -> None:
        """Adopt a :meth:`freeze_image_state` snapshot verbatim.

        The trunk must be pristine and share the image's commit page
        size.  Stored bytes, allocator accounting, and :meth:`stats`
        restore exactly; hash-table probe counters restart from zero
        (the index is rebuilt, not replayed).  Ends with a structural
        epoch bump, so any span cache or page pins from the pristine
        incarnation are dropped.
        """
        with self._mutex:
            if not self._pristine_locked():
                raise ValueError(
                    f"trunk {self.trunk_id}: adopt_image_state needs an "
                    f"empty trunk"
                )
            page = state["page_size"]
            if page != self.params.page_size:
                raise ValueError(
                    f"trunk {self.trunk_id}: image page size {page} != "
                    f"configured {self.params.page_size}"
                )
            for index, raw in zip(state["pages"], state["raw"]):
                self._storage.write(index * page, raw)
            self._committed_pages = set(state["pages"])
            self._append_head = state["append_head"]
            self._committed_tail = state["committed_tail"]
            self._wrapped = bool(state["wrapped"])
            self._end_gap = state["end_gap"]
            self._garbage_bytes = state["garbage_bytes"]
            self._defrag_passes = state["defrag_passes"]
            self._defrag_aborts = state["defrag_aborts"]
            self._relocations = state["relocations"]
            self._wraps = state["wraps"]
            self._tail_advances = state["tail_advances"]
            self._inplace_resizes = state["inplace_resizes"]
            self._g_garbage.set(self._garbage_bytes)
            cells = state["cells"]
            self._index.reserve(len(cells))
            for uid, offset, cell_size, reserved in cells:
                entry = _CellEntry(uid, offset, cell_size, reserved)
                slot = len(self._entries)
                self._entries.append(entry)
                self._index.set(uid, slot)
            self._invalidate_spans()
            self._storage.flush()

    def adopt_epoch(self, floor: int) -> None:
        """Raise the mutation epoch strictly above ``floor``.

        A restored trunk replaces its previous incarnation wholesale;
        carrying the old epoch forward keeps the cloud-wide
        :meth:`MemoryCloud.mutation_epoch` monotonic, so serving-layer
        caches stamped before the restore can never validate as fresh
        against the restored data.
        """
        with self._mutex:
            self._mutation_epoch = max(self._mutation_epoch, floor)
            self._invalidate_spans()

    # -- allocation internals --------------------------------------------

    def _lookup(self, uid: int) -> _CellEntry | None:
        slot = self._index.get(uid)
        if slot is None:
            return None
        entry = self._entries[slot]
        assert entry is not None
        return entry

    def _require(self, uid: int) -> _CellEntry:
        entry = self._lookup(uid)
        if entry is None:
            raise CellNotFoundError(uid)
        return entry

    def _insert(self, uid: int, value: bytes, reserve: bool = False) -> None:
        self._invalidate_spans()
        reserved = len(value)
        if reserve:
            reserved = max(
                reserved, int(len(value) * self.params.reservation_factor)
            )
        offset = self._allocate(CELL_HEADER_BYTES + reserved)
        payload_offset = offset + CELL_HEADER_BYTES
        self._write_cell(offset, uid, value, reserved)
        entry = _CellEntry(uid, payload_offset, len(value), reserved)
        if self._free_slots:
            slot = self._free_slots.pop()
            self._entries[slot] = entry
        else:
            slot = len(self._entries)
            self._entries.append(entry)
        self._index.set(uid, slot)

    def _update(self, entry: _CellEntry, value: bytes) -> None:
        self._invalidate_spans()
        with entry.cell_lock(self._lock_factory):
            if len(value) <= entry.reserved:
                # In-place update; shrinking only adjusts the live size and
                # the slack stays reserved (reclaimed at next defrag).
                self._storage.write(entry.offset, value)
                entry.size = len(value)
                self._write_header(
                    entry.offset - CELL_HEADER_BYTES,
                    entry.uid, entry.size, entry.reserved,
                )
                return
            # Outgrew the slot: relocate with a short-lived reservation.
            self._relocations += 1
            self._m_reloc.inc()
            self._garbage_bytes += entry.footprint
            self._g_garbage.set(self._garbage_bytes)
            slot = self._index.get(entry.uid)
            assert slot is not None
            self._index.delete(entry.uid)
            self._entries[slot] = None
            self._free_slots.append(slot)
        self._insert(entry.uid, value, reserve=True)
        self._maybe_defrag()

    def _allocate(self, footprint: int) -> int:
        """Reserve ``footprint`` bytes at the append head.

        Tries, in escalating order of cost: a pointer bump (possibly
        wrapping into reclaimed tail space), advancing the tail over dead
        cells and retrying, and finally a full defragmentation pass.
        Returns the region's start offset.
        """
        if footprint > self.params.trunk_size:
            raise TrunkFullError(
                f"cell footprint {footprint} exceeds trunk size "
                f"{self.params.trunk_size}"
            )
        offset = self._try_allocate(footprint)
        if offset is None and self._advance_tail():
            offset = self._try_allocate(footprint)
        if offset is None:
            self.defragment()
            offset = self._try_allocate(footprint)
        if offset is None:
            raise TrunkFullError(
                f"trunk {self.trunk_id} cannot fit {footprint} bytes "
                f"(live {self.stats().reserved_bytes}, "
                f"size {self.params.trunk_size})"
            )
        self._m_alloc.inc()
        self._commit_range(offset, offset + footprint)
        return offset

    def _try_allocate(self, footprint: int) -> int | None:
        size = self.params.trunk_size
        if not self._wrapped:
            if self._append_head + footprint <= size:
                offset = self._append_head
                self._append_head += footprint
                return offset
            # Wrap: the slack at the end becomes a skip gap (Figure 11).
            if footprint <= self._committed_tail:
                self._end_gap = size - self._append_head
                self._garbage_bytes += self._end_gap
                self._g_garbage.set(self._garbage_bytes)
                self._wrapped = True
                self._append_head = footprint
                self._wraps += 1
                self._m_wrap.inc()
                return 0
            return None
        if self._append_head + footprint <= self._committed_tail:
            offset = self._append_head
            self._append_head += footprint
            return offset
        return None

    def _advance_tail(self) -> int:
        """Move the tail forward over dead space; returns bytes reclaimed.

        This is the cheap half of the paper's circular scheme: when the
        cells just after the committed tail have been removed (or
        relocated), the span between the old tail and the oldest surviving
        cell is pure garbage, and skipping over it frees that room for the
        head to wrap into — no copying, no defragmentation.
        """
        with self._mutex:
            size = self.params.trunk_size
            old_tail = self._committed_tail
            live = [e for e in self._entries if e is not None]
            if not live:
                reclaimed = self._garbage_bytes
                self._append_head = 0
                self._committed_tail = 0
                self._wrapped = False
                self._end_gap = 0
                self._garbage_bytes = 0
                self._g_garbage.set(0)
                if reclaimed:
                    self._tail_advances += 1
                    self._m_tail.inc(reclaimed)
                return reclaimed

            def circ(start: int) -> int:
                """Circular distance of a cell start from the old tail."""
                if start >= old_tail:
                    return start - old_tail
                return start + size - old_tail

            advanced = min(circ(e.offset - CELL_HEADER_BYTES) for e in live)
            if advanced == 0:
                return 0
            new_tail = (old_tail + advanced) % size
            # Everything between the old and new tail was garbage (live
            # cells never start there, and no footprint spans the tail).
            self._garbage_bytes -= advanced
            assert self._garbage_bytes >= 0
            if self._wrapped and old_tail + advanced >= size:
                # The tail crossed the arena end: the skip gap it passed
                # over dissolves and the layout is linear again.
                self._wrapped = False
                self._end_gap = 0
            self._committed_tail = new_tail
            self._g_garbage.set(self._garbage_bytes)
            self._tail_advances += 1
            self._m_tail.inc(advanced)
            return advanced

    def _write_cell(self, offset: int, uid: int, value: bytes,
                    reserved: int) -> None:
        self._write_header(offset, uid, len(value), reserved)
        self._storage.write(offset + CELL_HEADER_BYTES, value)

    def _write_header(self, offset: int, uid: int, size: int,
                      reserved: int) -> None:
        self._storage.write(offset, _HEADER.pack(uid, size, reserved))

    def _commit_range(self, start: int, end: int) -> None:
        page = self.params.page_size
        for index in range(start // page, (max(end, start + 1) - 1) // page + 1):
            self._committed_pages.add(index)

    # -- defragmentation ---------------------------------------------------

    def _maybe_defrag(self) -> None:
        committed = len(self._committed_pages) * self.params.page_size
        if not committed:
            return
        if self._garbage_bytes / committed < self.params.defrag_trigger_ratio:
            return
        # Circular reclamation first: advancing the tail is O(cells) with
        # no copying, so only compact if scattered garbage remains.
        self._advance_tail()
        if self._garbage_bytes / committed >= self.params.defrag_trigger_ratio:
            self.defragment()

    def defragment(self) -> bool:
        """Compact live cells, drop reservations, release free pages.

        Mirrors the daemon of Section 6.1: key-value pairs are slid
        together, unused short-lived reservations are collected, and pages
        outside the live region are decommitted.  A cell whose spin lock is
        held is *pinned*; the pass is aborted (returns False) and will be
        retried by the next trigger, since compaction cannot move around a
        pinned cell without fragmenting its neighbours.
        """
        with self._mutex:
            return self._defragment_locked()

    def _defragment_locked(self) -> bool:
        self._invalidate_spans()
        live = [e for e in self._entries if e is not None]
        if any(e.lock is not None and e.lock.held for e in live):
            self._defrag_aborts += 1
            self._m_defrag_abort.inc()
            return False
        # Order by current circular position from the committed tail so
        # relative order (and therefore locality) is preserved.
        def circular_key(entry: _CellEntry) -> int:
            start = entry.offset - CELL_HEADER_BYTES
            if start >= self._committed_tail:
                return start
            return start + self.params.trunk_size

        live.sort(key=circular_key)
        images = [
            (e, self._storage.read(e.offset, e.offset + e.size))
            for e in live
        ]
        cursor = 0
        for entry, payload in images:
            entry.reserved = entry.size            # reclaim reservation
            self._write_cell(cursor, entry.uid, payload, entry.reserved)
            entry.offset = cursor + CELL_HEADER_BYTES
            cursor += CELL_HEADER_BYTES + entry.reserved
        self._committed_tail = 0
        self._append_head = cursor
        self._wrapped = False
        self._end_gap = 0
        self._garbage_bytes = 0
        self._g_garbage.set(0)
        # Decommit pages wholly beyond the new head.
        page = self.params.page_size
        last_live_page = (cursor - 1) // page if cursor else -1
        self._committed_pages = {
            p for p in self._committed_pages if p <= last_live_page
        }
        self._defrag_passes += 1
        self._m_defrag.inc()
        return True
