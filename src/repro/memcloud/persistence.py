"""Trunk persistence: backing memory trunks up in TFS (Section 3).

"To support fault-tolerant data persistence, these memory trunks are also
backed up in a shared distributed file system called TFS."  When a machine
fails, its trunks are *reloaded from TFS* onto survivors (Section 6.2);
this module provides the trunk image format and the backup/restore paths
the recovery protocol in :mod:`repro.cluster.recovery` drives.

Two image formats share the magic, distinguished by version:

Version 1 (cell image — resident trunks, and cross-shape recovery):

    magic   4 bytes  b"TRNK"
    version varint   (1)
    trunk_id varint
    count   varint   number of cells
    cells   repeated: uid varint, size varint, payload bytes

Version 2 (page image — paged trunks persist *the page file*, not a
re-encoded cell list; restoring adopts raw pages plus the allocator
state verbatim, so layout, garbage accounting, and stats round-trip):

    magic   4 bytes  b"TRNK"
    version varint   (2)
    trunk_id varint
    state   varints  append_head, committed_tail, wrapped, end_gap,
                     garbage_bytes, defrag counters..., page_size
                     (see _STATE_FIELDS order)
    pages   varint count, then one varint page index each
    cells   varint count, then per cell: uid, offset, size, reserved
    raw     per page: varint length + raw page bytes
"""

from __future__ import annotations

from ..errors import MemoryCloudError
from ..tfs import TrinityFileSystem
from ..utils.varint import decode_varint, encode_varint
from .cloud import MemoryCloud
from .trunk import MemoryTrunk

_MAGIC = b"TRNK"
_FORMAT_VERSION = 1
_PAGE_FORMAT_VERSION = 2

# Serialisation order of the allocator-state varints in a v2 image.
_STATE_FIELDS = (
    "append_head", "committed_tail", "wrapped", "end_gap",
    "garbage_bytes", "defrag_passes", "defrag_aborts", "relocations",
    "wraps", "tail_advances", "inplace_resizes", "page_size",
)


def trunk_image_path(trunk_id: int) -> str:
    """Canonical TFS path for one trunk's backup image."""
    return f"/trinity/trunks/{trunk_id:05d}.img"


def trunk_to_bytes(trunk: MemoryTrunk,
                   page_image: bool | None = None) -> bytes:
    """Serialise a trunk into a portable image.

    ``page_image=None`` picks the format by storage tier: paged trunks
    persist their page file (v2 — dirty pages written back first, raw
    pages plus allocator state), resident trunks keep the v1 cell
    image, which any trunk shape can restore.
    """
    if page_image is None:
        page_image = not trunk.storage.resident
    if page_image:
        return _page_image_to_bytes(trunk)
    parts = [_MAGIC, encode_varint(_FORMAT_VERSION),
             encode_varint(trunk.trunk_id)]
    cells = list(trunk.dump_cells())
    parts.append(encode_varint(len(cells)))
    for uid, payload in cells:
        parts.append(encode_varint(uid))
        parts.append(encode_varint(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _page_image_to_bytes(trunk: MemoryTrunk) -> bytes:
    state = trunk.freeze_image_state()
    parts = [_MAGIC, encode_varint(_PAGE_FORMAT_VERSION),
             encode_varint(trunk.trunk_id)]
    for field in _STATE_FIELDS:
        parts.append(encode_varint(int(state[field])))
    parts.append(encode_varint(len(state["pages"])))
    for page in state["pages"]:
        parts.append(encode_varint(page))
    parts.append(encode_varint(len(state["cells"])))
    for uid, offset, size, reserved in state["cells"]:
        parts.append(encode_varint(uid))
        parts.append(encode_varint(offset))
        parts.append(encode_varint(size))
        parts.append(encode_varint(reserved))
    for raw in state["raw"]:
        parts.append(encode_varint(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def trunk_from_bytes(image: bytes, trunk: MemoryTrunk) -> int:
    """Load an image into ``trunk``; returns the cell count.

    v1 images replay cells through :meth:`MemoryTrunk.put`, so the
    target trunk need not match the original's shape — recovery loads a
    failed machine's trunk images into fresh trunks on survivors.  v2
    page images adopt raw pages and allocator state verbatim and need a
    pristine trunk with the same commit page size.
    """
    if image[:4] != _MAGIC:
        raise MemoryCloudError("not a trunk image (bad magic)")
    offset = 4
    version, offset = decode_varint(image, offset)
    if version == _PAGE_FORMAT_VERSION:
        return _page_image_from_bytes(image, offset, trunk)
    if version != _FORMAT_VERSION:
        raise MemoryCloudError(f"unsupported trunk image version {version}")
    _source_trunk_id, offset = decode_varint(image, offset)
    count, offset = decode_varint(image, offset)
    for _ in range(count):
        uid, offset = decode_varint(image, offset)
        size, offset = decode_varint(image, offset)
        payload = bytes(image[offset:offset + size])
        if len(payload) != size:
            raise MemoryCloudError("truncated trunk image")
        offset += size
        trunk.put(uid, payload)
    return count


def _page_image_from_bytes(image: bytes, offset: int,
                           trunk: MemoryTrunk) -> int:
    _source_trunk_id, offset = decode_varint(image, offset)
    state: dict = {}
    for field in _STATE_FIELDS:
        state[field], offset = decode_varint(image, offset)
    page_count, offset = decode_varint(image, offset)
    pages = []
    for _ in range(page_count):
        page, offset = decode_varint(image, offset)
        pages.append(page)
    state["pages"] = pages
    cell_count, offset = decode_varint(image, offset)
    cells = []
    for _ in range(cell_count):
        uid, offset = decode_varint(image, offset)
        cell_offset, offset = decode_varint(image, offset)
        size, offset = decode_varint(image, offset)
        reserved, offset = decode_varint(image, offset)
        cells.append((uid, cell_offset, size, reserved))
    state["cells"] = cells
    raw = []
    for _ in range(page_count):
        length, offset = decode_varint(image, offset)
        chunk = bytes(image[offset:offset + length])
        if len(chunk) != length:
            raise MemoryCloudError("truncated trunk page image")
        offset += length
        raw.append(chunk)
    state["raw"] = raw
    trunk.adopt_image_state(state)
    return cell_count


def backup_trunk(cloud: MemoryCloud, trunk_id: int,
                 tfs: TrinityFileSystem) -> int:
    """Write one trunk's image to TFS; returns the image size."""
    image = trunk_to_bytes(cloud.trunks[trunk_id])
    tfs.write(trunk_image_path(trunk_id), image)
    return len(image)


def backup_all(cloud: MemoryCloud, tfs: TrinityFileSystem) -> int:
    """Back every trunk up to TFS; returns total image bytes written."""
    return sum(
        backup_trunk(cloud, trunk_id, tfs) for trunk_id in cloud.trunks
    )


def restore_trunk(cloud: MemoryCloud, trunk_id: int,
                  tfs: TrinityFileSystem) -> int:
    """Rebuild one trunk from its TFS image; returns cells restored.

    The trunk object is replaced wholesale so stale cells from the failed
    incarnation cannot linger.
    """
    image = tfs.read(trunk_image_path(trunk_id))
    return adopt_trunk_image(cloud, trunk_id, image)


def adopt_trunk_image(cloud: MemoryCloud, trunk_id: int,
                      image: bytes) -> int:
    """Replace ``cloud``'s trunk with one rebuilt from ``image``.

    Two replacement hazards are handled here:

    * Outstanding zero-copy span groups hold the *old* trunk object, so
      replacing it silently would leave their epoch checks forever
      green against dead state — the old trunk is touched first so they
      all go stale, and its page file (if paged) is unlinked before the
      fresh trunk claims the same spill path.
    * The cloud-wide :meth:`MemoryCloud.mutation_epoch` is a sum over
      trunks; a fresh trunk restarting at a small epoch could make it
      go *backwards*, validating serving-layer cache entries stamped
      before the restore.  The fresh trunk adopts the old epoch as a
      floor and bumps past it.
    """
    old = cloud.trunks.get(trunk_id)
    old_epoch = 0
    if old is not None:
        old.touch()  # outstanding spans on the old incarnation go stale
        old_epoch = old.mutation_epoch
        if not old.storage.resident:
            old.storage.unlink()  # free the spill path for the successor
    fresh = MemoryTrunk(trunk_id, cloud.config.memory, registry=cloud.obs,
                        spill_dir=cloud.spill_dir)
    count = trunk_from_bytes(image, fresh)
    if old is not None:
        fresh.adopt_epoch(old_epoch)
    cloud.trunks[trunk_id] = fresh
    return count
