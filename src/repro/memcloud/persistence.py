"""Trunk persistence: backing memory trunks up in TFS (Section 3).

"To support fault-tolerant data persistence, these memory trunks are also
backed up in a shared distributed file system called TFS."  When a machine
fails, its trunks are *reloaded from TFS* onto survivors (Section 6.2);
this module provides the trunk image format and the backup/restore paths
the recovery protocol in :mod:`repro.cluster.recovery` drives.

Image format (version 1, little-endian):

    magic   4 bytes  b"TRNK"
    version varint   (1)
    trunk_id varint
    count   varint   number of cells
    cells   repeated: uid varint, size varint, payload bytes
"""

from __future__ import annotations

from ..errors import MemoryCloudError
from ..tfs import TrinityFileSystem
from ..utils.varint import decode_varint, encode_varint
from .cloud import MemoryCloud
from .trunk import MemoryTrunk

_MAGIC = b"TRNK"
_FORMAT_VERSION = 1


def trunk_image_path(trunk_id: int) -> str:
    """Canonical TFS path for one trunk's backup image."""
    return f"/trinity/trunks/{trunk_id:05d}.img"


def trunk_to_bytes(trunk: MemoryTrunk) -> bytes:
    """Serialise a trunk's live cells into a portable image."""
    parts = [_MAGIC, encode_varint(_FORMAT_VERSION),
             encode_varint(trunk.trunk_id)]
    cells = list(trunk.dump_cells())
    parts.append(encode_varint(len(cells)))
    for uid, payload in cells:
        parts.append(encode_varint(uid))
        parts.append(encode_varint(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def trunk_from_bytes(image: bytes, trunk: MemoryTrunk) -> int:
    """Load an image's cells into ``trunk``; returns the cell count.

    The target trunk need not be the original: recovery loads a failed
    machine's trunk images into fresh trunks on surviving machines.
    """
    if image[:4] != _MAGIC:
        raise MemoryCloudError("not a trunk image (bad magic)")
    offset = 4
    version, offset = decode_varint(image, offset)
    if version != _FORMAT_VERSION:
        raise MemoryCloudError(f"unsupported trunk image version {version}")
    _source_trunk_id, offset = decode_varint(image, offset)
    count, offset = decode_varint(image, offset)
    for _ in range(count):
        uid, offset = decode_varint(image, offset)
        size, offset = decode_varint(image, offset)
        payload = bytes(image[offset:offset + size])
        if len(payload) != size:
            raise MemoryCloudError("truncated trunk image")
        offset += size
        trunk.put(uid, payload)
    return count


def backup_trunk(cloud: MemoryCloud, trunk_id: int,
                 tfs: TrinityFileSystem) -> int:
    """Write one trunk's image to TFS; returns the image size."""
    image = trunk_to_bytes(cloud.trunks[trunk_id])
    tfs.write(trunk_image_path(trunk_id), image)
    return len(image)


def backup_all(cloud: MemoryCloud, tfs: TrinityFileSystem) -> int:
    """Back every trunk up to TFS; returns total image bytes written."""
    return sum(
        backup_trunk(cloud, trunk_id, tfs) for trunk_id in cloud.trunks
    )


def restore_trunk(cloud: MemoryCloud, trunk_id: int,
                  tfs: TrinityFileSystem) -> int:
    """Rebuild one trunk from its TFS image; returns cells restored.

    The trunk object is replaced wholesale so stale cells from the failed
    incarnation cannot linger.
    """
    image = tfs.read(trunk_image_path(trunk_id))
    fresh = MemoryTrunk(trunk_id, cloud.config.memory)
    count = trunk_from_bytes(image, fresh)
    cloud.trunks[trunk_id] = fresh
    return count
