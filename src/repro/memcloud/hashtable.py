"""Per-trunk open-addressing hash table (Figure 3).

Each memory trunk owns a hash table that maps a 64-bit UID to the cell's
location inside the trunk.  The paper partitions a machine's memory into
many trunks partly because "the performance of a single huge hash table is
suboptimal due to a higher probability of hashing conflicts"; to make that
claim testable, this table is a real open-addressing (linear probing)
implementation that counts probe steps, rather than a Python ``dict``.

Two interchangeable backends implement the same probing algorithm with
identical probe accounting:

* :class:`TrunkHashTable` — three parallel Python lists (hashes are
  implicit); the default.
* :class:`NumpyTrunkHashTable` — uint64 key / int64 value arrays plus a
  uint8 state array.  Denser, and the natural fit for the bulk data path,
  which pre-sizes it with :meth:`~TrunkHashTable.reserve` so batch loads
  never resize incrementally.

Because the probe sequence depends only on slot occupancy (which evolves
identically under the same operation sequence), the two backends report
bit-identical ``probe_count`` / ``lookup_count`` series — the trunk-count
ablation asserts this.
"""

from __future__ import annotations

import numpy as np

from ..utils.hashing import mix64, mix64_array

_EMPTY = -1
_TOMBSTONE = -2

# Keys reaching one trunk share the low p bits of mix64(uid) — that is
# how the addressing layer routed them here.  The paper's Figure 3
# therefore "hash[es] the 64-bit key again" inside the trunk; salting
# with an odd constant decorrelates this table's slots from the trunk
# index (without it, every key in a trunk lands in the same few slots).
_TRUNK_SALT = 0x9E3779B97F4A7C15


def _slot_hash(key: int) -> int:
    return mix64(key ^ _TRUNK_SALT)


def _capacity_for(entries: int) -> int:
    """Smallest power-of-two capacity that holds ``entries`` below the
    2/3 load factor (i.e. never triggers an incremental resize)."""
    capacity = 16
    while entries * 3 >= capacity * 2:
        capacity <<= 1
    return capacity


class TrunkHashTable:
    """Linear-probing hash map from 64-bit UID to a non-negative int.

    Grows at 2/3 load factor.  Tombstones from deletions are compacted at
    resize.  ``probe_count`` / ``lookup_count`` expose average probe length
    for the trunk-count ablation benchmark.
    """

    __slots__ = ("_keys", "_values", "_mask", "_used", "_tombstones",
                 "probe_count", "lookup_count")

    storage = "list"

    def __init__(self, initial_capacity: int = 16):
        capacity = 16
        while capacity < initial_capacity:
            capacity <<= 1
        self._allocate(capacity)
        self._used = 0          # live entries
        self._tombstones = 0
        self.probe_count = 0    # total probe steps across lookups
        self.lookup_count = 0   # total lookups (get/set/delete)

    def _allocate(self, capacity: int) -> None:
        self._keys = [_EMPTY] * capacity
        self._values = [0] * capacity
        self._mask = capacity - 1

    def __len__(self) -> int:
        return self._used

    @property
    def capacity(self) -> int:
        return self._mask + 1

    @property
    def mean_probe_length(self) -> float:
        """Average probes per lookup; 1.0 means zero conflicts."""
        if not self.lookup_count:
            return 0.0
        return self.probe_count / self.lookup_count

    def _probe(self, key: int) -> tuple[int, int]:
        """(slot, probe steps) for ``key``: its slot, or the first
        insertable slot if absent."""
        index = _slot_hash(key) & self._mask
        first_tombstone = -1
        probes = 0
        while True:
            probes += 1
            slot_key = self._keys[index]
            if slot_key == key:
                break
            if slot_key == _EMPTY:
                if first_tombstone >= 0:
                    index = first_tombstone
                break
            if slot_key == _TOMBSTONE and first_tombstone < 0:
                first_tombstone = index
            index = (index + 1) & self._mask
        return index, probes

    def _slot_for(self, key: int, record: bool = True) -> int:
        """Find the slot holding ``key`` or the first insertable slot.

        ``record=False`` skips the probe statistics — used for internal
        re-probes (e.g. relocating the key after a resize) that are part
        of one logical operation and must not be double-counted.
        """
        index, probes = self._probe(key)
        if record:
            self.lookup_count += 1
            self.probe_count += probes
        return index

    def get(self, key: int, default: int | None = None) -> int | None:
        index = self._slot_for(key)
        if self._keys[index] == key:
            return self._values[index]
        return default

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def has_key(self, key: int) -> bool:
        """Membership test that does NOT touch the probe statistics.

        The bulk path uses this to classify a batch before replaying the
        scalar-equivalent (and therefore recorded) operation sequence.
        """
        index, _ = self._probe(key)
        return self._keys[index] == key

    def set(self, key: int, value: int) -> None:
        if value < 0:
            raise ValueError("TrunkHashTable values must be non-negative")
        index = self._slot_for(key)
        if self._keys[index] != key:
            if self._keys[index] == _TOMBSTONE:
                self._tombstones -= 1
            self._keys[index] = key
            self._used += 1
            if (self._used + self._tombstones) * 3 >= self.capacity * 2:
                self._resize()
                # Re-locating the key in the rebuilt table is part of the
                # same logical set(): don't count it a second time.
                index = self._slot_for(key, record=False)
        self._values[index] = value

    def insert_fresh(self, key: int, value: int) -> None:
        """Insert a key known to be absent, probing once.

        Records the statistics of the scalar path's get-miss + set pair
        (two lookups, twice the probe steps): between the scalar get and
        set nothing changes, so both walk the identical probe sequence —
        fusing them keeps counters bit-identical while halving the probe
        work on bulk loads.
        """
        if value < 0:
            raise ValueError("TrunkHashTable values must be non-negative")
        index, probes = self._probe(key)
        self.lookup_count += 2
        self.probe_count += 2 * probes
        if self._keys[index] == _TOMBSTONE:
            self._tombstones -= 1
        self._keys[index] = key
        self._used += 1
        if (self._used + self._tombstones) * 3 >= self.capacity * 2:
            self._resize()
            index = self._slot_for(key, record=False)
        self._values[index] = value

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if it was absent."""
        index = self._slot_for(key)
        if self._keys[index] != key:
            return False
        self._keys[index] = _TOMBSTONE
        self._used -= 1
        self._tombstones += 1
        return True

    def bulk_lookup(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Values for a batch of keys: ``(values, found_mask)``.

        Read-only, so a batch is equivalent to a loop of :meth:`get`
        calls in any order — probe/lookup counters advance by exactly
        the scalar totals.  The list backend probes per key; the numpy
        backend overrides this with round-vectorized probing.
        """
        n = len(keys)
        values = np.zeros(n, dtype=np.int64)
        found = np.zeros(n, dtype=bool)
        for i in range(n):
            value = self.get(int(keys[i]))
            if value is not None:
                values[i] = value
                found[i] = True
        return values, found

    def reserve(self, entries: int) -> None:
        """Pre-size the table to hold ``entries`` live keys resize-free.

        Rebuilds (rehashing live entries, dropping tombstones) only when
        the target capacity exceeds the current one; probe statistics are
        untouched, exactly like an internal resize.
        """
        capacity = _capacity_for(entries)
        if capacity > self.capacity:
            self._rebuild(capacity)

    def items(self):
        """Yield (key, value) pairs in arbitrary (slot) order."""
        for key, value in zip(self._keys, self._values):
            if key >= 0:
                yield key, value

    def keys(self):
        for key in self._keys:
            if key >= 0:
                yield key

    def _resize(self) -> None:
        capacity = self.capacity
        # Grow only if genuinely full of live entries; a tombstone-heavy
        # table is rebuilt at the same size.
        if self._used * 3 >= capacity * 2:
            capacity <<= 1
        self._rebuild(capacity)

    def _rebuild(self, capacity: int) -> None:
        old_keys = self._keys
        old_values = self._values
        self._allocate(capacity)
        self._tombstones = 0
        for key, value in zip(old_keys, old_values):
            if key >= 0:
                index = _slot_hash(key) & self._mask
                while self._keys[index] != _EMPTY:
                    index = (index + 1) & self._mask
                self._keys[index] = key
                self._values[index] = value


# Slot states for the numpy backend (the list backend encodes them as
# negative sentinel keys, which uint64 storage cannot represent).
_STATE_EMPTY = 0
_STATE_LIVE = 1
_STATE_TOMBSTONE = 2


class NumpyTrunkHashTable(TrunkHashTable):
    """Array-backed variant: uint64 keys, int64 values, uint8 slot states.

    Same probing algorithm and load-factor policy as the list backend —
    only the storage differs, so the probe/lookup counters (and therefore
    the trunk-count ablation's mean-probe-length claim) are preserved
    bit for bit.
    """

    __slots__ = ("_states",)

    storage = "numpy"

    def _allocate(self, capacity: int) -> None:
        self._keys = np.zeros(capacity, dtype=np.uint64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._states = np.zeros(capacity, dtype=np.uint8)
        self._mask = capacity - 1

    def _probe(self, key: int) -> tuple[int, int]:
        index = _slot_hash(key) & self._mask
        first_tombstone = -1
        probes = 0
        keys = self._keys
        states = self._states
        while True:
            probes += 1
            state = states[index]
            if state == _STATE_LIVE:
                if keys[index] == key:
                    break
            elif state == _STATE_EMPTY:
                if first_tombstone >= 0:
                    index = first_tombstone
                break
            elif first_tombstone < 0:
                first_tombstone = index
            index = (index + 1) & self._mask
        return index, probes

    def _is_live_match(self, index: int, key: int) -> bool:
        return (self._states[index] == _STATE_LIVE
                and self._keys[index] == key)

    def get(self, key: int, default: int | None = None) -> int | None:
        index = self._slot_for(key)
        if self._is_live_match(index, key):
            return int(self._values[index])
        return default

    def has_key(self, key: int) -> bool:
        index, _ = self._probe(key)
        return self._is_live_match(index, key)

    def set(self, key: int, value: int) -> None:
        if value < 0:
            raise ValueError("TrunkHashTable values must be non-negative")
        index = self._slot_for(key)
        if not self._is_live_match(index, key):
            if self._states[index] == _STATE_TOMBSTONE:
                self._tombstones -= 1
            self._keys[index] = key
            self._states[index] = _STATE_LIVE
            self._used += 1
            if (self._used + self._tombstones) * 3 >= self.capacity * 2:
                self._resize()
                index = self._slot_for(key, record=False)
        self._values[index] = value

    def insert_fresh(self, key: int, value: int) -> None:
        if value < 0:
            raise ValueError("TrunkHashTable values must be non-negative")
        index, probes = self._probe(key)
        self.lookup_count += 2
        self.probe_count += 2 * probes
        if self._states[index] == _STATE_TOMBSTONE:
            self._tombstones -= 1
        self._keys[index] = key
        self._states[index] = _STATE_LIVE
        self._used += 1
        if (self._used + self._tombstones) * 3 >= self.capacity * 2:
            self._resize()
            index = self._slot_for(key, record=False)
        self._values[index] = value

    def delete(self, key: int) -> bool:
        index = self._slot_for(key)
        if not self._is_live_match(index, key):
            return False
        self._states[index] = _STATE_TOMBSTONE
        self._used -= 1
        self._tombstones += 1
        return True

    def bulk_lookup(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`get` over a key batch.

        Linear probing advances all unresolved keys one slot per round;
        a key retires when its slot is a live match (found) or empty
        (absent), and walks past tombstones — the exact scalar probe
        sequence, so ``probe_count``/``lookup_count`` advance by the
        same totals a :meth:`get` loop would record.
        """
        n = len(keys)
        if n < 16:
            # Fixed numpy overhead beats the probe work on tiny batches
            # (cross-trunk fan-out leaves many); the scalar loop keeps
            # the identical probe accounting.
            return super().bulk_lookup(keys)
        keys_arr = np.asarray(keys, dtype=np.uint64)
        values = np.zeros(n, dtype=np.int64)
        found = np.zeros(n, dtype=bool)
        with np.errstate(over="ignore"):
            index = (mix64_array(keys_arr ^ np.uint64(_TRUNK_SALT))
                     & np.uint64(self._mask)).astype(np.int64)
        active = np.arange(n)
        probes = 0
        mask = self._mask
        while len(active):
            probes += len(active)
            slots = index[active]
            states = self._states[slots]
            live_match = ((states == _STATE_LIVE)
                          & (self._keys[slots] == keys_arr[active]))
            finished = live_match | (states == _STATE_EMPTY)
            hits = active[live_match]
            values[hits] = self._values[index[hits]]
            found[hits] = True
            active = active[~finished]
            index[active] = (index[active] + 1) & mask
        self.lookup_count += n
        self.probe_count += probes
        return values, found

    def bulk_insert_fresh(self, keys, values) -> bool:
        """Insert a batch of fresh keys with one vectorized hash pass.

        Contents-equivalent to a loop of :meth:`insert_fresh` — same
        key/value set, same ``used``/``lookup_count``, same capacity —
        but free to land collided keys in a different slot order, which
        can change ``probe_count``.  Callers must therefore only use it
        on the pre-sized path, where probe-layout equality is already
        waived.  Returns ``False`` without touching anything when the
        batch might trigger a resize (caller falls back to the loop,
        whose per-insert resize checks are exact).
        """
        n = len(keys)
        if (self._used + self._tombstones + n) * 3 >= self.capacity * 2:
            return False
        keys_arr = np.asarray(keys, dtype=np.uint64)
        values_arr = np.asarray(values, dtype=np.int64)
        if n and int(values_arr.min()) < 0:
            raise ValueError("TrunkHashTable values must be non-negative")
        with np.errstate(over="ignore"):
            homes = (mix64_array(keys_arr ^ np.uint64(_TRUNK_SALT))
                     & np.uint64(self._mask)).astype(np.int64)
        # Conflict-free subset: home slot truly empty and not claimed by
        # an earlier key of this batch.  Those inserts are order-
        # independent (each lands in its own home with probe length 1),
        # so one fancy-indexed store is exactly the sequential result.
        first_claim = np.zeros(n, dtype=bool)
        first_claim[np.unique(homes, return_index=True)[1]] = True
        free = first_claim & (self._states[homes] == _STATE_EMPTY)
        free_homes = homes[free]
        self._keys[free_homes] = keys_arr[free]
        self._values[free_homes] = values_arr[free]
        self._states[free_homes] = _STATE_LIVE
        done = int(free.sum())
        self._used += done
        self.lookup_count += 2 * done
        self.probe_count += 2 * done
        for i in np.flatnonzero(~free).tolist():
            self.insert_fresh(int(keys_arr[i]), int(values_arr[i]))
        return True

    def items(self):
        for index in np.flatnonzero(self._states == _STATE_LIVE):
            yield int(self._keys[index]), int(self._values[index])

    def keys(self):
        for index in np.flatnonzero(self._states == _STATE_LIVE):
            yield int(self._keys[index])

    def _rebuild(self, capacity: int) -> None:
        old_keys = self._keys
        old_values = self._values
        old_states = self._states
        self._allocate(capacity)
        self._tombstones = 0
        mask = self._mask
        for slot in np.flatnonzero(old_states == _STATE_LIVE):
            key = int(old_keys[slot])
            index = _slot_hash(key) & mask
            while self._states[index] != _STATE_EMPTY:
                index = (index + 1) & mask
            self._keys[index] = key
            self._states[index] = _STATE_LIVE
            self._values[index] = old_values[slot]


def make_trunk_hashtable(storage: str = "list",
                         initial_capacity: int = 16) -> TrunkHashTable:
    """Factory selecting a hash-table backend by name."""
    if storage == "list":
        return TrunkHashTable(initial_capacity)
    if storage == "numpy":
        return NumpyTrunkHashTable(initial_capacity)
    raise ValueError(f"unknown hashtable storage {storage!r}")
