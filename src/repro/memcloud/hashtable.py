"""Per-trunk open-addressing hash table (Figure 3).

Each memory trunk owns a hash table that maps a 64-bit UID to the cell's
location inside the trunk.  The paper partitions a machine's memory into
many trunks partly because "the performance of a single huge hash table is
suboptimal due to a higher probability of hashing conflicts"; to make that
claim testable, this table is a real open-addressing (linear probing)
implementation that counts probe steps, rather than a Python ``dict``.

Values stored per key are small integers (an index into the trunk's entry
array), so the table is three parallel lists: hashes, keys, values.
"""

from __future__ import annotations

from ..utils.hashing import mix64

_EMPTY = -1
_TOMBSTONE = -2

# Keys reaching one trunk share the low p bits of mix64(uid) — that is
# how the addressing layer routed them here.  The paper's Figure 3
# therefore "hash[es] the 64-bit key again" inside the trunk; salting
# with an odd constant decorrelates this table's slots from the trunk
# index (without it, every key in a trunk lands in the same few slots).
_TRUNK_SALT = 0x9E3779B97F4A7C15


def _slot_hash(key: int) -> int:
    return mix64(key ^ _TRUNK_SALT)


class TrunkHashTable:
    """Linear-probing hash map from 64-bit UID to a non-negative int.

    Grows at 2/3 load factor.  Tombstones from deletions are compacted at
    resize.  ``probe_count`` / ``lookup_count`` expose average probe length
    for the trunk-count ablation benchmark.
    """

    __slots__ = ("_keys", "_values", "_mask", "_used", "_tombstones",
                 "probe_count", "lookup_count")

    def __init__(self, initial_capacity: int = 16):
        capacity = 16
        while capacity < initial_capacity:
            capacity <<= 1
        self._keys = [_EMPTY] * capacity
        self._values = [0] * capacity
        self._mask = capacity - 1
        self._used = 0          # live entries
        self._tombstones = 0
        self.probe_count = 0    # total probe steps across lookups
        self.lookup_count = 0   # total lookups (get/set/delete)

    def __len__(self) -> int:
        return self._used

    @property
    def capacity(self) -> int:
        return self._mask + 1

    @property
    def mean_probe_length(self) -> float:
        """Average probes per lookup; 1.0 means zero conflicts."""
        if not self.lookup_count:
            return 0.0
        return self.probe_count / self.lookup_count

    def _slot_for(self, key: int, record: bool = True) -> int:
        """Find the slot holding ``key`` or the first insertable slot.

        ``record=False`` skips the probe statistics — used for internal
        re-probes (e.g. relocating the key after a resize) that are part
        of one logical operation and must not be double-counted.
        """
        index = _slot_hash(key) & self._mask
        first_tombstone = -1
        probes = 0
        while True:
            probes += 1
            slot_key = self._keys[index]
            if slot_key == key:
                break
            if slot_key == _EMPTY:
                if first_tombstone >= 0:
                    index = first_tombstone
                break
            if slot_key == _TOMBSTONE and first_tombstone < 0:
                first_tombstone = index
            index = (index + 1) & self._mask
        if record:
            self.lookup_count += 1
            self.probe_count += probes
        return index

    def get(self, key: int, default: int | None = None) -> int | None:
        index = self._slot_for(key)
        if self._keys[index] == key:
            return self._values[index]
        return default

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def set(self, key: int, value: int) -> None:
        if value < 0:
            raise ValueError("TrunkHashTable values must be non-negative")
        index = self._slot_for(key)
        if self._keys[index] != key:
            if self._keys[index] == _TOMBSTONE:
                self._tombstones -= 1
            self._keys[index] = key
            self._used += 1
            if (self._used + self._tombstones) * 3 >= self.capacity * 2:
                self._resize()
                # Re-locating the key in the rebuilt table is part of the
                # same logical set(): don't count it a second time.
                index = self._slot_for(key, record=False)
        self._values[index] = value

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if it was absent."""
        index = self._slot_for(key)
        if self._keys[index] != key:
            return False
        self._keys[index] = _TOMBSTONE
        self._used -= 1
        self._tombstones += 1
        return True

    def items(self):
        """Yield (key, value) pairs in arbitrary (slot) order."""
        for key, value in zip(self._keys, self._values):
            if key >= 0:
                yield key, value

    def keys(self):
        for key in self._keys:
            if key >= 0:
                yield key

    def _resize(self) -> None:
        old_keys = self._keys
        old_values = self._values
        capacity = self.capacity
        # Grow only if genuinely full of live entries; a tombstone-heavy
        # table is rebuilt at the same size.
        if self._used * 3 >= capacity * 2:
            capacity <<= 1
        self._keys = [_EMPTY] * capacity
        self._values = [0] * capacity
        self._mask = capacity - 1
        self._tombstones = 0
        for key, value in zip(old_keys, old_values):
            if key >= 0:
                index = _slot_hash(key) & self._mask
                while self._keys[index] != _EMPTY:
                    index = (index + 1) & self._mask
                self._keys[index] = key
                self._values[index] = value
