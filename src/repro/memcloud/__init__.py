"""The Trinity memory cloud — a distributed in-memory key-value store.

This package implements Section 3 ("The Memory Cloud") and Section 6.1
("Circular Memory Management") of the paper:

* :mod:`~repro.memcloud.locks` — per-cell spin locks used for concurrency
  control and physical memory pinning.
* :mod:`~repro.memcloud.hashtable` — the per-trunk open-addressing hash
  table mapping a 64-bit UID to the cell's (offset, size) inside the trunk.
* :mod:`~repro.memcloud.trunk` — memory trunks: real ``bytearray`` arenas
  with append-head/committed-tail circular allocation, short-lived memory
  reservation, and a defragmentation pass.
* :mod:`~repro.memcloud.addressing` — the 2**p-slot addressing table that
  maps trunks to machines, with consistent join/leave relocation.
* :mod:`~repro.memcloud.cloud` — the :class:`MemoryCloud` facade combining
  all of the above into a globally addressable key-value store.
* :mod:`~repro.memcloud.persistence` — trunk image serialisation for TFS
  backup and failure recovery.
"""

from .locks import SharedSpinLock, SpinLock
from .hashtable import (
    NumpyTrunkHashTable,
    TrunkHashTable,
    make_trunk_hashtable,
)
from .arena import BytesArena, SharedMemoryArena, shared_arena_factory
from .trunk import CELL_HEADER_BYTES, MemoryTrunk, TrunkSpans, TrunkStats
from .addressing import AddressingTable
from .cloud import BulkPathDivergence, MemoryCloud, SpanGroup

__all__ = [
    "SpinLock",
    "SharedSpinLock",
    "TrunkHashTable",
    "NumpyTrunkHashTable",
    "make_trunk_hashtable",
    "BytesArena",
    "SharedMemoryArena",
    "shared_arena_factory",
    "BulkPathDivergence",
    "MemoryTrunk",
    "TrunkSpans",
    "TrunkStats",
    "CELL_HEADER_BYTES",
    "AddressingTable",
    "MemoryCloud",
    "SpanGroup",
]
