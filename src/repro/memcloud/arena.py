"""Trunk arena backings: private bytes vs OS shared memory.

A :class:`MemoryTrunk` reserves one contiguous address space and treats
it as raw bytes; everything it needs from the backing is a writable
buffer of fixed length.  This module abstracts that backing so the
shared-memory execution backend (:mod:`repro.compute.shm`) can place the
arenas in ``multiprocessing.shared_memory`` segments that forked worker
processes mutate directly, while the default single-process simulation
keeps its plain ``bytearray``.

Lifecycle of a shared arena: the *coordinator* process creates the
segment and owns its name; workers inherit the mapping through ``fork``
(no attach step, no pickling).  ``unlink`` removes the name from the
OS namespace — on Linux the memory itself survives until the last
mapping (coordinator or worker) goes away, so views handed out earlier
stay readable.  Crash cleanup is belt-and-braces: a ``weakref.finalize``
unlinks the segment when the arena object is garbage collected, and
CPython's ``resource_tracker`` unlinks anything that outlives the
creating process anyway.
"""

from __future__ import annotations

import os
import weakref
from multiprocessing import shared_memory


class BytesArena:
    """Default backing: a process-private ``bytearray``."""

    shared = False

    __slots__ = ("buf",)

    def __init__(self, size: int):
        self.buf = bytearray(size)

    def __len__(self) -> int:
        return len(self.buf)

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


def _unlink_quietly(shm: shared_memory.SharedMemory,
                    owner_pid: int) -> None:
    # Forked workers inherit the finalizer; only the creating process may
    # remove the name, or a worker's clean exit would yank the segment
    # out from under the coordinator.
    if os.getpid() != owner_pid:
        return
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedMemoryArena:
    """Backing in a named OS shared-memory segment.

    Only the creating (coordinator) process should call :meth:`unlink`;
    forked workers share the mapping and must leave the name alone.
    ``close`` is best-effort: while numpy views into the buffer are
    alive the underlying mmap cannot be closed, which is fine — the OS
    reclaims it at process exit once the segment is unlinked.
    """

    shared = True

    __slots__ = ("_shm", "_owner_pid", "_finalizer", "__weakref__")

    def __init__(self, size: int, name: str | None = None,
                 create: bool = True):
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        self._owner_pid = os.getpid() if create else None
        if create:
            self._finalizer = weakref.finalize(
                self, _unlink_quietly, self._shm, self._owner_pid
            )
        else:
            self._finalizer = None

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    @property
    def name(self) -> str:
        return self._shm.name

    def __len__(self) -> int:
        return self._shm.size

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:
            # Live views (spans, headers) still reference the mapping;
            # the OS frees it at process exit after unlink.
            pass

    def unlink(self) -> None:
        if self._owner_pid != os.getpid():
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _unlink_quietly(self._shm, self._owner_pid)


def shared_arena_factory():
    """An ``arena_factory`` for :class:`~repro.memcloud.cloud.MemoryCloud`
    that places every trunk arena in OS shared memory."""
    return lambda size: SharedMemoryArena(size)
