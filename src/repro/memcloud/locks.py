"""Per-cell spin locks (Section 3).

The paper associates every key-value pair with a spin lock that serves two
purposes: concurrency control between threads, and *pinning* — the
defragmentation daemon must not relocate a cell while a thread holds a
reference into its blob.  Trinity requires every accessor (reader, writer,
or the defrag daemon itself) to acquire the lock first.

The reproduction runs its cluster simulation in one process, but the locks
are real: they are thread-safe, they enforce the acquire-before-touch
protocol (cell accessors and the defragmenter both take them), and they
count contention so the trunk-count ablation can report lock pressure.
"""

from __future__ import annotations

import multiprocessing
import threading

from ..errors import CellLockedError
from ..obs import get_registry

# Cells number in the millions, so per-lock metric objects would swamp the
# registry; contention is aggregated process-wide instead.  Individual
# locks still carry their own counts for the trunk-count ablation.
_ACQUIRES = get_registry().counter("spinlock.acquire.total")
_CONTENTION = get_registry().counter("spinlock.contention.total")
_EXHAUSTED = get_registry().counter("spinlock.exhausted.total")


class SpinLock:
    """A test-and-set spin lock with a bounded spin budget.

    ``acquire`` spins up to ``budget`` times before raising
    :class:`CellLockedError`; an unbounded spin would deadlock the
    single-process simulation if a caller leaks a lock, so the bound doubles
    as a bug detector.
    """

    __slots__ = ("_flag", "contention_count", "acquire_count")

    def __init__(self) -> None:
        # A non-blocking threading.Lock acquire is an atomic test-and-set,
        # which is exactly the primitive a spin lock spins on.
        self._flag = threading.Lock()
        self.contention_count = 0
        self.acquire_count = 0

    @property
    def held(self) -> bool:
        return self._flag.locked()

    def try_acquire(self) -> bool:
        """Single test-and-set attempt; True if the lock was taken."""
        return self._flag.acquire(blocking=False)

    def acquire(self, budget: int = 1 << 16) -> None:
        """Spin until acquired or the budget is exhausted."""
        self.acquire_count += 1
        _ACQUIRES.inc()
        if self.try_acquire():
            return
        self.contention_count += 1
        _CONTENTION.inc()
        for _ in range(budget):
            if self.try_acquire():
                return
        _EXHAUSTED.inc()
        raise CellLockedError(f"spin budget {budget} exhausted")

    def release(self) -> None:
        if not self._flag.locked():
            raise CellLockedError("releasing a lock that is not held")
        self._flag.release()

    def __enter__(self) -> "SpinLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class SharedSpinLock:
    """A :class:`SpinLock` whose flag lives in OS shared memory.

    Same interface and budget semantics, but the test-and-set primitive
    is a ``multiprocessing`` lock, so two *processes* sharing a trunk
    arena (the shared-memory execution backend) genuinely exclude each
    other.  The ``held`` flag is a separate shared byte: a process-local
    mirror would claim the lock is free when a sibling process holds it.

    Construct via ``MemoryTrunk(lock_factory=SharedSpinLock)`` or
    ``MemoryCloud(lock_factory=SharedSpinLock)``.  Fork-start children
    inherit the lock state; that is the supported topology (the backend
    forks workers from the coordinator that created the cloud).
    """

    __slots__ = ("_flag", "_held", "contention_count", "acquire_count")

    def __init__(self) -> None:
        ctx = multiprocessing.get_context("fork")
        self._flag = ctx.Lock()
        # lock=False: only ever written by the flag holder.
        self._held = ctx.Value("b", 0, lock=False)
        self.contention_count = 0
        self.acquire_count = 0

    @property
    def held(self) -> bool:
        return bool(self._held.value)

    def try_acquire(self) -> bool:
        """Single test-and-set attempt; True if the lock was taken."""
        if self._flag.acquire(block=False):
            self._held.value = 1
            return True
        return False

    def acquire(self, budget: int = 1 << 16) -> None:
        """Spin until acquired or the budget is exhausted."""
        self.acquire_count += 1
        _ACQUIRES.inc()
        if self.try_acquire():
            return
        self.contention_count += 1
        _CONTENTION.inc()
        for _ in range(budget):
            if self.try_acquire():
                return
        _EXHAUSTED.inc()
        raise CellLockedError(f"spin budget {budget} exhausted")

    def release(self) -> None:
        if not self._held.value:
            raise CellLockedError("releasing a lock that is not held")
        self._held.value = 0
        self._flag.release()

    def __enter__(self) -> "SharedSpinLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
