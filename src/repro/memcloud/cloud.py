"""The memory cloud facade: a globally addressable key-value store.

Combines the addressing table and the memory trunks into the store the rest
of the system is built on (Figure 2: "Memory Cloud (Distributed Key-Value
Store)").  Keys are 64-bit UIDs, values are blobs of arbitrary length.

The whole cloud lives in one process, but the ownership structure is real:
every trunk belongs to exactly one simulated machine, lookups resolve
through the addressing table exactly as in Figure 3, and the simulated
network layer charges for every access that crosses a machine boundary.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import tempfile

import numpy as np

from ..config import ClusterConfig
from ..errors import AddressingError, StaleSpanError
from ..obs import MetricsRegistry, MetricsReport, get_registry
from ..utils.arrays import gather_ranges
from ..utils.hashing import trunk_of, trunk_of_array
from ..utils.sorting import stable_argsort
from .addressing import AddressingTable
from .trunk import MemoryTrunk, TrunkStats


class BulkPathDivergence(AssertionError):
    """The bulk data path disagreed with the scalar shadow replay."""


class SpanGroup:
    """One trunk's zero-copy spans plus the machinery to detect staleness.

    Iterates as the legacy ``(arena, starts, limits, positions)`` 4-tuple
    so existing decoders keep unpacking it; additionally carries the trunk
    and the structural epoch at fetch time so consumers can
    :meth:`assert_fresh` right before (or after) decoding.
    """

    __slots__ = ("arena", "starts", "limits", "positions", "trunk", "epoch")

    def __init__(self, arena, starts, limits, positions, trunk, epoch):
        self.arena = arena
        self.starts = starts
        self.limits = limits
        self.positions = positions
        self.trunk = trunk
        self.epoch = epoch

    def __iter__(self):
        return iter((self.arena, self.starts, self.limits, self.positions))

    @property
    def stale(self) -> bool:
        return self.trunk.mutation_epoch != self.epoch

    def assert_fresh(self) -> None:
        """Raise :class:`~repro.errors.StaleSpanError` if the trunk has
        structurally changed since these spans were fetched."""
        current = self.trunk.mutation_epoch
        if current != self.epoch:
            raise StaleSpanError(self.trunk.trunk_id, self.epoch, current)

    def close(self) -> None:
        """Release the page pins backing these spans (no-op for resident
        trunks).  Consumers call this once decoding is done; an epoch
        bump on the trunk releases the pins anyway, but read-heavy
        workloads may go many batches between mutations and paged trunks
        must not accumulate pinned (unevictable) pages across them."""
        self.trunk.release_span_pins()


class MemoryCloud:
    """A distributed in-memory key-value store over 2**p memory trunks.

    Parameters
    ----------
    config:
        Cluster shape: machine count, trunk bits, memory parameters.

    Examples
    --------
    >>> from repro.config import ClusterConfig
    >>> cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=5))
    >>> cloud.put(42, b"hello")
    >>> cloud.get(42)
    b'hello'
    """

    def __init__(self, config: ClusterConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 cross_check: bool = False,
                 arena_factory=None, lock_factory=None):
        self.config = config or ClusterConfig()
        self.obs = registry if registry is not None else get_registry()
        self.addressing = AddressingTable(
            self.config.trunk_bits, range(self.config.machines)
        )
        trunk_kwargs = {}
        if lock_factory is not None:
            trunk_kwargs["lock_factory"] = lock_factory
        # Paged clouds keep all their trunks' page files under one spill
        # directory; a private temp dir is removed with release_arenas().
        self._spill_dir: str | None = None
        self._owns_spill_dir = False
        memory = self.config.memory
        if memory.storage == "paged" and arena_factory is None:
            if memory.spill_dir is not None:
                os.makedirs(memory.spill_dir, exist_ok=True)
                self._spill_dir = memory.spill_dir
            else:
                self._spill_dir = tempfile.mkdtemp(prefix="repro-cloud-")
                self._owns_spill_dir = True
            trunk_kwargs["spill_dir"] = self._spill_dir
        self.trunks: dict[int, MemoryTrunk] = {
            trunk_id: MemoryTrunk(
                trunk_id, memory, registry=self.obs,
                arena=(arena_factory(memory.trunk_size)
                       if arena_factory is not None else None),
                **trunk_kwargs,
            )
            for trunk_id in range(self.config.trunk_count)
        }
        self._m_bulk_put_cells = self.obs.counter("memcloud.bulk.put.cells")
        self._m_bulk_put_batches = self.obs.counter(
            "memcloud.bulk.put.batches")
        self._m_bulk_get_cells = self.obs.counter("memcloud.bulk.get.cells")
        self._m_bulk_get_batches = self.obs.counter(
            "memcloud.bulk.get.batches")
        self._h_bulk_put = self.obs.histogram("memcloud.bulk.put.seconds")
        self._h_bulk_get = self.obs.histogram("memcloud.bulk.get.seconds")
        # Mirroring BspEngine's cross_check: a shadow cloud replays every
        # mutation through the scalar path (own registry so the trunk
        # metric series don't merge) and verify_shadow() compares worlds.
        self._shadow: MemoryCloud | None = None
        self._shadow_probes_comparable = True
        if cross_check:
            # The shadow always runs resident storage: on a paged cloud,
            # cross_check then doubles as a storage-tier equivalence
            # proof (identical cells, stats, and probe counters across
            # backing tiers), and the shadow never pays page faults.
            shadow_config = self.config
            if memory.storage != "resident":
                shadow_config = dataclasses.replace(
                    self.config,
                    memory=dataclasses.replace(
                        memory, storage="resident", spill_dir=None
                    ),
                )
            self._shadow = MemoryCloud(shadow_config, MetricsRegistry())

    # -- addressing ----------------------------------------------------------

    def trunk_for(self, cell_id: int) -> MemoryTrunk:
        """The trunk that stores ``cell_id`` (first hash of Figure 3)."""
        return self.trunks[trunk_of(cell_id, self.config.trunk_bits)]

    def machine_of(self, cell_id: int) -> int:
        """The machine hosting ``cell_id`` per the addressing table."""
        return self.addressing.machine_for_cell(cell_id)

    def machines_of_array(self, cell_ids) -> np.ndarray:
        """Vectorized :meth:`machine_of`: owning machine per UID."""
        return self.addressing.machines_for_cells(cell_ids)

    def trunks_on(self, machine_id: int) -> list[MemoryTrunk]:
        """All trunks currently owned by one machine."""
        return [self.trunks[t] for t in self.addressing.trunks_of(machine_id)]

    def cells_on(self, machine_id: int):
        """Yield every cell UID stored on ``machine_id``."""
        for trunk in self.trunks_on(machine_id):
            yield from trunk.uids()

    # -- key-value operations ----------------------------------------------

    def put(self, cell_id: int, value: bytes) -> None:
        """Insert or overwrite a cell."""
        self.trunk_for(cell_id).put(cell_id, value)
        if self._shadow is not None:
            self._shadow.put(cell_id, value)

    def get(self, cell_id: int) -> bytes:
        """Read a copy of a cell's payload; raises CellNotFoundError."""
        if self._shadow is not None:
            self._shadow.get(cell_id)  # keep probe counters comparable
        return self.trunk_for(cell_id).get(cell_id)

    def remove(self, cell_id: int) -> None:
        """Delete a cell; raises CellNotFoundError if absent."""
        self.trunk_for(cell_id).remove(cell_id)
        if self._shadow is not None:
            self._shadow.remove(cell_id)

    def reencode_cell(self, cell_id: int, expected: bytes,
                      replacement: bytes) -> bool:
        """Compare-and-swap a cell's bytes through its trunk's CAS.

        The layout re-encoder's write primitive: applied only if the cell
        still byte-equals ``expected`` and is not locked by an accessor.
        A shadow replica (if any) mirrors the swap only when the primary
        applied it, so both stay byte-identical.
        """
        applied = self.trunk_for(cell_id).reencode_cell(
            cell_id, expected, replacement)
        if applied and self._shadow is not None:
            self._shadow.put(cell_id, replacement)
        return applied

    def contains(self, cell_id: int) -> bool:
        if self._shadow is not None:
            self._shadow.contains(cell_id)
        return cell_id in self.trunk_for(cell_id)

    def mutation_epoch(self) -> int:
        """Cloud-wide mutation version: the sum of every trunk's epoch.

        Strictly increases on *any* mutation anywhere in the cloud —
        puts, removes, resizes, defrag passes, wraps, and in-place
        accessor writes (:meth:`note_cell_write`) — so a value cached
        against this number is provably fresh while it matches.  The
        coarse validity token: snapshot consumers (the serving layer's
        CSR snapshot) stamp with it; caches that know which trunks they
        read use :meth:`epoch_vector` instead.
        """
        return sum(t.mutation_epoch for t in self.trunks.values())

    def epoch_vector(self) -> tuple[int, ...]:
        """Per-trunk mutation epochs, indexed by trunk id.

        The fine-grained validity token: a cached value that recorded
        which trunks it was decoded from only needs those components to
        still match — a write to trunk 7 leaves entries that never read
        trunk 7 provably fresh.  Each component is the same counter that
        guards zero-copy spans (:attr:`MemoryTrunk.mutation_epoch`), so
        every mutation path that bumps the scalar epoch moves exactly
        its owning trunk's component here.
        """
        return tuple(self.trunks[t].mutation_epoch
                     for t in range(self.config.trunk_count))

    def trunks_of_array(self, cell_ids) -> np.ndarray:
        """Owning trunk id per UID — one vectorized first-hash pass.

        The serving layer uses this to record the trunk *footprint* of a
        batched read, so cache entries can be stamped with exactly the
        :meth:`epoch_vector` components they depend on.
        """
        ids = np.asarray(cell_ids, dtype=np.int64)
        return trunk_of_array(ids, self.config.trunk_bits).astype(np.int64)

    def note_cell_write(self, cell_id: int) -> None:
        """Bump the owning trunk's epoch after an in-place arena write
        (the cell-accessor fixed-field path, which never calls put)."""
        self.trunk_for(cell_id).touch()
        if self._shadow is not None:
            self._shadow.note_cell_write(cell_id)

    __contains__ = contains

    def size_of(self, cell_id: int) -> int:
        if self._shadow is not None:
            self._shadow.size_of(cell_id)
        return self.trunk_for(cell_id).size_of(cell_id)

    # -- bulk fast path ------------------------------------------------------

    def _trunk_groups(self, cell_ids):
        """Stable (trunk_id, index array) groups for a batch of UIDs.

        One vectorized hash pass routes the whole array (Figure 3's first
        hop); the stable sort keeps each trunk's subsequence in input
        order, so the per-trunk operation stream is exactly what a scalar
        loop would have produced.
        """
        uids = np.asarray(cell_ids, dtype=np.uint64)
        trunks = trunk_of_array(uids, self.config.trunk_bits)
        order = stable_argsort(trunks)
        sorted_trunks = trunks[order]
        boundaries = np.flatnonzero(np.diff(sorted_trunks)) + 1
        uid_list = uids.tolist()  # one bulk conversion to Python ints
        for group in np.split(order, boundaries):
            indices = group.tolist()
            yield int(trunks[group[0]]), indices, [uid_list[i]
                                                   for i in indices]

    def trunk_groups(self, cell_ids):
        """Public routing view: stable ``(trunk_id, indices, uids)``
        groups for a UID batch, exactly as the bulk operations consume
        them.  The parallel bulk loader partitions work with this so the
        worker/coordinator halves agree on every trunk's subsequence."""
        return self._trunk_groups(cell_ids)

    def bulk_put_adopt(self, cell_ids, trunk_sizes: dict) -> None:
        """Adopt a parallel bulk load whose bytes workers already wrote.

        ``trunk_sizes`` maps trunk_id -> payload sizes (input order) as
        returned by :meth:`MemoryTrunk.bulk_write_fresh` in the workers.
        Replays the accounting of :meth:`bulk_put` on pristine trunks —
        same counters, same index state, same probe accounting — without
        touching the payload bytes, which arrived through the shared
        arenas.
        """
        if not len(cell_ids):
            return
        with self._h_bulk_put.time():
            batches = 0
            for trunk_id, _indices, uids in self._trunk_groups(cell_ids):
                self.trunks[trunk_id].adopt_fresh_cells(
                    uids, trunk_sizes[trunk_id]
                )
                batches += 1
        self._m_bulk_put_cells.inc(len(cell_ids))
        self._m_bulk_put_batches.inc(batches)

    def bulk_put(self, cell_ids, values, presize: bool = True) -> None:
        """Insert or overwrite a batch of cells along the batched path.

        Routes the whole UID array to its trunks with one vectorized hash
        pass, then hands each trunk its subsequence (input order
        preserved) via :meth:`MemoryTrunk.bulk_put`.  Equivalent to a
        scalar :meth:`put` loop: same stored bytes and trunk accounting,
        and bit-identical probe counters when ``presize=False``.
        """
        if len(cell_ids) != len(values):
            raise ValueError(
                f"bulk_put got {len(cell_ids)} uids but {len(values)} values"
            )
        if not len(cell_ids):
            return
        with self._h_bulk_put.time():
            batches = 0
            for trunk_id, indices, uids in self._trunk_groups(cell_ids):
                self.trunks[trunk_id].bulk_put(
                    uids,
                    [values[i] for i in indices],
                    presize=presize,
                )
                batches += 1
        self._m_bulk_put_cells.inc(len(cell_ids))
        self._m_bulk_put_batches.inc(batches)
        if self._shadow is not None:
            if presize:
                self._shadow_probes_comparable = False
            for cell_id, value in zip(cell_ids, values):
                self._shadow.put(int(cell_id), value)
            self.verify_shadow()

    def bulk_get(self, cell_ids) -> list[bytes]:
        """Payloads for a batch of UIDs, in input order.

        Grouped per trunk like :meth:`bulk_put`; accounting matches a
        scalar :meth:`get` loop.
        """
        if not len(cell_ids):
            return []
        if self._shadow is not None:
            for cell_id in cell_ids:
                self._shadow.get(int(cell_id))
        with self._h_bulk_get.time():
            out: list[bytes | None] = [None] * len(cell_ids)
            batches = 0
            for trunk_id, indices, uids in self._trunk_groups(cell_ids):
                payloads = self.trunks[trunk_id].bulk_get(uids)
                for position, payload in zip(indices, payloads):
                    out[position] = payload
                batches += 1
        self._m_bulk_get_cells.inc(len(cell_ids))
        self._m_bulk_get_batches.inc(batches)
        return out

    def bulk_get_packed(self, cell_ids) -> tuple[np.ndarray, np.ndarray]:
        """Payloads for a batch of UIDs as one packed ``(buffer, bounds)``.

        ``buffer[bounds[i]:bounds[i + 1]]`` is ``cell_ids[i]``'s payload.
        The batched twin of :meth:`bulk_get` that never materialises a
        per-cell ``bytes`` object: each trunk gathers its subsequence
        into a packed buffer (:meth:`MemoryTrunk.bulk_get_packed`), and
        one more vectorized gather reorders the concatenation back to
        input order.  Lookup and metrics accounting match
        :meth:`bulk_get` exactly.
        """
        n = len(cell_ids)
        if not n:
            return np.empty(0, dtype=np.uint8), np.zeros(1, dtype=np.int64)
        if self._shadow is not None:
            for cell_id in cell_ids:
                self._shadow.get(int(cell_id))
        with self._h_bulk_get.time():
            batches = 0
            buffers = []
            starts_parts = []
            sizes_parts = []
            index_parts = []
            base = 0
            for trunk_id, indices, uids in self._trunk_groups(cell_ids):
                buf, bounds = self.trunks[trunk_id].bulk_get_packed(uids)
                buffers.append(buf)
                starts_parts.append(bounds[:-1] + base)
                sizes_parts.append(np.diff(bounds))
                index_parts.append(np.asarray(indices, dtype=np.int64))
                base += len(buf)
                batches += 1
            joined = (buffers[0] if len(buffers) == 1
                      else np.concatenate(buffers))
            original = np.concatenate(index_parts)
            starts = np.empty(n, dtype=np.int64)
            starts[original] = np.concatenate(starts_parts)
            sizes = np.empty(n, dtype=np.int64)
            sizes[original] = np.concatenate(sizes_parts)
            out_bounds = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(sizes, out=out_bounds[1:])
            packed = gather_ranges(joined, starts, sizes)
        self._m_bulk_get_cells.inc(n)
        self._m_bulk_get_batches.inc(batches)
        return packed, out_bounds

    def bulk_get_spans(self, cell_ids) -> list[SpanGroup]:
        """Zero-copy payload spans for a batch, grouped per trunk.

        Returns one :class:`SpanGroup` per trunk touched — unpacking as
        ``(arena_view, starts, limits, positions)`` — where
        ``arena_view[starts[i]:limits[i]]`` is the payload of
        ``cell_ids[positions[i]]``.  Nothing is copied: the views alias
        trunk arenas and are only valid until the next write or
        defragmentation on those trunks, which is exactly the lifetime a
        query hop needs (fetch a frontier, decode it, move on).  Each
        group records the trunk's structural epoch; decoders call
        :meth:`SpanGroup.assert_fresh` so an interleaved mutation raises
        :class:`~repro.errors.StaleSpanError` instead of yielding bytes
        read from relocated cells.  Lookup and metrics accounting match
        :meth:`bulk_get`.
        """
        if not len(cell_ids):
            return []
        if self._shadow is not None:
            for cell_id in cell_ids:
                self._shadow.get(int(cell_id))
        with self._h_bulk_get.time():
            spans = []
            batches = 0
            for trunk_id, indices, uids in self._trunk_groups(cell_ids):
                trunk = self.trunks[trunk_id]
                arena, starts, limits, epoch = trunk.bulk_get_spans(uids)
                spans.append(SpanGroup(
                    arena, starts, limits,
                    np.asarray(indices, dtype=np.int64), trunk, epoch,
                ))
                batches += 1
        self._m_bulk_get_cells.inc(len(cell_ids))
        self._m_bulk_get_batches.inc(batches)
        return spans

    def verify_shadow(self) -> None:
        """Compare every trunk against the scalar shadow replay.

        Raises :class:`BulkPathDivergence` unless stored cells are
        bit-identical and trunk accounting (live/garbage/committed bytes,
        wraps, defrag counters — the full :class:`TrunkStats`) matches.
        Hash-table probe counters are compared too while every bulk call
        so far used ``presize=False`` (pre-sizing legitimately changes
        probe lengths, never contents).
        """
        if self._shadow is None:
            raise AddressingError("cloud was not built with cross_check=True")
        for trunk_id, trunk in self.trunks.items():
            shadow_trunk = self._shadow.trunks[trunk_id]
            mine = dict(trunk.dump_cells())
            theirs = dict(shadow_trunk.dump_cells())
            if mine != theirs:
                raise BulkPathDivergence(
                    f"trunk {trunk_id}: stored cells diverge from the "
                    f"scalar shadow ({len(mine)} vs {len(theirs)} cells)"
                )
            if trunk.stats() != shadow_trunk.stats():
                raise BulkPathDivergence(
                    f"trunk {trunk_id}: accounting diverges\n"
                    f"  bulk:   {trunk.stats()}\n"
                    f"  scalar: {shadow_trunk.stats()}"
                )
            if self._shadow_probes_comparable:
                index, shadow_index = trunk._index, shadow_trunk._index
                if (index.probe_count != shadow_index.probe_count
                        or index.lookup_count != shadow_index.lookup_count):
                    raise BulkPathDivergence(
                        f"trunk {trunk_id}: probe counters diverge "
                        f"({index.probe_count}/{index.lookup_count} vs "
                        f"{shadow_index.probe_count}/"
                        f"{shadow_index.lookup_count})"
                    )

    def __len__(self) -> int:
        return sum(len(t) for t in self.trunks.values())

    @property
    def spill_dir(self) -> str | None:
        """Directory holding paged trunks' page files (None if resident)."""
        return self._spill_dir

    @property
    def arenas_shared(self) -> bool:
        """True when every trunk arena lives in OS shared memory."""
        return all(t.arena.shared for t in self.trunks.values())

    def release_arenas(self) -> None:
        """Unlink shared trunk arenas and paged trunks' page files.

        Call from the creating process when the cloud is done; mapped
        views stay readable until they are garbage collected, but the OS
        name (or spill file) is gone so nothing leaks past process exit.
        No-op for private resident arenas.
        """
        for trunk in self.trunks.values():
            trunk.arena.unlink()
        if self._owns_spill_dir and self._spill_dir is not None:
            with contextlib.suppress(OSError):
                os.rmdir(self._spill_dir)
            self._spill_dir = None
            self._owns_spill_dir = False
        if self._shadow is not None:
            self._shadow.release_arenas()

    @contextlib.contextmanager
    def pin(self, cell_id: int):
        """Lock a cell and yield a zero-copy view of its payload.

        While the view is held the cell cannot be moved by the defrag
        daemon or mutated by another accessor — the "lock and pin" protocol
        of Section 3.  The view is released (and the lock dropped) on exit.
        """
        trunk = self.trunk_for(cell_id)
        lock = trunk.lock_of(cell_id)
        lock.acquire(self.config.memory.spinlock_budget)
        try:
            view = trunk.get_view(cell_id)
            try:
                yield view
            finally:
                view.release()
        finally:
            lock.release()

    # -- accounting ----------------------------------------------------------

    def machine_stats(self, machine_id: int) -> TrunkStats:
        """Aggregated trunk statistics for one machine."""
        stats = [t.stats() for t in self.trunks_on(machine_id)]
        if not stats:
            raise AddressingError(f"machine {machine_id} owns no trunks")
        return TrunkStats(
            cell_count=sum(s.cell_count for s in stats),
            live_bytes=sum(s.live_bytes for s in stats),
            reserved_bytes=sum(s.reserved_bytes for s in stats),
            garbage_bytes=sum(s.garbage_bytes for s in stats),
            committed_bytes=sum(s.committed_bytes for s in stats),
            trunk_size=sum(s.trunk_size for s in stats),
            defrag_passes=sum(s.defrag_passes for s in stats),
            relocations=sum(s.relocations for s in stats),
            wraps=sum(s.wraps for s in stats),
            tail_advances=sum(s.tail_advances for s in stats),
            defrag_aborts=sum(s.defrag_aborts for s in stats),
            inplace_resizes=sum(s.inplace_resizes for s in stats),
        )

    def total_live_bytes(self) -> int:
        """Live bytes (headers + payloads) across the whole cloud."""
        return sum(t.stats().live_bytes for t in self.trunks.values())

    def total_committed_bytes(self) -> int:
        return sum(t.stats().committed_bytes for t in self.trunks.values())

    def defragment_all(self) -> int:
        """Run a defrag pass on every trunk; returns trunks compacted."""
        if self._shadow is not None:
            self._shadow.defragment_all()
        return sum(1 for t in self.trunks.values() if t.defragment())

    def metrics_report(self) -> MetricsReport:
        """Trunk-layer metrics (alloc/wrap/defrag/garbage) as a report."""
        return MetricsReport.from_registry(self.obs).filter("trunk.")
