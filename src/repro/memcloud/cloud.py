"""The memory cloud facade: a globally addressable key-value store.

Combines the addressing table and the memory trunks into the store the rest
of the system is built on (Figure 2: "Memory Cloud (Distributed Key-Value
Store)").  Keys are 64-bit UIDs, values are blobs of arbitrary length.

The whole cloud lives in one process, but the ownership structure is real:
every trunk belongs to exactly one simulated machine, lookups resolve
through the addressing table exactly as in Figure 3, and the simulated
network layer charges for every access that crosses a machine boundary.
"""

from __future__ import annotations

import contextlib

from ..config import ClusterConfig
from ..errors import AddressingError
from ..obs import MetricsRegistry, MetricsReport, get_registry
from ..utils.hashing import trunk_of
from .addressing import AddressingTable
from .trunk import MemoryTrunk, TrunkStats


class MemoryCloud:
    """A distributed in-memory key-value store over 2**p memory trunks.

    Parameters
    ----------
    config:
        Cluster shape: machine count, trunk bits, memory parameters.

    Examples
    --------
    >>> from repro.config import ClusterConfig
    >>> cloud = MemoryCloud(ClusterConfig(machines=4, trunk_bits=5))
    >>> cloud.put(42, b"hello")
    >>> cloud.get(42)
    b'hello'
    """

    def __init__(self, config: ClusterConfig | None = None,
                 registry: MetricsRegistry | None = None):
        self.config = config or ClusterConfig()
        self.obs = registry if registry is not None else get_registry()
        self.addressing = AddressingTable(
            self.config.trunk_bits, range(self.config.machines)
        )
        self.trunks: dict[int, MemoryTrunk] = {
            trunk_id: MemoryTrunk(trunk_id, self.config.memory,
                                  registry=self.obs)
            for trunk_id in range(self.config.trunk_count)
        }

    # -- addressing ----------------------------------------------------------

    def trunk_for(self, cell_id: int) -> MemoryTrunk:
        """The trunk that stores ``cell_id`` (first hash of Figure 3)."""
        return self.trunks[trunk_of(cell_id, self.config.trunk_bits)]

    def machine_of(self, cell_id: int) -> int:
        """The machine hosting ``cell_id`` per the addressing table."""
        return self.addressing.machine_for_cell(cell_id)

    def trunks_on(self, machine_id: int) -> list[MemoryTrunk]:
        """All trunks currently owned by one machine."""
        return [self.trunks[t] for t in self.addressing.trunks_of(machine_id)]

    def cells_on(self, machine_id: int):
        """Yield every cell UID stored on ``machine_id``."""
        for trunk in self.trunks_on(machine_id):
            yield from trunk.uids()

    # -- key-value operations ----------------------------------------------

    def put(self, cell_id: int, value: bytes) -> None:
        """Insert or overwrite a cell."""
        self.trunk_for(cell_id).put(cell_id, value)

    def get(self, cell_id: int) -> bytes:
        """Read a copy of a cell's payload; raises CellNotFoundError."""
        return self.trunk_for(cell_id).get(cell_id)

    def remove(self, cell_id: int) -> None:
        """Delete a cell; raises CellNotFoundError if absent."""
        self.trunk_for(cell_id).remove(cell_id)

    def contains(self, cell_id: int) -> bool:
        return cell_id in self.trunk_for(cell_id)

    __contains__ = contains

    def size_of(self, cell_id: int) -> int:
        return self.trunk_for(cell_id).size_of(cell_id)

    def __len__(self) -> int:
        return sum(len(t) for t in self.trunks.values())

    @contextlib.contextmanager
    def pin(self, cell_id: int):
        """Lock a cell and yield a zero-copy view of its payload.

        While the view is held the cell cannot be moved by the defrag
        daemon or mutated by another accessor — the "lock and pin" protocol
        of Section 3.  The view is released (and the lock dropped) on exit.
        """
        trunk = self.trunk_for(cell_id)
        lock = trunk.lock_of(cell_id)
        lock.acquire(self.config.memory.spinlock_budget)
        try:
            view = trunk.get_view(cell_id)
            try:
                yield view
            finally:
                view.release()
        finally:
            lock.release()

    # -- accounting ----------------------------------------------------------

    def machine_stats(self, machine_id: int) -> TrunkStats:
        """Aggregated trunk statistics for one machine."""
        stats = [t.stats() for t in self.trunks_on(machine_id)]
        if not stats:
            raise AddressingError(f"machine {machine_id} owns no trunks")
        return TrunkStats(
            cell_count=sum(s.cell_count for s in stats),
            live_bytes=sum(s.live_bytes for s in stats),
            reserved_bytes=sum(s.reserved_bytes for s in stats),
            garbage_bytes=sum(s.garbage_bytes for s in stats),
            committed_bytes=sum(s.committed_bytes for s in stats),
            trunk_size=sum(s.trunk_size for s in stats),
            defrag_passes=sum(s.defrag_passes for s in stats),
            relocations=sum(s.relocations for s in stats),
            wraps=sum(s.wraps for s in stats),
            tail_advances=sum(s.tail_advances for s in stats),
            defrag_aborts=sum(s.defrag_aborts for s in stats),
            inplace_resizes=sum(s.inplace_resizes for s in stats),
        )

    def total_live_bytes(self) -> int:
        """Live bytes (headers + payloads) across the whole cloud."""
        return sum(t.stats().live_bytes for t in self.trunks.values())

    def total_committed_bytes(self) -> int:
        return sum(t.stats().committed_bytes for t in self.trunks.values())

    def defragment_all(self) -> int:
        """Run a defrag pass on every trunk; returns trunks compacted."""
        return sum(1 for t in self.trunks.values() if t.defragment())

    def metrics_report(self) -> MetricsReport:
        """Trunk-layer metrics (alloc/wrap/defrag/garbage) as a report."""
        return MetricsReport.from_registry(self.obs).filter("trunk.")
