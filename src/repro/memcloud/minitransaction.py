"""Multi-cell atomic primitives (Section 4.4).

Trinity guarantees atomicity only per cell and "does not provide ACID
transaction support.  For applications that need transaction support, we
can implement light-weight atomic operation primitives that span multiple
cells, such as MultiOp primitives [Chandra et al.] and Mini-transaction
primitives [Sinfonia], on top of the atomic cell operation primitives."

This module implements both on top of the per-cell spin locks:

* :class:`MiniTransaction` — Sinfonia-style: a *compare set* (cell must
  equal an expected value), a *read set* and a *write set*, executed
  atomically.  All involved cells are locked in global cell-id order
  (deadlock freedom), compares are checked, and only then do writes
  apply; any compare failure aborts with nothing written.
* :func:`multi_op` — Chandra et al.'s MultiOp: a list of guard
  predicates over cells plus two operation lists (``then`` / ``else``),
  one of which is applied atomically depending on the guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CellNotFoundError, MemoryCloudError
from .cloud import MemoryCloud


class TransactionAborted(MemoryCloudError):
    """A compare failed (or a cell vanished); nothing was written."""


@dataclass
class _Write:
    cell_id: int
    value: bytes


@dataclass
class MiniTransaction:
    """A Sinfonia-style mini-transaction over memory-cloud cells.

    Examples
    --------
    >>> from repro.config import ClusterConfig
    >>> cloud = MemoryCloud(ClusterConfig(machines=2, trunk_bits=3))
    >>> cloud.put(1, b"a")
    >>> tx = MiniTransaction(cloud)
    >>> tx.compare(1, b"a").write(1, b"b").commit()
    {}
    >>> cloud.get(1)
    b'b'
    """

    cloud: MemoryCloud
    _compares: list[_Write] = field(default_factory=list)
    _reads: list[int] = field(default_factory=list)
    _writes: list[_Write] = field(default_factory=list)
    _done: bool = False

    # -- building ------------------------------------------------------------

    def compare(self, cell_id: int, expected: bytes) -> "MiniTransaction":
        """Require ``cell_id`` to currently hold ``expected``."""
        self._check_open()
        self._compares.append(_Write(cell_id, expected))
        return self

    def read(self, cell_id: int) -> "MiniTransaction":
        """Read ``cell_id`` atomically with the rest of the transaction;
        the value appears in the dict :meth:`commit` returns."""
        self._check_open()
        self._reads.append(cell_id)
        return self

    def write(self, cell_id: int, value: bytes) -> "MiniTransaction":
        """Write ``cell_id`` if every compare passes."""
        self._check_open()
        self._writes.append(_Write(cell_id, value))
        return self

    # -- executing ---------------------------------------------------------

    def participants(self) -> list[int]:
        """All cell ids touched, in the global locking order."""
        ids = {w.cell_id for w in self._compares}
        ids.update(self._reads)
        ids.update(w.cell_id for w in self._writes)
        return sorted(ids)

    def commit(self) -> dict[int, bytes]:
        """Execute atomically; returns the read set's values.

        Locks every participant in ascending cell-id order (two
        transactions can never deadlock), validates compares, applies
        writes, unlocks.  Raises :class:`TransactionAborted` on any
        compare mismatch — with no partial effects.
        """
        self._check_open()
        self._done = True
        participants = self.participants()
        budget = self.cloud.config.memory.spinlock_budget
        locked: list = []
        try:
            for cell_id in participants:
                # A write may create the cell; only existing cells have
                # locks to take.
                if self.cloud.contains(cell_id):
                    lock = self.cloud.trunk_for(cell_id).lock_of(cell_id)
                    lock.acquire(budget)
                    locked.append(lock)
            for compare in self._compares:
                try:
                    current = self._peek(compare.cell_id)
                except CellNotFoundError:
                    raise TransactionAborted(
                        f"compare target {compare.cell_id:#x} is missing"
                    ) from None
                if current != compare.value:
                    raise TransactionAborted(
                        f"compare failed on cell {compare.cell_id:#x}"
                    )
            reads = {cell_id: self._peek(cell_id)
                     for cell_id in self._reads}
        finally:
            for lock in locked:
                lock.release()
        # Compares validated under locks; apply writes.  (Single-writer
        # simulation: between release and write nothing else runs; a
        # fully concurrent implementation would write before releasing,
        # which the per-trunk structural lock would otherwise deadlock.)
        for write in self._writes:
            self.cloud.put(write.cell_id, write.value)
        return reads

    # -- helpers -------------------------------------------------------------

    def _peek(self, cell_id: int) -> bytes:
        trunk = self.cloud.trunk_for(cell_id)
        with trunk.get_view(cell_id) as view:
            return bytes(view)

    def _check_open(self) -> None:
        if self._done:
            raise MemoryCloudError("mini-transaction already committed")


def multi_op(cloud: MemoryCloud, guards, then_ops, else_ops=()):
    """Chandra-et-al MultiOp: atomically apply ``then_ops`` if every
    guard holds, otherwise ``else_ops``.

    ``guards`` is an iterable of ``(cell_id, expected_bytes)``;
    ``then_ops``/``else_ops`` are iterables of ``(cell_id, new_bytes)``.
    Returns True if the guards held (then-branch applied).
    """
    guards = list(guards)
    tx = MiniTransaction(cloud)
    for cell_id, expected in guards:
        tx.compare(cell_id, expected)
    for cell_id, value in then_ops:
        tx.write(cell_id, value)
    try:
        tx.commit()
        return True
    except TransactionAborted:
        fallback = MiniTransaction(cloud)
        for cell_id, value in else_ops:
            fallback.write(cell_id, value)
        fallback.commit()
        return False
