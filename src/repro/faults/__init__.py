"""Deterministic fault injection for the memory cloud.

``FaultPlan`` is the pure, seeded schedule (crashes keyed to rounds,
drop/duplicate/delay rates, partitions, TFS read corruption);
``FaultInjector`` is its stateful consumer that hooks the simulated
fabric, charges every fault to the cost model, and counts it in
``repro.obs``.  Attach a plan to a workload with one argument::

    BspEngine(..., faults=FaultPlan(seed=7, crashes=((2, 1),)))
    TrinityCluster(machines=4, faults=FaultPlan(seed=7, drop_rate=0.05))

and the chaos-equivalence tests prove results stay bit-identical.
"""

from .injector import FaultInjector
from .plan import CrashFault, FaultPlan, Partition

__all__ = ["CrashFault", "FaultInjector", "FaultPlan", "Partition"]
