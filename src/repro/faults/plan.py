"""Deterministic fault schedules for the memory cloud.

A :class:`FaultPlan` is a *pure description* of what goes wrong in a run:
machine crashes keyed to round numbers (BSP supersteps or heartbeat
ticks), message drops / duplications / extra latency decided by a seeded
hash, network partitions over round intervals, and trunk-image read
corruption in TFS.  The plan holds no mutable state and every query is a
pure function of ``(seed, inputs)``, so the same plan replayed over the
same workload injects exactly the same faults — which is what lets the
chaos-equivalence test layer assert *bit-identical* results against the
fault-free run.

The stateful side (consuming crash events, counting metrics, charging
retries to the simulated clock) lives in
:class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class CrashFault:
    """One scheduled machine crash.

    ``round`` is the unit of the hosting context: a BSP superstep when
    the plan is attached to a :class:`~repro.compute.bsp.BspEngine`, a
    heartbeat tick when attached to a
    :class:`~repro.cluster.cluster.TrinityCluster`.
    """

    round: int
    machine: int


@dataclass(frozen=True)
class Partition:
    """A network partition over the half-open round interval
    ``[start, end)``: machines in ``group`` cannot exchange messages
    with machines outside it while the partition is up."""

    start: int
    end: int
    group: frozenset

    def active(self, round_: int) -> bool:
        return self.start <= round_ < self.end

    def separates(self, src: int, dst: int) -> bool:
        return (src in self.group) != (dst in self.group)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, fully deterministic schedule of injected faults.

    Every probabilistic decision hashes ``(seed, kind, coordinates)``
    through BLAKE2b, so outcomes are reproducible across runs and
    independent of ``PYTHONHASHSEED``.

    Examples
    --------
    >>> plan = FaultPlan(seed=7, crashes=((3, 1),), drop_rate=0.1)
    >>> plan.crashes_at(3)
    [1]
    >>> plan.should_drop(0, 2, round_=5, attempt=0) == \\
    ...     plan.should_drop(0, 2, round_=5, attempt=0)
    True
    """

    seed: int = 0
    crashes: tuple = ()
    """``CrashFault`` entries (or plain ``(round, machine)`` pairs)."""

    drop_rate: float = 0.0
    """Per-transfer-attempt probability that the message is lost on the
    wire and must be retransmitted after a timeout."""

    duplicate_rate: float = 0.0
    """Probability a delivered transfer arrives twice; the receiver
    suppresses the copy by correlation id, the wire cost is still paid."""

    delay_rate: float = 0.0
    """Probability a transfer is struck by ``extra_latency`` seconds."""

    extra_latency: float = 500e-6
    """Extra seconds charged to a delayed transfer."""

    partitions: tuple = ()
    """``Partition`` entries (or plain ``(start, end, machines)``)."""

    corrupt_rate: float = 0.0
    """Probability the *first* surviving replica consulted by a TFS block
    read fails its checksum and is skipped (the read fails over to the
    next replica, so with replication >= 2 no data is lost)."""

    max_attempts: int = 6
    """Retry budget per logical send before the sender gives up."""

    retry_timeout: float = 1e-3
    """Base retransmit timeout; attempt ``k`` backs off to
    ``retry_timeout * backoff_factor ** k`` simulated seconds."""

    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate",
                     "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.extra_latency < 0:
            raise ConfigError("extra_latency cannot be negative")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.retry_timeout <= 0:
            raise ConfigError("retry_timeout must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1.0")
        object.__setattr__(self, "crashes", tuple(
            entry if isinstance(entry, CrashFault) else CrashFault(*entry)
            for entry in self.crashes
        ))
        normalised = []
        for entry in self.partitions:
            if isinstance(entry, Partition):
                normalised.append(entry)
            else:
                start, end, group = entry
                normalised.append(Partition(start, end, frozenset(group)))
            if normalised[-1].start >= normalised[-1].end:
                raise ConfigError(
                    f"partition interval [{normalised[-1].start}, "
                    f"{normalised[-1].end}) is empty"
                )
        object.__setattr__(self, "partitions", tuple(normalised))

    # -- seeded hash ---------------------------------------------------------

    def _unit(self, kind: str, *parts) -> float:
        """A uniform [0, 1) draw, deterministic in (seed, kind, parts)."""
        digest = hashlib.blake2b(
            repr((self.seed, kind) + parts).encode("ascii"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    # -- queries -------------------------------------------------------------

    def crashes_at(self, round_: int) -> list[int]:
        """Machines scheduled to crash during ``round_``."""
        return [c.machine for c in self.crashes if c.round == round_]

    def is_partitioned(self, src: int, dst: int, round_: int) -> bool:
        return any(p.active(round_) and p.separates(src, dst)
                   for p in self.partitions)

    def should_drop(self, src: int, dst: int, round_: int,
                    attempt: int, token: int = 0) -> bool:
        return (self.drop_rate > 0.0
                and self._unit("drop", src, dst, round_, attempt, token)
                < self.drop_rate)

    def should_duplicate(self, src: int, dst: int, round_: int,
                         token: int = 0) -> bool:
        return (self.duplicate_rate > 0.0
                and self._unit("dup", src, dst, round_, token)
                < self.duplicate_rate)

    def delay_for(self, src: int, dst: int, round_: int,
                  token: int = 0) -> float:
        if (self.delay_rate > 0.0
                and self._unit("delay", src, dst, round_, token)
                < self.delay_rate):
            return self.extra_latency
        return 0.0

    def should_corrupt(self, block_id: int, node_id: int,
                       token: int = 0) -> bool:
        return (self.corrupt_rate > 0.0
                and self._unit("corrupt", block_id, node_id, token)
                < self.corrupt_rate)

    def backoff(self, attempt: int) -> float:
        """Timeout charged before retransmit number ``attempt + 1``."""
        return self.retry_timeout * self.backoff_factor ** attempt
