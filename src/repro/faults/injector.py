"""The stateful side of fault injection: consuming a FaultPlan.

One :class:`FaultInjector` accompanies one run (a BSP job or a cluster's
lifetime).  It tracks the current round, hands out per-(pair, round)
hash tokens so repeated sends over the same link see independent draws,
consumes crash events exactly once, and charges every injected fault to
the simulated cost model while counting it in ``repro.obs``:

======================================  =====================================
``faults.crash.total``                  scheduled machine crashes fired
``faults.drop.total``                   transfers lost and retransmitted
``faults.duplicate.total``              transfers delivered twice (deduped)
``faults.delay.total``                  transfers struck by extra latency
``faults.partition.blocked.total``      transfers blocked by a partition
``faults.corrupt.total``                TFS replica reads failing checksum
``rpc.retry.total``                     retransmissions (drop or partition)
``rpc.retry.backoff.seconds``           backoff charged per retransmission
``rpc.timeout.total``                   sends abandoned after max_attempts
======================================  =====================================

The reaction side is reliable-transport semantics: a dropped transfer is
retransmitted after an exponentially backed-off timeout (charged to the
clock and the wire), a duplicate is suppressed by correlation id at the
receiver, a partition stalls the sender until it heals — so no injected
fault ever changes *results*, only costs.  The chaos-equivalence tests
prove exactly that.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import MachineDownError
from ..obs import MetricsRegistry, get_registry
from .plan import FaultPlan


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live run, metering everything."""

    def __init__(self, plan: FaultPlan,
                 registry: MetricsRegistry | None = None):
        self.plan = plan
        self.obs = registry if registry is not None else get_registry()
        self.round = 0
        self._fired: set = set()
        self._tokens: dict[tuple, int] = defaultdict(int)
        self._m_crash = self.obs.counter("faults.crash.total")
        self._m_drop = self.obs.counter("faults.drop.total")
        self._m_dup = self.obs.counter("faults.duplicate.total")
        self._m_delay = self.obs.counter("faults.delay.total")
        self._m_partition = self.obs.counter(
            "faults.partition.blocked.total"
        )
        self._m_corrupt = self.obs.counter("faults.corrupt.total")
        self._m_retry = self.obs.counter("rpc.retry.total")
        self._m_timeout = self.obs.counter("rpc.timeout.total")
        self._h_backoff = self.obs.histogram("rpc.retry.backoff.seconds")

    # -- round bookkeeping ---------------------------------------------------

    def begin_round(self, round_: int) -> None:
        """Anchor subsequent fault draws to ``round_`` (a BSP superstep
        or a heartbeat tick)."""
        self.round = round_

    def take_crashes(self, round_: int) -> list[int]:
        """Crash events scheduled for ``round_``, each fired only once
        (a rollback replaying the round must not crash again)."""
        fired = []
        for crash in self.plan.crashes:
            if crash.round == round_ and crash not in self._fired:
                self._fired.add(crash)
                fired.append(crash.machine)
        if fired:
            self._m_crash.inc(len(fired))
        return fired

    def _next_token(self, kind: str, src: int, dst: int) -> int:
        key = (kind, self.round, src, dst)
        token = self._tokens[key]
        self._tokens[key] = token + 1
        return token

    # -- fabric hooks --------------------------------------------------------

    def charge_rpc_faults(self, network, src: int, dst: int,
                          size: int) -> None:
        """Apply this plan to one synchronous RPC request.

        Charges every lost attempt (wire time + backoff timeout) to the
        simulated clock; raises :class:`MachineDownError` if the retry
        budget is exhausted (partition outliving the sender's patience,
        or an improbably long drop streak).
        """
        plan = self.plan
        token = self._next_token("rpc", src, dst)
        partitioned = plan.is_partitioned(src, dst, self.round)
        if partitioned:
            drops = plan.max_attempts
            self._m_partition.inc()
        else:
            drops = 0
            while (drops < plan.max_attempts
                   and plan.should_drop(src, dst, self.round, drops, token)):
                drops += 1
            if drops:
                self._m_drop.inc(drops)
        for attempt in range(drops):
            network.clock.advance(network.transfer(src, dst, size))
            backoff = plan.backoff(attempt)
            network.clock.advance(backoff)
            self._m_retry.inc()
            self._h_backoff.observe(backoff)
        if drops >= plan.max_attempts:
            self._m_timeout.inc()
            raise MachineDownError(dst)
        if plan.should_duplicate(src, dst, self.round, token):
            network.clock.advance(network.transfer(src, dst, size))
            self._m_dup.inc()
        delay = plan.delay_for(src, dst, self.round, token)
        if delay:
            network.clock.advance(delay)
            self._m_delay.inc()

    def charge_transfer_faults(self, network, src: int, dst: int,
                               size: int, count: int) -> float:
        """Apply this plan to one packed round transfer (BSP barrier
        traffic).  Returns the extra simulated seconds the faults cost.

        Round transfers are never abandoned: a partition stalls the
        barrier until it heals, so the sender retries through its whole
        backoff ladder and delivery still happens — results are
        unaffected, only the round's elapsed time grows.
        """
        plan = self.plan
        token = self._next_token("round", src, dst)
        extra = 0.0
        partitioned = plan.is_partitioned(src, dst, self.round)
        if partitioned:
            drops = plan.max_attempts
            self._m_partition.inc()
        else:
            drops = 0
            while (drops < plan.max_attempts
                   and plan.should_drop(src, dst, self.round, drops, token)):
                drops += 1
            if drops:
                self._m_drop.inc(drops)
        for attempt in range(drops):
            extra += network.transfer(src, dst, size, count)
            backoff = plan.backoff(attempt)
            extra += backoff
            self._m_retry.inc()
            self._h_backoff.observe(backoff)
        if plan.should_duplicate(src, dst, self.round, token):
            extra += network.transfer(src, dst, size, count)
            self._m_dup.inc()
        delay = plan.delay_for(src, dst, self.round, token)
        if delay:
            extra += delay
            self._m_delay.inc()
        return extra

    # -- TFS hook ------------------------------------------------------------

    def corrupt_replica(self, block_id: int, node_id: int) -> bool:
        """Whether this replica read fails its checksum (one draw per
        consultation, so a later re-read of the same block may pass)."""
        key = ("tfs", block_id, node_id)
        token = self._tokens[key]
        self._tokens[key] = token + 1
        if self.plan.should_corrupt(block_id, node_id, token):
            self._m_corrupt.inc()
            return True
        return False
