"""The Trinity File System: a write-once, block-replicated store.

Design (mirroring HDFS, which the paper cites as TFS's model):

* A single :class:`TrinityFileSystem` object plays the namenode role.  It
  owns the file namespace — a map from path to :class:`FileInfo` — and the
  block-location table.
* :class:`DataNode` objects hold block payloads.  A block is replicated on
  ``replication`` distinct datanodes chosen round-robin from the live set.
* Files are immutable once written (``write`` replaces atomically, it never
  appends), which is all the memory cloud needs: trunk images, checkpoints
  and addressing-table snapshots are always written whole.
* Reads succeed as long as *any* replica of every block survives; losing all
  replicas of some block raises :class:`BlockNotFoundError`.

The failure-recovery path of Section 6.2 ("reload the memory trunks it owns
from the TFS to other alive machines") is exercised through this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import BlockNotFoundError, TfsError


@dataclass
class FileInfo:
    """Namenode metadata for one file."""

    path: str
    size: int
    block_ids: list[int] = field(default_factory=list)
    version: int = 1


class DataNode:
    """One storage node holding block payloads.

    ``alive`` is toggled by fault-injection tests and the cluster's failure
    simulator; a dead datanode rejects reads and writes.

    With a ``disk_root`` the node also spills every block to a file under
    ``<disk_root>/node-<id>/`` and reloads the directory on construction —
    blocks then survive process restarts, which is what makes the paper's
    "persistent disk storage" recovery stories real rather than simulated.
    """

    def __init__(self, node_id: int, disk_root=None):
        self.node_id = node_id
        self.alive = True
        self._blocks: dict[int, bytes] = {}
        self._disk_dir = None
        if disk_root is not None:
            import pathlib
            self._disk_dir = pathlib.Path(disk_root) / f"node-{node_id}"
            self._disk_dir.mkdir(parents=True, exist_ok=True)
            for block_file in self._disk_dir.glob("*.blk"):
                self._blocks[int(block_file.stem)] = block_file.read_bytes()

    def store(self, block_id: int, payload: bytes) -> None:
        if not self.alive:
            raise TfsError(f"datanode {self.node_id} is down")
        self._blocks[block_id] = payload
        if self._disk_dir is not None:
            (self._disk_dir / f"{block_id}.blk").write_bytes(payload)

    def read(self, block_id: int) -> bytes | None:
        """Return the block payload, or None if absent/dead."""
        if not self.alive:
            return None
        return self._blocks.get(block_id)

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)
        if self._disk_dir is not None:
            block_file = self._disk_dir / f"{block_id}.blk"
            if block_file.exists():
                block_file.unlink()

    def fail(self) -> None:
        """Simulate a crash: all blocks on this node become unreachable."""
        self.alive = False

    def recover(self) -> None:
        """Bring the node back with whatever blocks it still holds."""
        self.alive = True

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())


class TrinityFileSystem:
    """Namenode + datanode ensemble with synchronous replication.

    Parameters
    ----------
    datanodes:
        Number of storage nodes.  The simulated cluster typically creates
        one per slave machine.
    replication:
        Copies kept of every block.  Writes fail unless at least this many
        datanodes are alive.
    block_size:
        Split granularity for file payloads.
    """

    def __init__(self, datanodes: int = 3, replication: int = 2,
                 block_size: int = 1 << 20, disk_root=None):
        if datanodes < 1:
            raise TfsError("need at least one datanode")
        if not 1 <= replication <= datanodes:
            raise TfsError(
                f"replication {replication} must be in [1, {datanodes}]"
            )
        if block_size < 1:
            raise TfsError("block_size must be positive")
        self.replication = replication
        self.block_size = block_size
        self.disk_root = disk_root
        #: Optional :class:`~repro.faults.FaultInjector`; when set, block
        #: reads may find their first replica checksum-corrupted and fail
        #: over to the next one.
        self.faults = None
        self.nodes = [DataNode(i, disk_root) for i in range(datanodes)]
        self._files: dict[str, FileInfo] = {}
        self._block_locations: dict[int, list[int]] = {}
        self._next_block_id = itertools.count()
        self._placement_cursor = 0
        if disk_root is not None:
            self._load_manifest()

    # -- namespace ----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        """All paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def stat(self, path: str) -> FileInfo:
        try:
            return self._files[path]
        except KeyError:
            raise BlockNotFoundError(path) from None

    def delete(self, path: str) -> None:
        """Remove a file and free its blocks on every replica."""
        info = self._files.pop(path, None)
        if info is None:
            return
        for block_id in info.block_ids:
            for node_id in self._block_locations.pop(block_id, []):
                self.nodes[node_id].drop(block_id)
        self._save_manifest()

    # -- I/O ----------------------------------------------------------------

    def write(self, path: str, payload: bytes) -> FileInfo:
        """Write ``payload`` to ``path``, replacing any previous version.

        The write is atomic at the namespace level: the old version remains
        readable until the new one is fully replicated.
        """
        live = [n for n in self.nodes if n.alive]
        if len(live) < self.replication:
            raise TfsError(
                f"only {len(live)} datanodes alive, need {self.replication}"
            )
        block_ids: list[int] = []
        new_locations: dict[int, list[int]] = {}
        for start in range(0, max(len(payload), 1), self.block_size):
            chunk = payload[start:start + self.block_size]
            block_id = next(self._next_block_id)
            holders = self._pick_nodes(live)
            for node in holders:
                node.store(block_id, chunk)
            block_ids.append(block_id)
            new_locations[block_id] = [n.node_id for n in holders]

        old = self._files.get(path)
        version = old.version + 1 if old else 1
        self._files[path] = FileInfo(path, len(payload), block_ids, version)
        self._block_locations.update(new_locations)
        if old:
            for block_id in old.block_ids:
                for node_id in self._block_locations.pop(block_id, []):
                    self.nodes[node_id].drop(block_id)
        self._save_manifest()
        return self._files[path]

    def read(self, path: str) -> bytes:
        """Reassemble a file from any surviving replica of each block."""
        info = self.stat(path)
        parts: list[bytes] = []
        for block_id in info.block_ids:
            chunk = self._read_block(block_id)
            if chunk is None:
                raise BlockNotFoundError(f"{path} (block {block_id})")
            parts.append(chunk)
        data = b"".join(parts)
        # A zero-byte file still stores one empty block; normalise.
        return data[: info.size]

    def _read_block(self, block_id: int) -> bytes | None:
        corruption_checked = False
        for node_id in self._block_locations.get(block_id, []):
            chunk = self.nodes[node_id].read(block_id)
            if chunk is None:
                continue
            if self.faults is not None and not corruption_checked:
                # Injected image corruption strikes at most the first
                # surviving replica of a read (a checksum rejection);
                # the read fails over to the next replica, so with
                # replication >= 2 no data is ever lost.
                corruption_checked = True
                if self.faults.corrupt_replica(block_id, node_id):
                    continue
            return chunk
        return None

    def _pick_nodes(self, live: list[DataNode]) -> list[DataNode]:
        """Round-robin placement over live datanodes, replication-many."""
        picked = []
        for _ in range(self.replication):
            node = live[self._placement_cursor % len(live)]
            self._placement_cursor += 1
            picked.append(node)
        # Round-robin over >=replication live nodes cannot repeat, but be
        # explicit for the replication == len(live) edge case.
        unique = {n.node_id: n for n in picked}
        while len(unique) < self.replication:
            node = live[self._placement_cursor % len(live)]
            self._placement_cursor += 1
            unique[node.node_id] = node
        return list(unique.values())

    # -- on-disk namespace manifest -------------------------------------

    def _manifest_path(self):
        import pathlib
        return pathlib.Path(self.disk_root) / "namenode.json"

    def _save_manifest(self) -> None:
        if self.disk_root is None:
            return
        import json
        document = {
            "files": {
                path: {"size": info.size, "blocks": info.block_ids,
                       "version": info.version}
                for path, info in self._files.items()
            },
            "locations": {
                str(block): holders
                for block, holders in self._block_locations.items()
            },
        }
        self._manifest_path().write_text(json.dumps(document))

    def _load_manifest(self) -> None:
        manifest = self._manifest_path()
        if not manifest.exists():
            return
        import json
        document = json.loads(manifest.read_text())
        for path, meta in document["files"].items():
            self._files[path] = FileInfo(
                path, meta["size"], list(meta["blocks"]), meta["version"],
            )
        self._block_locations = {
            int(block): list(holders)
            for block, holders in document["locations"].items()
        }
        highest = max(self._block_locations, default=-1)
        self._next_block_id = itertools.count(highest + 1)

    # -- maintenance --------------------------------------------------------

    def re_replicate(self) -> int:
        """Restore the replication factor after datanode failures.

        For every block with fewer than ``replication`` live holders, copy a
        surviving replica onto additional live nodes.  Returns the number of
        new copies made.  Blocks with no surviving replica are left as-is
        (they will surface as :class:`BlockNotFoundError` on read).
        """
        live = [n for n in self.nodes if n.alive]
        copies = 0
        for block_id, holders in self._block_locations.items():
            alive_holders = [
                h for h in holders
                if self.nodes[h].alive
                and self.nodes[h].read(block_id) is not None
            ]
            if not alive_holders or len(alive_holders) >= self.replication:
                continue
            payload = self.nodes[alive_holders[0]].read(block_id)
            assert payload is not None
            candidates = [n for n in live if n.node_id not in alive_holders]
            needed = self.replication - len(alive_holders)
            for node in candidates[:needed]:
                node.store(block_id, payload)
                alive_holders.append(node.node_id)
                copies += 1
            self._block_locations[block_id] = alive_holders
        return copies

    @property
    def total_bytes(self) -> int:
        """Raw bytes stored across all replicas (for capacity accounting)."""
        return sum(n.used_bytes for n in self.nodes)
