"""Trinity File System (TFS) — the HDFS-like persistence substrate.

Section 3 of the paper backs every memory trunk up in "a shared distributed
file system called TFS (Trinity File System), which is similar to HDFS".
Section 6.2 uses it for the persistent replica of the addressing table, BSP
checkpoints, and async-computation snapshots.

This package implements TFS as a namenode plus replicated in-memory
datanodes.  Files are write-once (like HDFS), split into fixed-size blocks,
and each block is replicated onto ``replication`` distinct datanodes so the
cluster survives datanode loss.
"""

from .filesystem import TrinityFileSystem, DataNode, FileInfo

__all__ = ["TrinityFileSystem", "DataNode", "FileInfo"]
