"""Cell accessors: object-oriented manipulation of blob cells (Section 4.3).

A cell accessor "is not a data container, but a data mapper: it maps the
fields declared in the data structure to the correct memory locations in
the blob".  This module reproduces that mechanism:

* entering the accessor takes the cell's spin lock and pins a zero-copy
  ``memoryview`` of the blob inside its memory trunk;
* **reads** decode the requested field straight out of the blob at its
  computed offset (memoized per accessor);
* **fixed-size writes** (ints, doubles, fixed structs, elements of a
  fixed-element list) are packed directly into the trunk arena — zero copy,
  exactly like the generated C# accessors;
* **size-changing writes** (string assignment, list append) rebuild the
  blob in a local buffer; the new blob is stored back to the memory cloud
  when the accessor exits.

Usage mirrors the paper's ``using(var cell = UseMyCellAccessor(cellId))``::

    with use_cell(cloud, cell_id, movie_type) as cell:
        name = cell.Name
        cell.Actors[1] = 2
"""

from __future__ import annotations

from ..errors import CellNotFoundError, TslTypeError
from ..utils.varint import decode_varint, encode_varint
from .layout import LAYOUT_RAW
from .types import AdjacencyListType, ListType, StructType, TslType

_INTERNALS = frozenset({
    "_cloud", "_cell_id", "_struct", "_lock", "_view", "_buf", "_dirty",
    "_offsets", "_entered", "_wrote_view",
})


class CellAccessor:
    """Context-managed field-level access to one cell's blob.

    Not re-entrant and not shareable across threads: it holds the cell's
    spin lock for its whole lifetime, which is what pins the blob against
    relocation by the defragmentation daemon.
    """

    def __init__(self, cloud, cell_id: int, struct_type: StructType):
        object.__setattr__(self, "_cloud", cloud)
        object.__setattr__(self, "_cell_id", cell_id)
        object.__setattr__(self, "_struct", struct_type)
        object.__setattr__(self, "_lock", None)
        object.__setattr__(self, "_view", None)
        object.__setattr__(self, "_buf", None)
        object.__setattr__(self, "_dirty", False)
        object.__setattr__(self, "_offsets", {})
        object.__setattr__(self, "_entered", False)
        object.__setattr__(self, "_wrote_view", False)

    # -- context management ------------------------------------------------

    def __enter__(self) -> "CellAccessor":
        trunk = self._cloud.trunk_for(self._cell_id)
        lock = trunk.lock_of(self._cell_id)
        lock.acquire(self._cloud.config.memory.spinlock_budget)
        object.__setattr__(self, "_lock", lock)
        object.__setattr__(self, "_view", trunk.get_view(self._cell_id))
        object.__setattr__(self, "_entered", True)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        view = self._view
        if view is not None:
            view.release()
        object.__setattr__(self, "_view", None)
        self._lock.release()
        object.__setattr__(self, "_entered", False)
        if self._dirty and exc_type is None:
            self._cloud.put(self._cell_id, bytes(self._buf))
        elif self._wrote_view:
            # Fixed-size fields were written straight into the trunk
            # arena (no put): the bytes already changed, so advance the
            # owning trunk's mutation epoch for span/cache consumers.
            self._cloud.note_cell_write(self._cell_id)

    # -- field access --------------------------------------------------------

    @property
    def cell_id(self) -> int:
        return self._cell_id

    def _buffer(self):
        if self._buf is not None:
            return self._buf
        if self._view is None:
            raise CellNotFoundError(self._cell_id)
        return self._view

    def _offset_of(self, field_name: str) -> int:
        offsets = self._offsets
        if field_name not in offsets:
            offsets[field_name] = self._struct.field_offset(
                self._buffer(), field_name
            )
        return offsets[field_name]

    def get(self, field_name: str):
        """Decode one field from the blob."""
        field_type = self._struct.field_type(field_name)
        buf = self._buffer()
        if isinstance(field_type, ListType):
            return ListAccessor(self, field_name, field_type)
        value, _ = field_type.decode(buf, self._offset_of(field_name))
        return value

    def read(self, field_name: str):
        """Like :meth:`get` but always materialises (lists come back as
        plain Python lists instead of :class:`ListAccessor`)."""
        field_type = self._struct.field_type(field_name)
        value, _ = field_type.decode(self._buffer(), self._offset_of(field_name))
        return value

    def set(self, field_name: str, value) -> None:
        """Write one field; in place when the field is fixed-size."""
        field_type = self._struct.field_type(field_name)
        if field_type.fixed_size is not None:
            field_type.write_fixed(
                self._buffer(), self._offset_of(field_name), value
            )
            if self._buf is not None:
                object.__setattr__(self, "_dirty", True)
            else:
                object.__setattr__(self, "_wrote_view", True)
            return
        self._splice_field(field_name, field_type, field_type.encode(value))

    def to_dict(self) -> dict:
        """Materialise the whole cell as a plain dict."""
        value, _ = self._struct.decode(self._buffer(), 0)
        return value

    # attribute sugar: cell.Name, cell.Actors[1] = 2  -------------------------

    def __getattr__(self, name: str):
        if name in _INTERNALS or name.startswith("__"):
            raise AttributeError(name)
        return self.get(name)

    def __setattr__(self, name: str, value) -> None:
        if name in _INTERNALS:
            object.__setattr__(self, name, value)
        else:
            self.set(name, value)

    # -- structural rewrites ---------------------------------------------

    def _splice_field(self, field_name: str, field_type: TslType,
                      encoded: bytes) -> None:
        """Replace a variable-size field's bytes, shifting its successors."""
        buf = self._buffer()
        start = self._offset_of(field_name)
        end = field_type.skip(buf, start)
        rebuilt = bytearray(bytes(buf[:start]) + encoded + bytes(buf[end:]))
        self._adopt(rebuilt, invalidate_after=field_name)

    def _adopt(self, rebuilt: bytearray, invalidate_after: str) -> None:
        """Switch to a local buffer; offsets after the edited field move."""
        object.__setattr__(self, "_buf", rebuilt)
        object.__setattr__(self, "_dirty", True)
        view = self._view
        if view is not None:
            view.release()
            object.__setattr__(self, "_view", None)
        keep = {}
        for name, _ in self._struct.fields:
            keep[name] = self._offsets.get(name)
            if name == invalidate_after:
                break
        object.__setattr__(
            self, "_offsets",
            {k: v for k, v in keep.items() if v is not None},
        )


class ListAccessor:
    """Element-level access to a ``List<T>`` field.

    Fixed-size elements support in-place ``list[i] = x``; size-changing
    operations (append, assignment of variable-size elements) go through
    the parent accessor's rebuild path.

    Adjacency fields add a layout dimension: a cell stored under
    ``LAYOUT_RAW`` keeps every in-place fast path below, while a cell
    whose list is delta- or bitmap-encoded decodes through the codec and
    rewrites the whole field on mutation — *preserving* its stored
    layout when the new contents remain eligible (falling back to raw
    otherwise), never re-running the policy.  Observed degree therefore
    drifts across policy boundaries without the bytes following; the
    layout re-encoder daemon is what migrates such cells later.
    """

    def __init__(self, parent: CellAccessor, field_name: str,
                 list_type: ListType):
        self._parent = parent
        self._field = field_name
        self._type = list_type

    def _bounds(self):
        """(buffer, count, payload_start_offset, layout_tag)."""
        buf = self._parent._buffer()
        start = self._parent._offset_of(self._field)
        header, data_start = decode_varint(buf, start)
        if isinstance(self._type, AdjacencyListType):
            return buf, header >> 2, data_start, header & 3
        return buf, header, data_start, LAYOUT_RAW

    def __len__(self) -> int:
        _, count, _, _ = self._bounds()
        return count

    @staticmethod
    def _normalize_index(index: int, count: int) -> int:
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(
                f"index {index} out of range for List of {count}"
            )
        return index

    def _element_offset(self, buf, index: int, count: int,
                        data_start: int) -> int:
        index = self._normalize_index(index, count)
        element_size = self._type.element.fixed_size
        if element_size is not None:
            return data_start + index * element_size
        offset = data_start
        for _ in range(index):
            offset = self._type.element.skip(buf, offset)
        return offset

    def _decoded(self) -> list:
        """Whole-list decode (non-raw layouts have no element addresses)."""
        buf = self._parent._buffer()
        start = self._parent._offset_of(self._field)
        values, _ = self._type.decode(buf, start)
        return values

    def _rewrite(self, values: list, tag: int) -> None:
        """Re-encode the whole field, keeping ``tag`` while eligible."""
        encoded = self._type.encode_with_layout(values, tag)
        if encoded is None:
            encoded = self._type.encode_with_layout(values, LAYOUT_RAW)
        self._parent._splice_field(self._field, self._type, encoded)

    def __getitem__(self, index: int):
        buf, count, data_start, tag = self._bounds()
        if tag != LAYOUT_RAW:
            return self._decoded()[self._normalize_index(index, count)]
        offset = self._element_offset(buf, index, count, data_start)
        value, _ = self._type.element.decode(buf, offset)
        return value

    def __setitem__(self, index: int, value) -> None:
        buf, count, data_start, tag = self._bounds()
        if tag != LAYOUT_RAW:
            # Encode first so type errors surface exactly as they would on
            # the raw path, then round-trip to the canonical Python value.
            encoded_element = self._type.element.encode(value)
            values = self._decoded()
            values[self._normalize_index(index, count)] = (
                self._type.element.decode(encoded_element, 0)[0])
            self._rewrite(values, tag)
            return
        offset = self._element_offset(buf, index, count, data_start)
        element = self._type.element
        if element.fixed_size is not None:
            element.write_fixed(buf, offset, value)
            if self._parent._buf is not None:
                object.__setattr__(self._parent, "_dirty", True)
            else:
                object.__setattr__(self._parent, "_wrote_view", True)
            return
        # Variable-size element: splice just this element's bytes.
        end = element.skip(buf, offset)
        encoded = element.encode(value)
        rebuilt = bytearray(bytes(buf[:offset]) + encoded + bytes(buf[end:]))
        self._parent._adopt(rebuilt, invalidate_after=self._field)

    def __iter__(self):
        buf, count, offset, tag = self._bounds()
        if tag != LAYOUT_RAW:
            yield from self._decoded()
            return
        for _ in range(count):
            value, offset = self._type.element.decode(buf, offset)
            yield value

    def to_list(self) -> list:
        return list(self)

    def append(self, value) -> None:
        buf, count, data_start, tag = self._bounds()
        encoded_element = self._type.element.encode(value)
        if tag != LAYOUT_RAW:
            values = self._decoded()
            values.append(self._type.element.decode(encoded_element, 0)[0])
            self._rewrite(values, tag)
            return
        start = self._parent._offset_of(self._field)
        end = self._type.skip(buf, start)
        if isinstance(self._type, AdjacencyListType):
            header = encode_varint((count + 1) << 2)
        else:
            header = encode_varint(count + 1)
        encoded = header + bytes(buf[data_start:end]) + encoded_element
        rebuilt = bytearray(bytes(buf[:start]) + encoded + bytes(buf[end:]))
        self._parent._adopt(rebuilt, invalidate_after=self._field)

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def __repr__(self) -> str:
        return f"ListAccessor({self._field}, {self.to_list()!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, ListAccessor):
            return self.to_list() == other.to_list()
        if isinstance(other, list):
            return self.to_list() == other
        return NotImplemented


def save_cell(cloud, cell_id: int, struct_type: StructType,
              values: dict) -> None:
    """Encode ``values`` per the schema and store the blob (SaveMyCell)."""
    cloud.put(cell_id, struct_type.encode(values))


def load_cell(cloud, cell_id: int, struct_type: StructType) -> dict:
    """Load and fully decode a cell (LoadMyCell)."""
    blob = cloud.get(cell_id)
    value, end = struct_type.decode(blob, 0)
    if end != len(blob):
        raise TslTypeError(
            f"{struct_type.name}: blob has {len(blob) - end} trailing bytes"
        )
    return value


def use_cell(cloud, cell_id: int, struct_type: StructType) -> CellAccessor:
    """Open a cell accessor (UseMyCellAccessor); use as a context manager."""
    return CellAccessor(cloud, cell_id, struct_type)
