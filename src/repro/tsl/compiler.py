"""The TSL compiler: AST → runtime schemas, codecs and protocol specs.

``compile_tsl`` is the public entry point.  It resolves user struct
references (including nesting — ``StructEdge`` cells reference other
structs), rejects cycles (a struct physically containing itself would have
infinite size; references across cells go through 64-bit cell ids instead),
and packages the result as a :class:`CompiledSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TslTypeError
from .ast import FieldDecl, Script, StructDecl, TypeExpr
from .parser import parse_tsl
from .types import (
    AdjacencyListType,
    BitArrayType,
    ListType,
    LONG,
    PRIMITIVES,
    StructType,
    TslType,
)


@dataclass(frozen=True)
class EdgeField:
    """Metadata for a field that models graph edges (Section 4.1)."""

    field_name: str
    edge_type: str                # SimpleEdge | StructEdge | HyperEdge
    referenced_cell: str | None   # target cell type, if declared


@dataclass(frozen=True)
class ProtocolSpec:
    """A compiled communication protocol (Figure 5).

    ``kind`` is ``"Syn"`` (synchronous request/response) or ``"Asyn"``
    (one-sided; responses, if declared, arrive via callback).  The message
    runtime validates payloads against these schemas.
    """

    name: str
    kind: str
    request: StructType | None
    response: StructType | None

    @property
    def is_synchronous(self) -> bool:
        return self.kind == "Syn"


class CompiledSchema:
    """Everything a Trinity deployment derives from one TSL script."""

    def __init__(self, script: Script):
        self.script = script
        self.structs: dict[str, StructType] = {}
        self.cells: dict[str, StructType] = {}
        self._cell_attributes: dict[str, dict[str, str]] = {}
        self._edge_fields: dict[str, list[EdgeField]] = {}
        self.protocols: dict[str, ProtocolSpec] = {}
        self._build(script)

    # -- construction -------------------------------------------------------

    def _build(self, script: Script) -> None:
        declarations = {decl.name: decl for decl in script.structs}
        if len(declarations) != len(script.structs):
            names = [d.name for d in script.structs]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TslTypeError(f"duplicate struct declarations: {dupes}")
        for decl in script.structs:
            self._resolve_struct(decl.name, declarations, stack=())
        for decl in script.structs:
            if decl.is_cell:
                self.cells[decl.name] = self.structs[decl.name]
                self._cell_attributes[decl.name] = decl.attribute_map
                self._edge_fields[decl.name] = [
                    EdgeField(f.name, f.edge_type, f.referenced_cell)
                    for f in decl.fields if f.edge_type is not None
                ]
        for proto in script.protocols:
            self.protocols[proto.name] = ProtocolSpec(
                proto.name,
                proto.kind,
                self._message_struct(proto.request, proto.name),
                self._message_struct(proto.response, proto.name),
            )

    def _message_struct(self, name: str | None,
                        protocol: str) -> StructType | None:
        if name is None:
            return None
        if name not in self.structs:
            raise TslTypeError(
                f"protocol {protocol}: unknown message type {name!r}"
            )
        return self.structs[name]

    def _resolve_struct(self, name: str,
                        declarations: dict[str, StructDecl],
                        stack: tuple[str, ...]) -> StructType:
        if name in self.structs:
            return self.structs[name]
        if name in stack:
            cycle = " -> ".join(stack + (name,))
            raise TslTypeError(
                f"struct embedding cycle: {cycle}; reference cells by id "
                "(long) instead of embedding them"
            )
        decl = declarations[name]
        fields = []
        for f in decl.fields:
            tsl_type = self._resolve_type(f.type_expr, declarations,
                                          stack + (name,), f)
            # Edge-annotated List<long> fields get the adaptive adjacency
            # wire format; plain lists (protocol messages, embedded
            # structs) keep the original varint-count layout.  Each field
            # gets its own type instance so per-schema layout policies
            # never leak across schemas.
            if (f.edge_type is not None and isinstance(tsl_type, ListType)
                    and not isinstance(tsl_type, AdjacencyListType)
                    and tsl_type.element is LONG):
                tsl_type = AdjacencyListType(tsl_type.element)
            fields.append((f.name, tsl_type))
        struct_type = StructType(name, fields)
        self.structs[name] = struct_type
        return struct_type

    def _resolve_type(self, expr: TypeExpr,
                      declarations: dict[str, StructDecl],
                      stack: tuple[str, ...],
                      field: FieldDecl) -> TslType:
        if expr.name == "List":
            if len(expr.args) != 1:
                raise TslTypeError(f"List takes one type argument: {expr}")
            return ListType(
                self._resolve_type(expr.args[0], declarations, stack, field)
            )
        if expr.name == "BitArray":
            if expr.args:
                raise TslTypeError("BitArray takes no type arguments")
            return BitArrayType()
        if expr.args:
            raise TslTypeError(f"unknown generic type {expr.name!r}")
        if expr.name in PRIMITIVES:
            return PRIMITIVES[expr.name]
        if expr.name in declarations:
            return self._resolve_struct(expr.name, declarations, stack)
        raise TslTypeError(
            f"unknown type {expr.name!r} in field {field.name!r}"
        )

    # -- public API ----------------------------------------------------------

    def struct(self, name: str) -> StructType:
        try:
            return self.structs[name]
        except KeyError:
            raise TslTypeError(f"no struct named {name!r}") from None

    def cell(self, name: str) -> StructType:
        try:
            return self.cells[name]
        except KeyError:
            raise TslTypeError(f"no cell struct named {name!r}") from None

    def cell_attributes(self, name: str) -> dict[str, str]:
        """The merged ``[...]`` attributes on a cell declaration."""
        self.cell(name)
        return dict(self._cell_attributes[name])

    def edge_fields(self, cell_name: str) -> list[EdgeField]:
        """Edge-bearing fields of a cell, for the graph layer."""
        self.cell(cell_name)
        return list(self._edge_fields[cell_name])

    def encode(self, struct_name: str, value: dict) -> bytes:
        """Encode a dict into the struct's blob layout."""
        return self.struct(struct_name).encode(value)

    def decode(self, struct_name: str, blob) -> dict:
        """Decode a blob back into a dict (whole-struct read)."""
        value, end = self.struct(struct_name).decode(blob, 0)
        if end != len(blob):
            raise TslTypeError(
                f"{struct_name}: blob has {len(blob) - end} trailing bytes"
            )
        return value

    def protocol(self, name: str) -> ProtocolSpec:
        try:
            return self.protocols[name]
        except KeyError:
            raise TslTypeError(f"no protocol named {name!r}") from None

    # -- generated cell API (SaveX / LoadX / UseXAccessor) -----------------

    def save_cell(self, cloud, cell_name: str, cell_id: int,
                  values: dict) -> None:
        """Encode ``values`` with the cell schema and store the blob."""
        from .accessor import save_cell
        save_cell(cloud, cell_id, self.cell(cell_name), values)

    def load_cell(self, cloud, cell_name: str, cell_id: int) -> dict:
        """Load and fully decode a cell into a dict."""
        from .accessor import load_cell
        return load_cell(cloud, cell_id, self.cell(cell_name))

    def use_cell(self, cloud, cell_name: str, cell_id: int):
        """Open a :class:`~repro.tsl.accessor.CellAccessor` context."""
        from .accessor import use_cell
        return use_cell(cloud, cell_id, self.cell(cell_name))


def compile_tsl(source: str) -> CompiledSchema:
    """Parse and compile a TSL script in one step."""
    return CompiledSchema(parse_tsl(source))
