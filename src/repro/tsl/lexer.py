"""Tokenizer for TSL scripts.

TSL syntax follows C# conventions (Figure 4 and Figure 5 of the paper):
``cell struct`` / ``struct`` / ``protocol`` declarations, ``[...]``
attribute blocks, generic types like ``List<long>``, and ``//`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TslSyntaxError

# Single-character punctuation tokens.
_PUNCTUATION = {
    "{": "LBRACE",
    "}": "RBRACE",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "<": "LANGLE",
    ">": "RANGLE",
    ";": "SEMI",
    ":": "COLON",
    ",": "COMMA",
}

KEYWORDS = frozenset({"cell", "struct", "protocol"})


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str      # IDENT, KEYWORD, NUMBER, or a punctuation kind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Convert a TSL script into a token list.

    Raises :class:`TslSyntaxError` on characters that cannot start a token.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "/" and source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise TslSyntaxError("unterminated block comment", line, column)
            skipped = source[i:end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "KEYWORD" if text in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token("NUMBER", source[start:i], line, column))
            column += i - start
            continue
        raise TslSyntaxError(f"unexpected character {ch!r}", line, column)
    return tokens
