"""TSL — the Trinity Specification Language (Sections 4.2 and 4.3).

TSL is the high-level language through which users declare graph data
schemas and network communication protocols.  The paper's TSL compiler
emits C# source; this reproduction compiles TSL scripts at runtime into:

* :class:`~repro.tsl.compiler.CompiledSchema` — cell/struct codecs and
  protocol specifications,
* cell accessors (:mod:`repro.tsl.accessor`) that map field reads and
  writes onto the underlying blob in the memory cloud, in place for
  fixed-size fields ("zero memory copy overhead", Section 4.3),
* message types consumed by the message-passing runtime in
  :mod:`repro.net`.

Typical use::

    from repro.tsl import compile_tsl

    schema = compile_tsl('''
        [CellType: NodeCell]
        cell struct Movie {
            string Name;
            [EdgeType: SimpleEdge, ReferencedCell: Actor]
            List<long> Actors;
        }
    ''')
    blob = schema.encode("Movie", {"Name": "Heat", "Actors": [1, 2]})
"""

from .ast import (
    Attribute,
    FieldDecl,
    ProtocolDecl,
    Script,
    StructDecl,
    TypeExpr,
)
from .lexer import Token, tokenize
from .parser import parse_tsl
from .compiler import CompiledSchema, ProtocolSpec, compile_tsl
from .accessor import CellAccessor
from .batch import BatchStructEncoder, batch_encoder_for
from .layout import (
    LAYOUT_BITMAP,
    LAYOUT_DELTA_VARINT,
    LAYOUT_NAMES,
    LAYOUT_RAW,
    LayoutPolicy,
)
from .types import (
    BOOL,
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    STRING,
    AdjacencyListType,
    BitArrayType,
    ListType,
    StructType,
    TslType,
)

__all__ = [
    "tokenize",
    "Token",
    "parse_tsl",
    "compile_tsl",
    "CompiledSchema",
    "ProtocolSpec",
    "CellAccessor",
    "BatchStructEncoder",
    "batch_encoder_for",
    "Script",
    "StructDecl",
    "FieldDecl",
    "ProtocolDecl",
    "TypeExpr",
    "Attribute",
    "TslType",
    "StructType",
    "ListType",
    "AdjacencyListType",
    "BitArrayType",
    "LayoutPolicy",
    "LAYOUT_RAW",
    "LAYOUT_DELTA_VARINT",
    "LAYOUT_BITMAP",
    "LAYOUT_NAMES",
    "BYTE",
    "BOOL",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "STRING",
]
